//! The paper's running example (§2, Figs. 1–3): two clients, a broker
//! and four hotels, ready to verify and execute.
//!
//! * The policy `φ(bl, p, t)` of **Fig. 1** is
//!   [`sufs_policy::catalog::hotel_policy`]; [`registry`] preloads it.
//! * The services of **Fig. 2** are [`client_c1`], [`client_c2`],
//!   [`broker`] and [`hotel`]/[`hotel_s2`]; [`repository`] publishes the
//!   broker at `br` and the hotels at `s1`–`s4`.
//! * The valid plan `π₁ = {r1↦br, r3↦s3}` of **Fig. 3** is [`plan_pi1`].
//!
//! ```
//! use sufs::paper;
//! use sufs_core::verify::verify;
//!
//! let report = verify(&paper::client_c1(), &paper::repository(), &paper::registry()).unwrap();
//! let valid: Vec<_> = report.valid_plans().collect();
//! assert_eq!(valid, vec![&paper::plan_pi1()]);
//! ```

use sufs_hexpr::builder::*;
use sufs_hexpr::{Hist, ParamValue, PolicyRef};
use sufs_net::{Plan, Repository};
use sufs_policy::{catalog, PolicyRegistry};

/// `φ₁ = φ({s1}, 45, 100)`: client C1's instantiation of the Fig. 1
/// policy — black list `{1}`, price at most 45 or rating at least 100.
pub fn phi1() -> PolicyRef {
    PolicyRef::new(
        "hotel",
        [
            ParamValue::set([1i64]),
            ParamValue::int(45),
            ParamValue::int(100),
        ],
    )
}

/// `φ₂ = φ({s1,s3}, 40, 70)`: client C2's instantiation — black list
/// `{1, 3}`, price at most 40 or rating at least 70.
pub fn phi2() -> PolicyRef {
    PolicyRef::new(
        "hotel",
        [
            ParamValue::set([1i64, 3]),
            ParamValue::int(40),
            ParamValue::int(70),
        ],
    )
}

/// The policy registry: the Fig. 1 automaton under its name `hotel`.
pub fn registry() -> PolicyRegistry {
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::hotel_policy());
    reg
}

fn client_body() -> Hist {
    // Req · (CoBo.Pay + NoAv): send the request, then either receive the
    // booking confirmation and pay, or receive the unavailability notice.
    seq([
        send("req", eps()),
        offer([("cobo", send("pay", eps())), ("noav", eps())]),
    ])
}

/// `C1 = open_{1,φ₁} Req·(CoBo.P̄ay + NoAv) close_{1,φ₁}`.
pub fn client_c1() -> Hist {
    request(1, Some(phi1()), client_body())
}

/// `C2 = open_{2,φ₂} Req·(CoBo.P̄ay + NoAv) close_{2,φ₂}`.
pub fn client_c2() -> Hist {
    request(2, Some(phi2()), client_body())
}

/// `Br = Req · open_{3,∅} ĪdC·(Bok + UnA) close_{3,∅} · (C̄oBo.Pay ⊕ N̄oAv)`.
pub fn broker() -> Hist {
    seq([
        recv("req", eps()),
        request(
            3,
            None,
            seq([send("idc", eps()), offer([("bok", eps()), ("una", eps())])]),
        ),
        choose([("cobo", recv("pay", eps())), ("noav", eps())]),
    ])
}

/// `Sᵢ = α_sgn(i)·α_p(price)·α_ta(rating) · IdC·(B̄ok ⊕ ŪnA)`: the shape
/// shared by hotels S1, S3 and S4 (Fig. 2).
pub fn hotel(id: i64, price: i64, rating: i64) -> Hist {
    seq([
        ev("sgn", [id]),
        ev("p", [price]),
        ev("ta", [rating]),
        recv("idc", choose([("bok", eps()), ("una", eps())])),
    ])
}

/// `S2`: like the others but may also answer `Del` ("rooms available
/// later in the week"), which the broker cannot handle — the
/// non-compliant hotel of §2.
pub fn hotel_s2() -> Hist {
    seq([
        ev("sgn", [2]),
        ev("p", [70]),
        ev("ta", [100]),
        recv(
            "idc",
            choose([("bok", eps()), ("una", eps()), ("del", eps())]),
        ),
    ])
}

/// The repository `R`: the broker at `br` and the four hotels at
/// `s1`–`s4` with the prices/ratings of Fig. 2.
pub fn repository() -> Repository {
    let mut repo = Repository::new();
    repo.publish("br", broker());
    repo.publish("s1", hotel(1, 45, 80));
    repo.publish("s2", hotel_s2());
    repo.publish("s3", hotel(3, 90, 100));
    repo.publish("s4", hotel(4, 50, 90));
    repo
}

/// The valid plan `π₁` for C1: request 1 to the broker, the broker's
/// request 3 to hotel S3.
pub fn plan_pi1() -> Plan {
    Plan::new().with(1u32, "br").with(3u32, "s3")
}

/// The invalid plan for C2 that §2 calls `π₂`: request 3 goes to the
/// non-compliant hotel S2.
pub fn plan_pi2() -> Plan {
    Plan::new().with(2u32, "br").with(3u32, "s2")
}

/// The other invalid plan for C2 discussed in §2: S3 is compliant with
/// the broker but black-listed by C2's policy.
pub fn plan_c2_s3() -> Plan {
    Plan::new().with(2u32, "br").with(3u32, "s3")
}

/// The only valid plan for C2: request 3 to hotel S4.
pub fn plan_c2_s4() -> Plan {
    Plan::new().with(2u32, "br").with(3u32, "s4")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::wf;

    #[test]
    fn all_fixture_services_are_well_formed() {
        for h in [client_c1(), client_c2(), broker(), hotel_s2()] {
            assert!(wf::check(&h).is_ok());
        }
        assert_eq!(repository().len(), 5);
    }

    #[test]
    fn plans_bind_the_expected_requests() {
        assert_eq!(plan_pi1().len(), 2);
        assert_eq!(plan_pi1().to_string(), "{r1↦br, r3↦s3}");
        assert_eq!(plan_pi2().to_string(), "{r2↦br, r3↦s2}");
    }
}
