//! The `sufs` command-line tool: verify, lint and execute scenario files.
//!
//! ```text
//! sufs verify <file> [--client NAME] [--jobs N] [--no-cache] [--prune]
//!                    [--plan-cap N] [--seed N] [--stats] [--json]
//!                    [--engine enumerative|compositional]
//! sufs run <file> [--client NAME] [--plan r=loc,...] [--monitor]
//!                 [--committed] [--seed N] [--runs N] [--fuel N] [--trace]
//! sufs lint <file> [--json] [--deny warnings]
//! sufs lint --addr HOST:PORT [--json] [--deny warnings]
//! sufs compliance <file> <client-service> <server-service>
//! sufs lts <file> <service> [--dot]
//! sufs bpa <file> <service>
//! sufs serve [--addr HOST:PORT] [--max-clients N] [--jobs N] [--prune]
//!            [--state-dir DIR] [--snapshot-every N] [--follow HOST:PORT]
//!            [--ack local|quorum] [--cluster-size N]
//!            [--deny-lint error|warnings] [--election auto|manual]
//!            [--election-timeout MS] [--election-seed N]
//!            [--advertise HOST:PORT]
//! sufs promote --addr HOST:PORT
//! sufs publish <file> --addr HOST:PORT
//! sufs plan <file> [--client NAME] [--engine ENGINE] --addr HOST:PORT
//! sufs run-remote <file> [--client NAME] [...] --addr HOST:PORT
//! sufs retract <location> --addr HOST:PORT
//! sufs stats --addr HOST:PORT
//! sufs shutdown --addr HOST:PORT
//! sufs gen --profile mesh|tree|pipeline|star [--services N] [--seed S]
//!          [--policies deny,frame,cap] [--faults] [--out FILE] [--runfile]
//! sufs gen --corpus DIR [--count N]
//! sufs replay <file|dir> [--record] [--filter SUB] [--jobs N]
//!             [--no-broker] [--diff-out FILE]
//! ```
//!
//! Flags accept both `--flag value` and `--flag=value`; flags a command
//! does not declare are rejected. See `docs/SCENARIOS.md` for the
//! scenario-file format, `docs/LINTS.md` for the lint catalogue, and
//! `docs/BROKER.md` for the broker daemon and its wire protocol; ready
//! scenarios (including the paper's §2 example,
//! `scenarios/hotel.sufs`) live in `scenarios/`.

use std::process::ExitCode;

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs_broker::{Broker, BrokerClient, BrokerConfig, Json};
use sufs_contract::{compliant, Contract};
use sufs_core::scenario::{parse_scenario, Scenario};
use sufs_core::verify::verify;
use sufs_hexpr::{Hist, HistLts, Location, RequestId};
use sufs_net::{ChoiceMode, MonitorMode, Network, Plan, Scheduler};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sufs: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "verify" => done(cmd_verify(&args[1..])),
        "verify-net" => done(cmd_verify_net(&args[1..])),
        "run" => done(cmd_run(&args[1..])),
        "lint" => cmd_lint(&args[1..]),
        "compliance" => done(cmd_compliance(&args[1..])),
        "discover" => done(cmd_discover(&args[1..])),
        "lts" => done(cmd_lts(&args[1..])),
        "bpa" => done(cmd_bpa(&args[1..])),
        "serve" => done(cmd_serve(&args[1..])),
        "promote" => done(cmd_promote(&args[1..])),
        "publish" => done(cmd_publish(&args[1..])),
        "plan" => done(cmd_plan(&args[1..])),
        "run-remote" => done(cmd_run_remote(&args[1..])),
        "retract" => done(cmd_retract(&args[1..])),
        "stats" => done(cmd_stats(&args[1..])),
        "shutdown" => done(cmd_shutdown(&args[1..])),
        "gen" => done(cmd_gen(&args[1..])),
        "replay" => done(cmd_replay(&args[1..])),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     sufs verify <file> [--client NAME] [--jobs N] [--no-cache] [--prune] \
     [--plan-cap N] [--seed N] [--engine enumerative|compositional] \
     [--stats] [--json]\n  \
     sufs verify-net <file>\n  \
     sufs run <file> [--client NAME] [--plan r=loc,...] [--monitor] \
     [--committed] [--seed N] [--runs N] [--fuel N] [--trace|--mermaid] \
     [--faults k=v,...] [--recover]\n  \
     sufs lint <file> [--json] [--deny warnings]\n  \
     sufs lint --addr HOST:PORT [--json] [--deny warnings]\n  \
     sufs compliance <file> <client-service> <server-service>\n  \
     sufs discover <file> <client> [--request N]\n  \
     sufs lts <file> <service> [--dot]\n  \
     sufs bpa <file> <service>\n  \
     sufs serve [--addr HOST:PORT] [--max-clients N] [--jobs N] [--prune] \
     [--plan-cap N] [--fuel N] [--state-dir DIR] [--snapshot-every N] \
     [--follow HOST:PORT] [--ack local|quorum] [--cluster-size N] \
     [--deny-lint error|warnings] [--election auto|manual] \
     [--election-timeout MS] [--election-seed N] [--advertise HOST:PORT]\n  \
     sufs promote --addr HOST:PORT\n  \
     sufs publish <file> --addr HOST:PORT\n  \
     sufs plan <file> [--client NAME] [--engine enumerative|compositional] \
     --addr HOST:PORT\n  \
     sufs run-remote <file> [--client NAME] [--plan r=loc,...] \
     [--faults k=v,...] [--recover] [--committed] [--seed N] [--fuel N] \
     --addr HOST:PORT\n  \
     sufs retract <location> --addr HOST:PORT\n  \
     sufs stats --addr HOST:PORT\n  \
     sufs shutdown --addr HOST:PORT\n  \
     sufs gen --profile mesh|tree|pipeline|star [--services N] [--seed S] \
     [--policies deny,frame,cap] [--faults] [--out FILE] [--runfile]\n  \
     sufs gen --corpus DIR [--count N]\n  \
     sufs replay <file|dir> [--record] [--filter SUB] [--jobs N] \
     [--no-broker] [--diff-out FILE]"
        .to_owned()
}

/// A command line split into positional arguments, `--flag value` /
/// `--flag=value` pairs, and boolean switches.
struct Parsed {
    positional: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Parsed {
    fn value(&self, flag: &str) -> Option<&str> {
        // Last occurrence wins, as users expect when overriding.
        self.values
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

/// Parses `args` against the flags the command declares. Value flags
/// accept `--flag value` and `--flag=value`; anything starting with
/// `--` that is not declared is an error rather than silently ignored.
fn parse_args(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        positional: Vec::new(),
        values: Vec::new(),
        switches: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(rest) = arg.strip_prefix("--") else {
            parsed.positional.push(arg.clone());
            continue;
        };
        let (name, inline) = match rest.split_once('=') {
            Some((n, v)) => (n, Some(v)),
            None => (rest, None),
        };
        let flag = format!("--{name}");
        if value_flags.contains(&flag.as_str()) {
            let value = match inline {
                Some(v) => v.to_owned(),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("flag `{flag}` needs a value"))?,
            };
            parsed.values.push((flag, value));
        } else if switch_flags.contains(&flag.as_str()) {
            if inline.is_some() {
                return Err(format!("flag `{flag}` takes no value"));
            }
            parsed.switches.push(flag);
        } else {
            return Err(format!("unknown flag `{flag}`\n{}", usage()));
        }
    }
    Ok(parsed)
}

fn load(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_scenario(&text).map_err(|e| format!("{path}: {e}"))
}

fn pick_client<'a>(sc: &'a Scenario, name: Option<&'a str>) -> Result<(&'a str, &'a Hist), String> {
    match name {
        Some(n) => sc
            .client(n)
            .map(|h| (n, h))
            .ok_or_else(|| format!("no client named `{n}`")),
        None => sc
            .clients
            .first()
            .map(|(n, h)| (n.as_str(), h))
            .ok_or_else(|| "the scenario declares no clients".to_owned()),
    }
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let a = parse_args(
        args,
        &["--client", "--jobs", "--plan-cap", "--seed", "--engine"],
        &["--no-cache", "--prune", "--stats", "--json"],
    )?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let mut opts = sufs_core::SynthesisOptions::default();
    if let Some(s) = a.value("--jobs") {
        opts.jobs = s.parse().map_err(|_| format!("bad job count `{s}`"))?;
    }
    if let Some(s) = a.value("--plan-cap") {
        opts.plan_cap = s.parse().map_err(|_| format!("bad plan cap `{s}`"))?;
    }
    if let Some(s) = a.value("--seed") {
        opts.seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
    }
    if let Some(s) = a.value("--engine") {
        opts.engine = sufs_core::Engine::parse(s).ok_or_else(|| {
            format!("bad engine `{s}` (expected `enumerative` or `compositional`)")
        })?;
    }
    opts.cache = !a.has("--no-cache");
    opts.prune = a.has("--prune");
    let names: Vec<&str> = match a.value("--client") {
        Some(n) => vec![n],
        None => sc.clients.iter().map(|(n, _)| n.as_str()).collect(),
    };
    if names.is_empty() {
        return Err("the scenario declares no clients".into());
    }
    let json = a.has("--json");
    let mut clients_json: Vec<Json> = Vec::new();
    for name in names {
        let client = sc
            .client(name)
            .ok_or_else(|| format!("no client named `{name}`"))?;
        if !json {
            println!("== {name} ==");
        }
        let synthesis = sufs_core::synthesize(client, &sc.repository, &sc.registry, &opts)
            .map_err(|e| e.to_string())?;
        let report = &synthesis.report;
        if !json {
            print!("{report}");
            if a.has("--stats") {
                println!("synthesis: {}", synthesis.stats);
            }
        }
        // Quantitative budgets: check each valid plan against each budget.
        let mut budgets_json: Vec<Json> = Vec::new();
        for plan in report.valid_plans() {
            for budget in &sc.budgets {
                let verdict = sufs_policy::cost::check_cost_bound_lts(
                    sufs_net::symbolic::SymState::initial("client", client.clone()),
                    |s| sufs_net::symbolic::symbolic_successors(s, plan, &sc.repository),
                    budget,
                    1 << 20,
                )
                .map_err(|b| format!("cost analysis exceeded {b} states"))?;
                if json {
                    budgets_json.push(
                        Json::obj()
                            .with("policy", budget.policy.to_string())
                            .with("bound", budget.bound)
                            .with("plan", plan.to_string())
                            .with("verdict", verdict.to_string()),
                    );
                } else {
                    println!(
                        "  budget {} (≤{}) under {plan}: {verdict}",
                        budget.policy, budget.bound
                    );
                }
            }
        }
        if json {
            let verdicts: Vec<Json> = report
                .verdicts()
                .iter()
                .map(sufs_broker::verdict_json)
                .collect();
            let valid: Vec<Json> = report
                .valid_plans()
                .map(|p| Json::str(p.to_string()))
                .collect();
            clients_json.push(
                Json::obj()
                    .with("client", name)
                    .with("valid", valid)
                    .with("verdicts", verdicts)
                    .with("stats", sufs_broker::synth_stats_json(&synthesis.stats))
                    .with("budgets", budgets_json),
            );
        }
    }
    if json {
        let doc = Json::obj()
            .with("schema_version", 1u64)
            .with("file", path.as_str())
            .with("clients", clients_json);
        println!("{doc}");
    }
    Ok(())
}

/// Joint verification of every client at once: pick each client's first
/// individually valid plan, then search the joint state space for
/// capacity deadlocks.
fn cmd_verify_net(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &[], &[])?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    if sc.clients.is_empty() {
        return Err("the scenario declares no clients".into());
    }
    let mut specs = Vec::new();
    for (name, client) in &sc.clients {
        let report = verify(client, &sc.repository, &sc.registry).map_err(|e| e.to_string())?;
        let plan = report
            .valid_plans()
            .next()
            .cloned()
            .ok_or_else(|| format!("client `{name}` has no valid plan"))?;
        println!("{name}: using {plan}");
        specs.push(sufs_core::ClientSpec::new(
            Location::new(name.clone()),
            client.clone(),
            plan,
        ));
    }
    let report = sufs_core::verify_network(&specs, &sc.repository, &sc.registry, 1 << 20)
        .map_err(|e| e.to_string())?;
    match &report.joint_deadlock {
        Some(dl) => println!("joint analysis: {dl}"),
        None => println!("joint analysis: no reachable deadlock"),
    }
    if report.is_valid() {
        println!("the network is secure and unfailing: run it monitor-free.");
    }
    Ok(())
}

/// Runs the multi-pass lint engine over a scenario file, or — with
/// `--addr` and no file — over a broker's live repository. Exits
/// nonzero when errors are found, or when warnings are found under
/// `--deny warnings`.
fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_args(args, &["--deny", "--addr"], &["--json"])?;
    let deny_warnings = match a.value("--deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(format!(
                "unknown lint class `{other}` (only `warnings` can be denied)"
            ))
        }
    };
    if a.value("--addr").is_some() {
        if !a.positional.is_empty() {
            return Err("`sufs lint --addr` lints the broker's live repository; \
                        drop the file argument or the flag"
                .into());
        }
        return cmd_lint_remote(&a, deny_warnings);
    }
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let report = sufs_lint::lint_scenario(&sc).map_err(|e| e.to_string())?;
    if a.has("--json") {
        println!("{}", report.to_json(Some(path)));
    } else {
        println!("{report}");
    }
    let failed = report.errors() > 0 || (deny_warnings && report.warnings() > 0);
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `sufs lint --addr`: fetch the broker's incremental lint report. The
/// broker renders each diagnostic with the same serializer the local
/// `--json` mode uses, so the schema cannot drift.
fn cmd_lint_remote(a: &Parsed, deny_warnings: bool) -> Result<ExitCode, String> {
    let mut client = remote_client(a)?;
    let reply = check_reply(client.lint().map_err(|e| e.to_string())?)?;
    let errors = reply.u64_field("errors").unwrap_or(0);
    let warnings = reply.u64_field("warnings").unwrap_or(0);
    let infos = reply.u64_field("infos").unwrap_or(0);
    if a.has("--json") {
        let diagnostics = reply
            .get("diagnostics")
            .cloned()
            .unwrap_or_else(|| Json::Arr(Vec::new()));
        let doc = Json::obj()
            .with("diagnostics", diagnostics)
            .with(
                "summary",
                Json::obj()
                    .with("errors", errors)
                    .with("warnings", warnings)
                    .with("infos", infos),
            )
            .with(
                "incremental",
                Json::obj()
                    .with("passes_run", reply.u64_field("passes_run").unwrap_or(0))
                    .with(
                        "passes_reused",
                        reply.u64_field("passes_reused").unwrap_or(0),
                    ),
            );
        println!("{doc}");
    } else {
        println!("{}", reply.str_field("human").unwrap_or(""));
        println!(
            "incremental: {} pass(es) run, {} reused",
            reply.u64_field("passes_run").unwrap_or(0),
            reply.u64_field("passes_reused").unwrap_or(0),
        );
    }
    let failed = errors > 0 || (deny_warnings && warnings > 0);
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn parse_plan(spec: &str) -> Result<Plan, String> {
    let mut plan = Plan::new();
    for binding in spec.split(',').filter(|s| !s.is_empty()) {
        let (r, loc) = binding
            .split_once('=')
            .ok_or_else(|| format!("bad plan binding `{binding}` (want r=loc)"))?;
        let r: u32 = r
            .trim_start_matches('r')
            .parse()
            .map_err(|_| format!("bad request id `{r}`"))?;
        plan.bind(r, loc);
    }
    Ok(plan)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let a = parse_args(
        args,
        &[
            "--client", "--plan", "--seed", "--runs", "--fuel", "--faults",
        ],
        &[
            "--monitor",
            "--committed",
            "--trace",
            "--mermaid",
            "--recover",
        ],
    )?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let (name, client) = pick_client(&sc, a.value("--client"))?;

    let plan = match a.value("--plan") {
        Some(spec) => parse_plan(spec)?,
        None => {
            let report = verify(client, &sc.repository, &sc.registry).map_err(|e| e.to_string())?;
            let plan = report
                .valid_plans()
                .next()
                .cloned()
                .ok_or_else(|| "no valid plan exists; pass --plan to force one".to_owned())?;
            println!("using the verified plan {plan}");
            plan
        }
    };

    let monitor = if a.has("--monitor") {
        MonitorMode::Enforcing
    } else {
        MonitorMode::Audit
    };
    let choice = if a.has("--committed") {
        ChoiceMode::Committed
    } else {
        ChoiceMode::Angelic
    };
    let seed: u64 = a
        .value("--seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(0);
    let runs: usize = a
        .value("--runs")
        .map(|s| s.parse().map_err(|_| format!("bad runs `{s}`")))
        .transpose()?
        .unwrap_or(1);
    let fuel: usize = a
        .value("--fuel")
        .map(|s| s.parse().map_err(|_| format!("bad fuel `{s}`")))
        .transpose()?
        .unwrap_or(100_000);

    // Fault injection: an explicit --faults spec wins over the
    // scenario's own `faults { … }` block.
    let faults = match a.value("--faults") {
        Some(spec) => Some(sufs_net::FaultPlan::parse(spec)?),
        None => sc.faults.clone(),
    };
    let mut scheduler = Scheduler::new(&sc.repository, &sc.registry, monitor, choice);
    if let Some(f) = faults {
        println!("injecting faults: {f}");
        scheduler = scheduler.with_faults(f);
    }
    if a.has("--recover") {
        let table = sufs_core::recovery::recovery_table(
            std::slice::from_ref(client),
            &sc.repository,
            &sc.registry,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "recovery armed: {} verified fallback plan(s)",
            table.chain(0).len()
        );
        scheduler = scheduler.with_recovery(table);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut network = Network::new();
    network.add_client(Location::new(name), client.clone(), plan);

    if runs == 1 {
        let result = scheduler
            .run(network.clone(), &mut rng, fuel)
            .map_err(|e| e.to_string())?;
        if a.has("--mermaid") {
            println!("{}", sufs_net::trace::render_mermaid(&result.trace));
        } else if a.has("--trace") {
            match sufs_net::trace::render_trace(&network, &result.trace, &sc.repository) {
                Some(rendered) => println!("{rendered}"),
                None => println!("{}", sufs_net::trace::render_actions(&result.trace)),
            }
        } else {
            println!("{}", sufs_net::trace::render_actions(&result.trace));
        }
        println!("outcome: {:?}", result.outcome);
        for e in &result.faults {
            println!("fault {e}");
        }
        for (i, p) in &result.violations {
            println!("component {i} violated {p}");
        }
    } else {
        let summary = scheduler
            .run_batch(&network, runs, &mut rng, fuel)
            .map_err(|e| e.to_string())?;
        println!("{summary}");
        if summary.is_unfailing() {
            println!("unfailing: no deadlocks, no aborts, no violations.");
        }
    }
    Ok(())
}

fn cmd_compliance(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &[], &[])?;
    let [path, x, y] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let ha = service_or_client(&sc, x)?;
    let hb = service_or_client(&sc, y)?;
    let ca = Contract::from_service(&ha).map_err(|e| e.to_string())?;
    let cb = Contract::from_service(&hb).map_err(|e| e.to_string())?;
    println!("{x}! = {ca}");
    println!("{y}! = {cb}");
    let result = compliant(&ca, &cb);
    println!("{x} ⊢ {y}: {result}");
    Ok(())
}

fn service_or_client(sc: &Scenario, name: &str) -> Result<Hist, String> {
    if let Some(h) = sc.repository.get(&Location::new(name)) {
        return Ok(h.clone());
    }
    if let Some(h) = sc.client(name) {
        // For a client, the interesting side is its first request body.
        let reqs = sufs_hexpr::requests::requests(h);
        if let Some(r) = reqs.first() {
            return Ok(r.body.clone());
        }
        return Ok(h.clone());
    }
    Err(format!("no service or client named `{name}`"))
}

fn cmd_discover(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--request"], &[])?;
    let [path, name] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let client = sc
        .client(name)
        .ok_or_else(|| format!("no client named `{name}`"))?;
    let requests = sufs_hexpr::requests::requests(client);
    if requests.is_empty() {
        return Err(format!("client `{name}` makes no requests"));
    }
    let wanted: Option<u32> = a
        .value("--request")
        .map(|s| s.parse().map_err(|_| format!("bad request id `{s}`")))
        .transpose()?;
    for info in &requests {
        if wanted.is_some_and(|w| w != info.id.index()) {
            continue;
        }
        println!("request {} (conversation: {}):", info.id, info.body);
        let results = sufs_core::discover(&info.body, &sc.repository).map_err(|e| e.to_string())?;
        for c in results {
            if c.matches() {
                println!("  ✓ {}", c.location);
            } else {
                println!("  ✗ {}: {}", c.location, c.rejection.unwrap());
            }
        }
    }
    Ok(())
}

fn cmd_lts(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &[], &["--dot"])?;
    let [path, name] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let h = service_or_client(&sc, name)?;
    let lts = HistLts::build(&h).map_err(|e| e.to_string())?;
    if a.has("--dot") {
        println!("{}", lts.to_dot());
    } else {
        println!("{} states, {} edges", lts.len(), lts.iter_edges().count());
        for (s, l, t) in lts.iter_edges() {
            println!("  q{s} ──{l}──▸ q{t}");
        }
    }
    Ok(())
}

fn cmd_bpa(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &[], &[])?;
    let [path, name] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let h = service_or_client(&sc, name)?;
    let bpa = sufs_hexpr::bpa::BpaSystem::from_hist(&h);
    print!("{bpa}");
    Ok(())
}

/// Starts the broker daemon in the foreground; see `docs/BROKER.md`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let a = parse_args(
        args,
        &[
            "--addr",
            "--max-clients",
            "--jobs",
            "--plan-cap",
            "--fuel",
            "--state-dir",
            "--snapshot-every",
            "--follow",
            "--ack",
            "--cluster-size",
            "--deny-lint",
            "--election",
            "--election-timeout",
            "--election-seed",
            "--advertise",
        ],
        &["--prune"],
    )?;
    if !a.positional.is_empty() {
        return Err(usage());
    }
    let mut config = BrokerConfig::default();
    if let Some(dir) = a.value("--state-dir") {
        config.state_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(s) = a.value("--snapshot-every") {
        config.snapshot_every = s
            .parse()
            .map_err(|_| format!("bad snapshot threshold `{s}`"))?;
    }
    if let Some(addr) = a.value("--addr") {
        config.addr = addr.to_owned();
    }
    if let Some(s) = a.value("--max-clients") {
        config.max_clients = s.parse().map_err(|_| format!("bad client cap `{s}`"))?;
    }
    if let Some(s) = a.value("--jobs") {
        config.opts.jobs = s.parse().map_err(|_| format!("bad job count `{s}`"))?;
    }
    if let Some(s) = a.value("--plan-cap") {
        config.opts.plan_cap = s.parse().map_err(|_| format!("bad plan cap `{s}`"))?;
    }
    if let Some(s) = a.value("--fuel") {
        config.fuel = s.parse().map_err(|_| format!("bad fuel `{s}`"))?;
    }
    if let Some(addr) = a.value("--follow") {
        config.follow = Some(addr.to_owned());
    }
    if let Some(s) = a.value("--ack") {
        config.ack = sufs_broker::AckMode::parse(s)?;
    }
    if let Some(s) = a.value("--cluster-size") {
        config.cluster_size = s.parse().map_err(|_| format!("bad cluster size `{s}`"))?;
    }
    if let Some(s) = a.value("--deny-lint") {
        config.deny_lint = Some(sufs_broker::lint::parse_deny_level(s)?);
    }
    if let Some(s) = a.value("--election") {
        config.election = sufs_broker::ElectionMode::parse(s)?;
    }
    if let Some(s) = a.value("--election-timeout") {
        let ms: u64 = s
            .parse()
            .map_err(|_| format!("bad election timeout `{s}` (want milliseconds)"))?;
        if ms == 0 {
            return Err(format!("bad election timeout `{s}` (want milliseconds)"));
        }
        config.election_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(s) = a.value("--election-seed") {
        config.election_seed = s.parse().map_err(|_| format!("bad election seed `{s}`"))?;
    }
    if let Some(addr) = a.value("--advertise") {
        config.advertise = Some(addr.to_owned());
    }
    config.opts.prune = a.has("--prune");
    let handle = Broker::spawn(config).map_err(|e| format!("cannot start broker: {e}"))?;
    println!("sufs broker listening on {}", handle.addr());
    // Serve until a `shutdown` request drains the daemon.
    handle.wait();
    println!("sufs broker drained");
    Ok(())
}

/// Promotes a following broker to primary; see `docs/BROKER.md`.
fn cmd_promote(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--addr"], &[])?;
    if !a.positional.is_empty() {
        return Err(usage());
    }
    let mut client = remote_client(&a)?;
    let reply = check_reply(client.promote().map_err(|e| e.to_string())?)?;
    if reply.bool_field("changed") == Some(true) {
        println!(
            "broker promoted to primary at seq {}",
            reply.u64_field("applied_seq").unwrap_or(0)
        );
    } else {
        println!("broker is already the primary");
    }
    Ok(())
}

/// The `--addr` every remote command requires. A comma-separated list
/// (`--addr a:1,b:2`) connects to the first reachable node and rotates
/// through the rest on redial — the client side of broker failover.
fn remote_client(a: &Parsed) -> Result<BrokerClient, String> {
    let addr = a
        .value("--addr")
        .ok_or_else(|| "remote commands need --addr HOST:PORT".to_owned())?;
    let addrs: Vec<String> = addr
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    let client =
        BrokerClient::connect_any(&addrs).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if addrs.len() > 1 {
        Ok(client.with_reconnect(sufs_broker::ReconnectPolicy::default().with_addrs(addrs)))
    } else {
        Ok(client)
    }
}

/// Prints a reply, failing the command when the broker said `ok: false`.
fn check_reply(reply: Json) -> Result<Json, String> {
    if reply.bool_field("ok") == Some(true) {
        Ok(reply)
    } else {
        let kind = reply.str_field("kind").unwrap_or("error");
        let msg = reply.str_field("error").unwrap_or("unknown broker error");
        Err(format!("broker refused ({kind}): {msg}"))
    }
}

/// Publishes every service and policy of a scenario file to a broker.
fn cmd_publish(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--addr"], &[])?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut client = remote_client(&a)?;
    let reply = check_reply(client.publish_scenario(&text).map_err(|e| e.to_string())?)?;
    println!(
        "published {} service(s), {} policy(ies) ({} cache entries evicted)",
        reply.u64_field("services").unwrap_or(0),
        reply.u64_field("policies").unwrap_or(0),
        reply.u64_field("evicted").unwrap_or(0),
    );
    Ok(())
}

/// Asks a broker to synthesize plans for a scenario's client.
fn cmd_plan(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--addr", "--client", "--engine"], &[])?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let (name, hist) = pick_client(&sc, a.value("--client"))?;
    let mut extra = Json::obj();
    if let Some(s) = a.value("--engine") {
        sufs_core::Engine::parse(s).ok_or_else(|| {
            format!("bad engine `{s}` (expected `enumerative` or `compositional`)")
        })?;
        extra.set("engine", s);
    }
    let mut client = remote_client(&a)?;
    let reply = check_reply(
        client
            .plan_with(&hist.to_string(), extra)
            .map_err(|e| e.to_string())?,
    )?;
    println!("== {name} (remote) ==");
    let verdicts = reply.get("verdicts").and_then(Json::as_arr).unwrap_or(&[]);
    let valid = reply.get("valid").and_then(Json::as_arr).unwrap_or(&[]);
    println!(
        "examined {} candidate plan(s): {} valid, {} rejected",
        verdicts.len(),
        valid.len(),
        verdicts.len() - valid.len()
    );
    for v in verdicts {
        let plan = v.str_field("plan").unwrap_or("?");
        if v.bool_field("valid") == Some(true) {
            println!("  ✓ {plan}");
        } else {
            println!("  ✗ {plan}");
            for violation in v.get("violations").and_then(Json::as_arr).unwrap_or(&[]) {
                if let Some(msg) = violation.as_str() {
                    println!("      - {msg}");
                }
            }
        }
    }
    if let Some(stats) = reply.get("stats") {
        println!("synthesis: {stats}");
    }
    Ok(())
}

/// Executes a scenario's client on a broker's live repository.
fn cmd_run_remote(args: &[String]) -> Result<(), String> {
    let a = parse_args(
        args,
        &[
            "--addr", "--client", "--plan", "--faults", "--seed", "--fuel",
        ],
        &["--recover", "--committed", "--monitor"],
    )?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let sc = load(path)?;
    let (name, hist) = pick_client(&sc, a.value("--client"))?;
    let mut extra = Json::obj();
    if let Some(spec) = a.value("--plan") {
        extra.set("plan", spec);
    }
    if let Some(spec) = a.value("--faults") {
        extra.set("faults", spec);
    }
    if let Some(s) = a.value("--seed") {
        let seed: u64 = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
        extra.set("seed", seed);
    }
    if let Some(s) = a.value("--fuel") {
        let fuel: u64 = s.parse().map_err(|_| format!("bad fuel `{s}`"))?;
        extra.set("fuel", fuel);
    }
    if a.has("--recover") {
        extra.set("recover", true);
    }
    if a.has("--committed") {
        extra.set("committed", true);
    }
    if a.has("--monitor") {
        extra.set("monitor", true);
    }
    let mut client = remote_client(&a)?;
    let reply = check_reply(
        client
            .run(&hist.to_string(), extra)
            .map_err(|e| e.to_string())?,
    )?;
    println!(
        "{name} under {}: {} ({} steps, {} fault(s), {} violation(s))",
        reply.str_field("plan").unwrap_or("?"),
        reply.str_field("outcome").unwrap_or("?"),
        reply.u64_field("steps").unwrap_or(0),
        reply.u64_field("faults").unwrap_or(0),
        reply.u64_field("violations").unwrap_or(0),
    );
    Ok(())
}

/// Retracts a service from a broker's repository.
fn cmd_retract(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--addr"], &[])?;
    let [location] = a.positional.as_slice() else {
        return Err(usage());
    };
    let mut client = remote_client(&a)?;
    let reply = check_reply(client.retract(location).map_err(|e| e.to_string())?)?;
    println!(
        "{} ({} cache entries evicted)",
        reply.str_field("event").unwrap_or("?"),
        reply.u64_field("evicted").unwrap_or(0),
    );
    Ok(())
}

/// Prints a broker's stats reply as JSON.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--addr"], &[])?;
    if !a.positional.is_empty() {
        return Err(usage());
    }
    let mut client = remote_client(&a)?;
    let reply = check_reply(client.stats().map_err(|e| e.to_string())?)?;
    println!("{reply}");
    Ok(())
}

/// Asks a broker to drain and exit.
fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let a = parse_args(args, &["--addr"], &[])?;
    if !a.positional.is_empty() {
        return Err(usage());
    }
    let mut client = remote_client(&a)?;
    check_reply(client.shutdown().map_err(|e| e.to_string())?)?;
    println!("broker draining");
    Ok(())
}

/// Generates a seeded scenario (or, with `--corpus`, the full standard
/// corpus plus run-file skeletons).
fn cmd_gen(args: &[String]) -> Result<(), String> {
    let a = parse_args(
        args,
        &[
            "--profile",
            "--services",
            "--seed",
            "--policies",
            "--out",
            "--corpus",
            "--count",
        ],
        &["--faults", "--runfile"],
    )?;
    if !a.positional.is_empty() {
        return Err(usage());
    }

    if let Some(dir) = a.value("--corpus") {
        let count: u64 = a
            .value("--count")
            .map(|s| s.parse().map_err(|_| format!("bad count `{s}`")))
            .transpose()?
            .unwrap_or(130);
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut written = 0usize;
        for profile in sufs_corpus::PROFILES {
            for i in 0..count {
                let cfg = sufs_corpus::corpus_config(profile, i);
                let generated = sufs_corpus::generate(&cfg);
                let stem = format!("{profile}_{i:04}");
                let scenario_path = dir.join(format!("{stem}.sufs"));
                std::fs::write(&scenario_path, &generated.scenario)
                    .map_err(|e| format!("cannot write {}: {e}", scenario_path.display()))?;
                let runfile = sufs_corpus::runfile::skeleton(
                    &format!("{stem}.sufs"),
                    &generated,
                    &cfg.command_line(),
                    cfg.seed,
                );
                let run_path = dir.join(format!("{stem}.sufsrun"));
                std::fs::write(&run_path, runfile.serialize())
                    .map_err(|e| format!("cannot write {}: {e}", run_path.display()))?;
                written += 1;
            }
        }
        println!(
            "wrote {written} scenario(s) with run files under {} ({} per profile)",
            dir.display(),
            count
        );
        return Ok(());
    }

    let profile = match a.value("--profile") {
        Some(s) => sufs_corpus::Profile::parse(s)
            .ok_or_else(|| format!("bad profile `{s}` (expected mesh|tree|pipeline|star)"))?,
        None => return Err("`sufs gen` needs --profile (or --corpus DIR)".to_owned()),
    };
    let services: usize = a
        .value("--services")
        .map(|s| s.parse().map_err(|_| format!("bad service count `{s}`")))
        .transpose()?
        .unwrap_or(4);
    let seed: u64 = a
        .value("--seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(0);
    let policies = sufs_corpus::PolicyMix::parse(a.value("--policies").unwrap_or(""))?;
    let cfg = sufs_corpus::GenConfig {
        seed,
        services,
        profile,
        faults: a.has("--faults"),
        policies,
    };
    let generated = sufs_corpus::generate(&cfg);

    match a.value("--out") {
        None => {
            if a.has("--runfile") {
                return Err(
                    "`--runfile` needs `--out` (the run file is written next to it)".to_owned(),
                );
            }
            print!("{}", generated.scenario);
        }
        Some(out) => {
            let out = std::path::Path::new(out);
            std::fs::write(out, &generated.scenario)
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            println!(
                "wrote {} ({} service(s), {} client(s))",
                out.display(),
                generated.services,
                generated.clients.len()
            );
            if a.has("--runfile") {
                let scenario_rel = out
                    .file_name()
                    .and_then(|n| n.to_str())
                    .ok_or_else(|| format!("bad output path {}", out.display()))?;
                let runfile = sufs_corpus::runfile::skeleton(
                    scenario_rel,
                    &generated,
                    &cfg.command_line(),
                    cfg.seed,
                );
                let run_path = out.with_extension("sufsrun");
                std::fs::write(&run_path, runfile.serialize())
                    .map_err(|e| format!("cannot write {}: {e}", run_path.display()))?;
                println!(
                    "wrote {} (record with `sufs replay --record`)",
                    run_path.display()
                );
            }
        }
    }
    Ok(())
}

/// Replays `.sufsrun` conformance files (or records their transcripts).
fn cmd_replay(args: &[String]) -> Result<(), String> {
    let a = parse_args(
        args,
        &["--filter", "--jobs", "--diff-out"],
        &["--record", "--no-broker"],
    )?;
    let [path] = a.positional.as_slice() else {
        return Err(usage());
    };
    let jobs: usize = match a.value("--jobs") {
        Some(s) => {
            let n: usize = s.parse().map_err(|_| format!("bad job count `{s}`"))?;
            if n == 0 {
                sufs_core::pool::default_jobs()
            } else {
                n
            }
        }
        None => 1,
    };
    let opts = sufs_corpus::ReplayOptions {
        record: a.has("--record"),
        no_broker: a.has("--no-broker"),
        filter: a.value("--filter").map(str::to_owned),
        jobs,
    };
    let summary = sufs_corpus::replay_path(std::path::Path::new(path), &opts)?;
    for file in &summary.files {
        if !file.passed() {
            println!("FAIL {}", file.path.display());
            for failure in &file.failures {
                println!("  {failure}");
            }
        }
    }
    if let Some(out) = a.value("--diff-out") {
        if summary.failed() > 0 {
            std::fs::write(out, summary.diff_report())
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("transcript diff written to {out}");
        }
    }
    let updated = if opts.record {
        format!(", {} recorded", summary.updated())
    } else {
        String::new()
    };
    println!(
        "replayed {} file(s): {} passed, {} failed ({} step(s){updated})",
        summary.files.len(),
        summary.passed(),
        summary.failed(),
        summary.steps()
    );
    if summary.failed() > 0 {
        return Err(format!("{} run file(s) failed", summary.failed()));
    }
    Ok(())
}

// Silence the unused warning for RequestId, kept for plan parsing docs.
#[allow(dead_code)]
fn _types(_: RequestId) {}
