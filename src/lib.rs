//! # sufs — Secure and Unfailing Services
//!
//! A complete implementation of Basile, Degano and Ferrari's *Secure and
//! Unfailing Services*: history expressions with communication, parametric
//! usage-automata security policies, behavioural contracts with compliance
//! checking via product automata, networks of services with nested
//! sessions, and static synthesis of **valid plans** — orchestrations under
//! which a network of services never violates a security policy and never
//! gets stuck on a missing communication, so that *no run-time monitor is
//! needed*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`hexpr`] — history expressions (syntax, semantics, LTS, projection,
//!   ready sets, parser);
//! * [`automata`] — the generic NFA/DFA substrate;
//! * [`policy`] — usage automata, histories and validity;
//! * [`contract`] — behavioural contracts and compliance (Theorem 1);
//! * [`net`] — networks, plans, the run-time monitor and schedulers;
//! * [`lang`] — a service λ-calculus whose type-and-effect system extracts
//!   history expressions;
//! * [`core`] — the verification pipeline computing valid plans.
//!
//! # Quickstart
//!
//! ```
//! use sufs::prelude::*;
//!
//! // A client that opens a session, sends a request and expects either a
//! // confirmation or a rejection; and one matching / one broken service.
//! let client = request(1, None, seq([
//!     send("req", eps()),
//!     offer([("ok", eps()), ("no", eps())]),
//! ]));
//! let good = recv("req", choose([("ok", eps()), ("no", eps())]));
//! let bad = recv("req", choose([("later", eps())]));
//!
//! let mut repo = Repository::new();
//! repo.publish("good", good);
//! repo.publish("bad", bad);
//!
//! let report = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
//! let valid: Vec<_> = report.valid_plans().collect();
//! assert_eq!(valid.len(), 1);
//! assert_eq!(valid[0].service_for(RequestId::new(1)).unwrap().as_str(), "good");
//! ```

#![warn(missing_docs)]

pub mod paper;

pub use sufs_automata as automata;
pub use sufs_contract as contract;
pub use sufs_core as core;
pub use sufs_hexpr as hexpr;
pub use sufs_lang as lang;
pub use sufs_net as net;
pub use sufs_policy as policy;

/// A convenient single import for the common API surface.
pub mod prelude {
    pub use sufs_contract::compliance::{compliant, ComplianceResult};
    pub use sufs_contract::contract::Contract;
    pub use sufs_core::report::VerifyReport;
    pub use sufs_core::verify::verify;
    pub use sufs_hexpr::builder::*;
    pub use sufs_hexpr::{parse_hist, Hist, Label, Location, PolicyRef, RequestId};
    pub use sufs_net::plan::Plan;
    pub use sufs_net::repository::Repository;
    pub use sufs_policy::registry::PolicyRegistry;
}
