//! Types of the service λ-calculus: `τ ::= unit | τ ──H──▸ τ`.
//!
//! Arrow types carry a *latent effect* `H`: the history expression that
//! applying the function unleashes. Effect equality is structural over
//! the canonical form of history expressions (so `ε·H` and `H` agree).

use std::fmt;

use sufs_hexpr::Hist;

/// A type of the calculus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// The unit type.
    Unit,
    /// A function type with its latent effect: `τ ──H──▸ τ'`.
    Arrow(Box<Ty>, Hist, Box<Ty>),
}

impl Ty {
    /// A pure function type (latent effect `ε`).
    pub fn pure_arrow(from: Ty, to: Ty) -> Ty {
        Ty::Arrow(Box::new(from), Hist::Eps, Box::new(to))
    }

    /// A function type with latent effect `h`.
    pub fn arrow(from: Ty, latent: Hist, to: Ty) -> Ty {
        Ty::Arrow(Box::new(from), latent, Box::new(to))
    }

    /// Returns `true` for [`Ty::Unit`].
    pub fn is_unit(&self) -> bool {
        matches!(self, Ty::Unit)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => write!(f, "unit"),
            Ty::Arrow(a, h, b) => {
                if h.is_eps() {
                    write!(f, "({a} -> {b})")
                } else {
                    write!(f, "({a} -[{h}]-> {b})")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    #[test]
    fn display() {
        assert_eq!(Ty::Unit.to_string(), "unit");
        assert_eq!(
            Ty::pure_arrow(Ty::Unit, Ty::Unit).to_string(),
            "(unit -> unit)"
        );
        let eff = parse_hist("#a").unwrap();
        assert_eq!(
            Ty::arrow(Ty::Unit, eff, Ty::Unit).to_string(),
            "(unit -[#a]-> unit)"
        );
    }

    #[test]
    fn canonical_effects_compare_equal() {
        let h1 = Hist::seq(Hist::Eps, parse_hist("#a").unwrap());
        let h2 = parse_hist("#a").unwrap();
        assert_eq!(
            Ty::arrow(Ty::Unit, h1, Ty::Unit),
            Ty::arrow(Ty::Unit, h2, Ty::Unit)
        );
    }
}
