//! A parser for the concrete syntax of the service λ-calculus.
//!
//! ```text
//! e    := p (';' e)?                       sequencing
//! p    := 'let' x '=' c ';' e              let (binds to the end)
//!       | c
//! c    := atom ('(' e ')')*                application by juxtaposed calls
//! atom := '()' | ident
//!       | 'fun' '(' x ':' ty ')' '{' e '}'
//!       | 'rec' f '(' x ':' ty ')' '->' ty '{' e '}'
//!       | '#' name ['(' value,* ')']       access event
//!       | 'frame' polref '[' e ']'
//!       | 'open' nat ['phi' polref] '{' e '}'
//!       | 'send' chan
//!       | 'offer' '[' b ('|' b)* ']'
//!       | 'choose' '[' b ('|' b)* ']'
//!       | '(' e ')'
//! b    := chan '->' e
//! ty   := 'unit' | 'fun' '(' ty ')' '->' ty    (pure arrows)
//! ```
//!
//! Effect-annotated arrow types are available through the builder API
//! ([`crate::ty::Ty::arrow`]); the concrete syntax deliberately sticks
//! to pure arrows.

use std::fmt;

use crate::ast::Expr;
use crate::ty::Ty;
use sufs_hexpr::{Channel, Event, ParamValue, PolicyRef, Value};

/// A parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LangParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LangParseError {}

/// Parses an expression of the service λ-calculus.
///
/// # Errors
///
/// Returns a [`LangParseError`] pointing at the first offending token.
///
/// # Examples
///
/// ```
/// use sufs_lang::parser::parse_expr;
///
/// let e = parse_expr(
///     "#sgn(1); offer[idc -> choose[bok -> () | una -> ()]]",
/// ).unwrap();
/// let te = sufs_lang::infer::infer(&e).unwrap();
/// assert!(!te.effect.is_eps());
/// ```
pub fn parse_expr(input: &str) -> Result<Expr, LangParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let e = p.seq()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.err("expected end of input"));
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> LangParseError {
        LangParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        let bytes = self.input.as_bytes();
        loop {
            while self.pos < bytes.len() && (bytes[self.pos] as char).is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.input[self.pos..].starts_with("//") {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(tok) {
            // Keywords must not glue onto a following identifier char.
            if tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                let after = self.input[self.pos + tok.len()..].chars().next();
                if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return false;
                }
            }
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), LangParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }

    fn ident(&mut self) -> Result<String, LangParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos < bytes.len()
            && ((bytes[self.pos] as char).is_ascii_alphabetic() || bytes[self.pos] == b'_')
        {
            while self.pos < bytes.len()
                && ((bytes[self.pos] as char).is_ascii_alphanumeric() || bytes[self.pos] == b'_')
            {
                self.pos += 1;
            }
            Ok(self.input[start..self.pos].to_owned())
        } else {
            Err(self.err("expected identifier"))
        }
    }

    fn nat(&mut self) -> Result<u32, LangParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    fn int(&mut self) -> Result<i64, LangParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos < bytes.len() && bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos || (self.pos - start == 1 && bytes[start] == b'-') {
            return Err(self.err("expected an integer"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn seq(&mut self) -> Result<Expr, LangParseError> {
        let first = self.prefix()?;
        self.skip_ws();
        if self.eat(";") {
            let rest = self.seq()?;
            Ok(Expr::seq(first, rest))
        } else {
            Ok(first)
        }
    }

    fn prefix(&mut self) -> Result<Expr, LangParseError> {
        if self.eat("let") {
            let x = self.ident()?;
            self.expect("=")?;
            let bound = self.call()?;
            self.expect(";")?;
            let body = self.seq()?;
            return Ok(Expr::let_(x, bound, body));
        }
        self.call()
    }

    fn call(&mut self) -> Result<Expr, LangParseError> {
        let mut e = self.atom()?;
        loop {
            self.skip_ws();
            if self.peek_char() == Some('(') && !matches!(e, Expr::Unit) {
                // a call: f(arg)
                self.expect("(")?;
                if self.eat(")") {
                    e = Expr::app(e, Expr::Unit);
                } else {
                    let arg = self.seq()?;
                    self.expect(")")?;
                    e = Expr::app(e, arg);
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, LangParseError> {
        self.skip_ws();
        if self.eat("()") {
            return Ok(Expr::Unit);
        }
        if self.eat("#") {
            let name = self.ident()?;
            let mut args = Vec::new();
            self.skip_ws();
            if self.eat("(") && !self.eat(")") {
                loop {
                    args.push(self.value()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(")")?;
            }
            return Ok(Expr::Event(Event::new(name, args)));
        }
        if self.eat("fun") {
            self.expect("(")?;
            let x = self.ident()?;
            self.expect(":")?;
            let ty = self.ty()?;
            self.expect(")")?;
            self.expect("{")?;
            let body = self.seq()?;
            self.expect("}")?;
            return Ok(Expr::lam(x, ty, body));
        }
        if self.eat("rec") {
            let f = self.ident()?;
            self.expect("(")?;
            let x = self.ident()?;
            self.expect(":")?;
            let pty = self.ty()?;
            self.expect(")")?;
            self.expect("->")?;
            let rty = self.ty()?;
            self.expect("{")?;
            let body = self.seq()?;
            self.expect("}")?;
            return Ok(Expr::fun(f, x, pty, rty, body));
        }
        if self.eat("frame") {
            let p = self.policy_ref()?;
            self.expect("[")?;
            let body = self.seq()?;
            self.expect("]")?;
            return Ok(Expr::frame(p, body));
        }
        if self.eat("open") {
            let id = self.nat()?;
            let policy = if self.eat("phi") {
                Some(self.policy_ref()?)
            } else {
                None
            };
            self.expect("{")?;
            let body = self.seq()?;
            self.expect("}")?;
            return Ok(Expr::request(id, policy, body));
        }
        if self.eat("send") {
            let c = self.ident()?;
            return Ok(Expr::Send(Channel::new(c)));
        }
        if self.eat("offer") {
            return Ok(Expr::Offer(self.branches()?));
        }
        if self.eat("choose") {
            return Ok(Expr::Choose(self.branches()?));
        }
        if self.eat("(") {
            let e = self.seq()?;
            self.expect(")")?;
            return Ok(e);
        }
        // Bare identifier (variable).
        let x = self
            .ident()
            .map_err(|_| self.err("expected an expression"))?;
        if [
            "let", "fun", "rec", "open", "frame", "send", "offer", "choose",
        ]
        .contains(&x.as_str())
        {
            return Err(self.err(format!("unexpected keyword `{x}`")));
        }
        Ok(Expr::Var(x))
    }

    fn branches(&mut self) -> Result<Vec<(Channel, Expr)>, LangParseError> {
        self.expect("[")?;
        let mut out = Vec::new();
        loop {
            let c = self.ident()?;
            self.expect("->")?;
            let e = self.seq()?;
            out.push((Channel::new(c), e));
            if self.eat("|") {
                continue;
            }
            self.expect("]")?;
            break;
        }
        Ok(out)
    }

    fn ty(&mut self) -> Result<Ty, LangParseError> {
        if self.eat("unit") {
            return Ok(Ty::Unit);
        }
        if self.eat("fun") {
            self.expect("(")?;
            let from = self.ty()?;
            self.expect(")")?;
            self.expect("->")?;
            let to = self.ty()?;
            return Ok(Ty::pure_arrow(from, to));
        }
        Err(self.err("expected a type"))
    }

    fn policy_ref(&mut self) -> Result<PolicyRef, LangParseError> {
        let name = self.ident()?;
        let mut args = Vec::new();
        self.skip_ws();
        if self.peek_char() == Some('(') {
            self.expect("(")?;
            if !self.eat(")") {
                loop {
                    args.push(self.param()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(")")?;
            }
        }
        Ok(PolicyRef::new(name, args))
    }

    fn param(&mut self) -> Result<ParamValue, LangParseError> {
        self.skip_ws();
        if self.eat("{") {
            let mut vals = Vec::new();
            if !self.eat("}") {
                loop {
                    vals.push(self.value()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("}")?;
            }
            return Ok(ParamValue::Set(vals.into_iter().collect()));
        }
        Ok(ParamValue::Scalar(self.value()?))
    }

    fn value(&mut self) -> Result<Value, LangParseError> {
        self.skip_ws();
        match self.peek_char() {
            Some(c) if c.is_ascii_digit() || c == '-' => Ok(Value::Int(self.int()?)),
            _ => Ok(Value::Str(self.ident()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer;

    #[test]
    fn parses_unit_and_events() {
        assert_eq!(parse_expr("()").unwrap(), Expr::Unit);
        assert_eq!(
            parse_expr("#sgn(1)").unwrap(),
            Expr::Event(Event::new("sgn", [1i64]))
        );
    }

    #[test]
    fn parses_sequences_and_let() {
        let e = parse_expr("let x = #a; send q; ()").unwrap();
        match e {
            Expr::Let(x, bound, body) => {
                assert_eq!(x, "x");
                assert!(matches!(*bound, Expr::Event(_)));
                assert!(matches!(*body, Expr::Seq(..)));
            }
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn parses_functions_and_calls() {
        let e = parse_expr("fun(x: unit) { x }(())").unwrap();
        assert!(matches!(e, Expr::App(..)));
        let e =
            parse_expr("rec f(x: unit) -> unit { choose[go -> f(x) | stop -> ()] }(())").unwrap();
        let te = infer(&e).unwrap();
        assert!(sufs_hexpr::wf::check(&te.effect).is_ok());
    }

    #[test]
    fn parses_services_like_the_paper() {
        let hotel =
            parse_expr("#sgn(1); #p(45); #ta(80); offer[idc -> choose[bok -> () | una -> ()]]")
                .unwrap();
        let te = infer(&hotel).unwrap();
        assert_eq!(
            te.effect,
            sufs_hexpr::parse_hist(
                "#sgn(1); #p(45); #ta(80); ext[idc -> int[bok -> eps | una -> eps]]"
            )
            .unwrap()
        );
    }

    #[test]
    fn parses_request_with_policy() {
        let e =
            parse_expr("open 1 phi hotel({s1}, 45, 100) { send req; offer[ok -> ()] }").unwrap();
        match &e {
            Expr::Request { id, policy, .. } => {
                assert_eq!(id.index(), 1);
                assert_eq!(policy.as_ref().unwrap().name(), "hotel");
                assert_eq!(policy.as_ref().unwrap().args().len(), 3);
            }
            other => panic!("expected Request, got {other:?}"),
        }
    }

    #[test]
    fn parses_higher_order_types() {
        let e = parse_expr("fun(g: fun(unit) -> unit) { g(()) }").unwrap();
        match &e {
            Expr::Lam { param_ty, .. } => {
                assert_eq!(*param_ty, Ty::pure_arrow(Ty::Unit, Ty::Unit));
            }
            other => panic!("expected Lam, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let e = parse_expr("// greet\n#hello; // done\n()").unwrap();
        assert!(matches!(e, Expr::Seq(..)));
    }

    #[test]
    fn errors_have_offsets() {
        let err = parse_expr("#a; ???").unwrap_err();
        assert!(err.offset >= 4);
        assert!(err.to_string().contains("parse error"));
        assert!(parse_expr("send").is_err());
        assert!(parse_expr("offer[]").is_err());
        assert!(parse_expr("fun(x: bogus) { x }").is_err());
        assert!(parse_expr("() ()").is_err());
    }

    #[test]
    fn keyword_cannot_be_variable() {
        let err = parse_expr("send(x)").unwrap_err();
        let _ = err; // `send` needs a channel ident, not a call
    }
}
