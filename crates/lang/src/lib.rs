//! A service λ-calculus with a type-and-effect system extracting
//! history expressions.
//!
//! The paper's programming model (§3) represents services as
//! λ-expressions whose abstract behaviour "a type and effect system
//! extracts … in the form of history expressions", following
//! Bartoletti–Degano–Ferrari \[5,4\]. This crate implements that
//! substrate, closing the pipeline from *programs* to *verified plans*:
//!
//! * [`ast`] — a call-by-value λ-calculus with access events, security
//!   framings, service requests and communication primitives;
//! * [`ty`] — types with latent effects on arrows;
//! * [`mod@infer`] — the type-and-effect system `Γ ⊢ e : τ ▷ H`; extracted
//!   effects are guaranteed well-formed per Definition 1 (guarded tail
//!   recursion), so they can be published to a repository and verified;
//! * [`mod@eval`] — a CBV interpreter emitting run-time traces, plus
//!   [`eval::trace_conforms`] checking *effect soundness*: every
//!   run-time trace is a path of the inferred effect's LTS;
//! * [`parser`] — a concrete syntax for writing services as programs.
//!
//! # Example: from program to effect
//!
//! ```
//! use sufs_lang::{infer::infer, parser::parse_expr};
//!
//! // Hotel S1 as a program.
//! let src = "#sgn(1); #p(45); #ta(80); offer[idc -> choose[bok -> () | una -> ()]]";
//! let service = parse_expr(src).unwrap();
//! let effect = infer(&service).unwrap().effect;
//! // … publish `effect` to a sufs_net::Repository and verify plans.
//! assert!(sufs_hexpr::wf::check(&effect).is_ok());
//! ```

#![warn(missing_docs)]
#![allow(clippy::result_large_err)]

pub mod ast;
pub mod eval;
pub mod infer;
pub mod parser;
pub mod ty;

pub use ast::Expr;
pub use eval::{eval, trace_conforms, EvalError, RunTrace, Value};
pub use infer::{infer, TypeEffect, TypeError};
pub use parser::{parse_expr, LangParseError};
pub use ty::Ty;
