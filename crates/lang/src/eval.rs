//! A call-by-value interpreter for the service λ-calculus.
//!
//! Evaluation emits the *run-time trace* of labels (events, framings,
//! communications, session openings) so that effect soundness can be
//! checked: every trace of a well-typed program is a path in the LTS of
//! its inferred effect ([`trace_conforms`]), as the type-and-effect
//! discipline of \[5,4\] promises.
//!
//! The interpreter runs a program *standalone*: external choices are
//! resolved by the random "environment", internal choices by the program
//! (also randomly). For full two-party execution the program's effect is
//! published to a `sufs-net` repository instead.

use std::fmt;

use sufs_rng::Rng;

use crate::ast::Expr;
use sufs_hexpr::semantics::successors;
use sufs_hexpr::{Dir, Hist, Label};

/// A run-time value.
///
/// Closures carry their whole environment inline; the size skew against
/// `Unit` is intentional (values are moved, not stored in bulk).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A closure (recursive if `name` is set).
    Closure {
        /// The captured environment.
        env: Vec<(String, Value)>,
        /// The function's own name, for recursion.
        name: Option<String>,
        /// The parameter.
        param: String,
        /// The body.
        body: Expr,
    },
}

impl Value {
    /// Returns `true` for [`Value::Unit`].
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }
}

/// An evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An unbound variable (cannot happen for well-typed programs).
    Unbound(String),
    /// Application of a non-function (cannot happen for well-typed
    /// programs).
    NotAFunction,
    /// The step budget ran out.
    OutOfFuel,
    /// A choice with no branches.
    EmptyChoice,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(x) => write!(f, "unbound variable {x}"),
            EvalError::NotAFunction => write!(f, "applied a non-function"),
            EvalError::OutOfFuel => write!(f, "out of fuel"),
            EvalError::EmptyChoice => write!(f, "choice with no branches"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of a run: the value and the emitted trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// The resulting value.
    pub value: Value,
    /// The labels emitted, in order.
    pub trace: Vec<Label>,
}

/// Evaluates a closed expression with the given fuel, resolving choices
/// with `rng`.
///
/// # Errors
///
/// Returns an [`EvalError`] on unbound variables, non-function
/// application, empty choices, or fuel exhaustion.
pub fn eval<R: Rng>(e: &Expr, rng: &mut R, fuel: u64) -> Result<RunTrace, EvalError> {
    let mut st = State {
        rng,
        fuel,
        trace: Vec::new(),
    };
    let value = st.eval(&mut Vec::new(), e)?;
    Ok(RunTrace {
        value,
        trace: st.trace,
    })
}

struct State<'r, R: Rng> {
    rng: &'r mut R,
    fuel: u64,
    trace: Vec<Label>,
}

impl<R: Rng> State<'_, R> {
    fn tick(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn eval(&mut self, env: &mut Vec<(String, Value)>, e: &Expr) -> Result<Value, EvalError> {
        self.tick()?;
        match e {
            Expr::Unit => Ok(Value::Unit),
            Expr::Var(x) => env
                .iter()
                .rev()
                .find(|(n, _)| n == x)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| EvalError::Unbound(x.clone())),
            Expr::Lam { param, body, .. } => Ok(Value::Closure {
                env: env.clone(),
                name: None,
                param: param.clone(),
                body: (**body).clone(),
            }),
            Expr::Fun {
                name, param, body, ..
            } => Ok(Value::Closure {
                env: env.clone(),
                name: Some(name.clone()),
                param: param.clone(),
                body: (**body).clone(),
            }),
            Expr::App(e1, e2) => {
                let f = self.eval(env, e1)?;
                let a = self.eval(env, e2)?;
                let Value::Closure {
                    env: cenv,
                    name,
                    param,
                    body,
                } = f.clone()
                else {
                    return Err(EvalError::NotAFunction);
                };
                let mut call_env = cenv;
                if let Some(n) = name {
                    call_env.push((n, f));
                }
                call_env.push((param, a));
                self.eval(&mut call_env, &body)
            }
            Expr::Let(x, e1, e2) => {
                let v = self.eval(env, e1)?;
                env.push((x.clone(), v));
                let r = self.eval(env, e2);
                env.pop();
                r
            }
            Expr::Seq(e1, e2) => {
                self.eval(env, e1)?;
                self.eval(env, e2)
            }
            Expr::Event(ev) => {
                self.trace.push(Label::Ev(ev.clone()));
                Ok(Value::Unit)
            }
            Expr::Frame(p, body) => {
                self.trace.push(Label::FrameOpen(p.clone()));
                let v = self.eval(env, body)?;
                self.trace.push(Label::FrameClose(p.clone()));
                Ok(v)
            }
            Expr::Request { id, policy, body } => {
                self.trace.push(Label::Open(*id, policy.clone()));
                let v = self.eval(env, body)?;
                self.trace.push(Label::Close(*id, policy.clone()));
                Ok(v)
            }
            Expr::Send(c) => {
                self.trace.push(Label::Chan(c.clone(), Dir::Out));
                Ok(Value::Unit)
            }
            Expr::Offer(branches) => {
                if branches.is_empty() {
                    return Err(EvalError::EmptyChoice);
                }
                let i = self.rng.gen_range(0..branches.len());
                let (c, cont) = &branches[i];
                self.trace.push(Label::Chan(c.clone(), Dir::In));
                self.eval(env, cont)
            }
            Expr::Choose(branches) => {
                if branches.is_empty() {
                    return Err(EvalError::EmptyChoice);
                }
                let i = self.rng.gen_range(0..branches.len());
                let (c, cont) = &branches[i];
                self.trace.push(Label::Chan(c.clone(), Dir::Out));
                self.eval(env, cont)
            }
        }
    }
}

/// Effect soundness checking: `trace` is a path of the LTS of `effect`.
///
/// The LTS may be nondeterministic (two branches guarded by the same
/// action after recursion unfolding), so a *set* of candidate states is
/// tracked; the trace conforms iff the set never empties.
pub fn trace_conforms(effect: &Hist, trace: &[Label]) -> bool {
    let mut states = vec![effect.clone()];
    for label in trace {
        let mut next = Vec::new();
        for s in &states {
            for (l, s2) in successors(s) {
                if &l == label && !next.contains(&s2) {
                    next.push(s2);
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        states = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer;
    use crate::ty::Ty;
    use sufs_rng::SeedableRng;
    use sufs_rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn straight_line_trace() {
        let e = Expr::seq_all([
            Expr::event("a", [] as [i64; 0]),
            Expr::send("x"),
            Expr::event("b", [] as [i64; 0]),
        ]);
        let r = eval(&e, &mut rng(), 1000).unwrap();
        assert!(r.value.is_unit());
        assert_eq!(r.trace.len(), 3);
        assert_eq!(r.trace[1], Label::output("x"));
    }

    #[test]
    fn frame_and_request_emit_brackets() {
        let p = sufs_hexpr::PolicyRef::nullary("phi");
        let e = Expr::request(1, Some(p.clone()), Expr::frame(p.clone(), Expr::send("q")));
        let r = eval(&e, &mut rng(), 1000).unwrap();
        assert_eq!(
            r.trace,
            vec![
                Label::Open(sufs_hexpr::RequestId::new(1), Some(p.clone())),
                Label::FrameOpen(p.clone()),
                Label::output("q"),
                Label::FrameClose(p.clone()),
                Label::Close(sufs_hexpr::RequestId::new(1), Some(p)),
            ]
        );
    }

    #[test]
    fn closures_capture_environment() {
        // let x-bound closure sees the binding at definition time.
        let e = Expr::let_(
            "mk",
            Expr::lam("y", Ty::Unit, Expr::send("inner")),
            Expr::app(Expr::Var("mk".into()), Expr::event("arg", [] as [i64; 0])),
        );
        let r = eval(&e, &mut rng(), 1000).unwrap();
        // CBV: the argument's event fires before the body's send.
        assert_eq!(
            r.trace,
            vec![
                Label::Ev(sufs_hexpr::Event::nullary("arg")),
                Label::output("inner"),
            ]
        );
    }

    #[test]
    fn recursion_terminates_by_choice() {
        let body = Expr::choose([
            (
                "more",
                Expr::seq(
                    Expr::event("w", [] as [i64; 0]),
                    Expr::app(Expr::Var("f".into()), Expr::Var("x".into())),
                ),
            ),
            ("stop", Expr::Unit),
        ]);
        let call = Expr::app(Expr::fun("f", "x", Ty::Unit, Ty::Unit, body), Expr::Unit);
        let r = eval(&call, &mut rng(), 100_000).unwrap();
        assert!(r.value.is_unit());
        // Trace ends with the stop output.
        assert_eq!(r.trace.last().unwrap(), &Label::output("stop"));
    }

    #[test]
    fn out_of_fuel() {
        let body = Expr::app(Expr::Var("f".into()), Expr::Var("x".into()));
        let call = Expr::app(Expr::fun("f", "x", Ty::Unit, Ty::Unit, body), Expr::Unit);
        assert_eq!(
            eval(&call, &mut rng(), 50).unwrap_err(),
            EvalError::OutOfFuel
        );
    }

    #[test]
    fn effect_soundness_on_samples() {
        let programs = vec![
            Expr::seq_all([
                Expr::event("a", [1i64]),
                Expr::offer([("x", Expr::send("y")), ("z", Expr::Unit)]),
            ]),
            Expr::request(
                1,
                None,
                Expr::seq(
                    Expr::send("q"),
                    Expr::offer([("ok", Expr::Unit), ("no", Expr::Unit)]),
                ),
            ),
            Expr::app(
                Expr::fun(
                    "f",
                    "x",
                    Ty::Unit,
                    Ty::Unit,
                    Expr::choose([
                        (
                            "more",
                            Expr::app(Expr::Var("f".into()), Expr::Var("x".into())),
                        ),
                        ("stop", Expr::Unit),
                    ]),
                ),
                Expr::Unit,
            ),
        ];
        let mut r = rng();
        for p in programs {
            let effect = infer(&p).unwrap().effect;
            for _ in 0..20 {
                let run = eval(&p, &mut r, 100_000).unwrap();
                assert!(
                    trace_conforms(&effect, &run.trace),
                    "trace {:?} not a path of {effect}",
                    run.trace
                );
            }
        }
    }

    #[test]
    fn trace_conforms_rejects_bad_traces() {
        let effect = infer(&Expr::send("a")).unwrap().effect;
        assert!(!trace_conforms(&effect, &[Label::output("b")]));
        assert!(trace_conforms(&effect, &[Label::output("a")]));
        assert!(trace_conforms(&effect, &[])); // prefixes conform
    }
}
