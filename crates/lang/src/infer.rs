//! The type-and-effect system: `Γ ⊢ e : τ ▷ H`.
//!
//! Typing follows the call-by-value discipline of \[5,4\]: the effect of
//! an application is `H₁·H₂·H` (function, argument, then the latent
//! effect of the arrow type); abstractions are pure and store their
//! body's effect in the arrow; recursive functions get the latent effect
//! `μh.H` with `h` standing for recursive calls, which the calculus
//! restricts to guarded tail positions so extracted effects satisfy
//! Definition 1's well-formedness.

use std::fmt;

use crate::ast::Expr;
use crate::ty::Ty;
use sufs_hexpr::wf::{self, WfError};
use sufs_hexpr::{Channel, Hist, RecVar};

/// The result of typing: a type and an effect (history expression).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeEffect {
    /// The type `τ`.
    pub ty: Ty,
    /// The effect `H`.
    pub effect: Hist,
}

/// A typing error.
///
/// Variants embed the offending types verbatim for good messages; the
/// enum is therefore larger than a thin error code, which is fine for
/// a compile-time (not per-event) path.
#[allow(clippy::result_large_err)]
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// An unbound variable.
    Unbound(String),
    /// Application of a non-function.
    NotAFunction(Ty),
    /// An argument or return type mismatch.
    Mismatch {
        /// The expected type.
        expected: Ty,
        /// The type found.
        found: Ty,
    },
    /// Branches of a choice disagree on their type.
    BranchMismatch {
        /// The first branch's type.
        first: Ty,
        /// The offending branch's type.
        other: Ty,
    },
    /// A choice with no branches.
    EmptyChoice,
    /// Two branches guarded by the same channel.
    DuplicateGuard(Channel),
    /// The extracted effect violates Definition 1's well-formedness
    /// (e.g. a recursive call in non-tail or unguarded position).
    IllFormedEffect(WfError),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unbound(x) => write!(f, "unbound variable {x}"),
            TypeError::NotAFunction(t) => write!(f, "cannot apply a value of type {t}"),
            TypeError::Mismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            TypeError::BranchMismatch { first, other } => {
                write!(f, "choice branches disagree: {first} vs {other}")
            }
            TypeError::EmptyChoice => write!(f, "choice with no branches"),
            TypeError::DuplicateGuard(c) => write!(f, "duplicate choice guard {c}"),
            TypeError::IllFormedEffect(e) => write!(f, "ill-formed effect: {e}"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<WfError> for TypeError {
    fn from(e: WfError) -> Self {
        TypeError::IllFormedEffect(e)
    }
}

/// Types a closed expression and extracts its effect.
///
/// The returned effect is additionally checked against Definition 1's
/// well-formedness, so it can be published to a repository or verified
/// directly.
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression is ill-typed or its effect
/// ill-formed.
///
/// # Examples
///
/// ```
/// use sufs_lang::{ast::Expr, infer::infer};
///
/// let service = Expr::seq_all([
///     Expr::event("sgn", [1i64]),
///     Expr::offer([("idc", Expr::choose([
///         ("bok", Expr::Unit),
///         ("una", Expr::Unit),
///     ]))]),
/// ]);
/// let te = infer(&service).unwrap();
/// assert_eq!(
///     te.effect,
///     sufs_hexpr::parse_hist("#sgn(1); ext[idc -> int[bok -> eps | una -> eps]]").unwrap(),
/// );
/// ```
pub fn infer(e: &Expr) -> Result<TypeEffect, TypeError> {
    let mut fresh = 0u32;
    let te = infer_in(&mut Vec::new(), e, &mut fresh)?;
    wf::check(&te.effect)?;
    Ok(te)
}

type Env = Vec<(String, Ty)>;

fn lookup(env: &Env, x: &str) -> Option<Ty> {
    env.iter()
        .rev()
        .find(|(n, _)| n == x)
        .map(|(_, t)| t.clone())
}

fn infer_in(env: &mut Env, e: &Expr, fresh: &mut u32) -> Result<TypeEffect, TypeError> {
    match e {
        Expr::Unit => Ok(TypeEffect {
            ty: Ty::Unit,
            effect: Hist::Eps,
        }),
        Expr::Var(x) => {
            let ty = lookup(env, x).ok_or_else(|| TypeError::Unbound(x.clone()))?;
            Ok(TypeEffect {
                ty,
                effect: Hist::Eps,
            })
        }
        Expr::Lam {
            param,
            param_ty,
            body,
        } => {
            env.push((param.clone(), param_ty.clone()));
            let body_te = infer_in(env, body, fresh)?;
            env.pop();
            Ok(TypeEffect {
                ty: Ty::arrow(param_ty.clone(), body_te.effect, body_te.ty),
                effect: Hist::Eps,
            })
        }
        Expr::Fun {
            name,
            param,
            param_ty,
            ret_ty,
            body,
        } => {
            *fresh += 1;
            let hvar = RecVar::new(format!("h{fresh}_{name}"));
            let self_ty = Ty::arrow(param_ty.clone(), Hist::var(hvar.clone()), ret_ty.clone());
            env.push((name.clone(), self_ty));
            env.push((param.clone(), param_ty.clone()));
            let body_te = infer_in(env, body, fresh)?;
            env.pop();
            env.pop();
            if &body_te.ty != ret_ty {
                return Err(TypeError::Mismatch {
                    expected: ret_ty.clone(),
                    found: body_te.ty,
                });
            }
            let latent = if body_te.effect.free_vars().contains(&hvar) {
                Hist::mu(hvar, body_te.effect)
            } else {
                body_te.effect
            };
            Ok(TypeEffect {
                ty: Ty::arrow(param_ty.clone(), latent, ret_ty.clone()),
                effect: Hist::Eps,
            })
        }
        Expr::App(e1, e2) => {
            let f = infer_in(env, e1, fresh)?;
            let a = infer_in(env, e2, fresh)?;
            let Ty::Arrow(from, latent, to) = f.ty else {
                return Err(TypeError::NotAFunction(f.ty));
            };
            if a.ty != *from {
                return Err(TypeError::Mismatch {
                    expected: *from,
                    found: a.ty,
                });
            }
            Ok(TypeEffect {
                ty: *to,
                effect: Hist::seq(f.effect, Hist::seq(a.effect, latent)),
            })
        }
        Expr::Let(x, e1, e2) => {
            let b = infer_in(env, e1, fresh)?;
            env.push((x.clone(), b.ty));
            let body = infer_in(env, e2, fresh)?;
            env.pop();
            Ok(TypeEffect {
                ty: body.ty,
                effect: Hist::seq(b.effect, body.effect),
            })
        }
        Expr::Seq(e1, e2) => {
            let a = infer_in(env, e1, fresh)?;
            let b = infer_in(env, e2, fresh)?;
            Ok(TypeEffect {
                ty: b.ty,
                effect: Hist::seq(a.effect, b.effect),
            })
        }
        Expr::Event(ev) => Ok(TypeEffect {
            ty: Ty::Unit,
            effect: Hist::Ev(ev.clone()),
        }),
        Expr::Frame(p, body) => {
            let te = infer_in(env, body, fresh)?;
            Ok(TypeEffect {
                ty: te.ty,
                effect: Hist::framed(p.clone(), te.effect),
            })
        }
        Expr::Request { id, policy, body } => {
            let te = infer_in(env, body, fresh)?;
            Ok(TypeEffect {
                ty: te.ty,
                effect: Hist::req(*id, policy.clone(), te.effect),
            })
        }
        Expr::Send(c) => Ok(TypeEffect {
            ty: Ty::Unit,
            effect: Hist::int_([(c.clone(), Hist::Eps)]),
        }),
        Expr::Offer(branches) => infer_choice(env, branches, false, fresh),
        Expr::Choose(branches) => infer_choice(env, branches, true, fresh),
    }
}

fn infer_choice(
    env: &mut Env,
    branches: &[(Channel, Expr)],
    internal: bool,
    fresh: &mut u32,
) -> Result<TypeEffect, TypeError> {
    if branches.is_empty() {
        return Err(TypeError::EmptyChoice);
    }
    let mut seen: Vec<&Channel> = Vec::new();
    let mut typed = Vec::with_capacity(branches.len());
    let mut common: Option<Ty> = None;
    for (c, e) in branches {
        if seen.contains(&c) {
            return Err(TypeError::DuplicateGuard(c.clone()));
        }
        seen.push(c);
        let te = infer_in(env, e, fresh)?;
        match &common {
            None => common = Some(te.ty.clone()),
            Some(t) if *t == te.ty => {}
            Some(t) => {
                return Err(TypeError::BranchMismatch {
                    first: t.clone(),
                    other: te.ty,
                })
            }
        }
        typed.push((c.clone(), te.effect));
    }
    let effect = if internal {
        Hist::Int(typed)
    } else {
        Hist::Ext(typed)
    };
    Ok(TypeEffect {
        ty: common.expect("at least one branch"),
        effect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    #[test]
    fn unit_and_events() {
        assert_eq!(infer(&Expr::Unit).unwrap().effect, Hist::Eps);
        let te = infer(&Expr::event("a", [] as [i64; 0])).unwrap();
        assert_eq!(te.ty, Ty::Unit);
        assert_eq!(te.effect, parse_hist("#a").unwrap());
    }

    #[test]
    fn application_sequences_effects() {
        // (λx. #b)(#a) ▷ #a · #b  (CBV: argument first, then the body).
        let f = Expr::lam("x", Ty::Unit, Expr::event("b", [] as [i64; 0]));
        let e = Expr::app(f, Expr::event("a", [] as [i64; 0]));
        let te = infer(&e).unwrap();
        assert_eq!(te.effect, parse_hist("#a; #b").unwrap());
    }

    #[test]
    fn let_and_seq() {
        let e = Expr::let_(
            "x",
            Expr::event("a", [] as [i64; 0]),
            Expr::seq(Expr::Var("x".into()), Expr::event("b", [] as [i64; 0])),
        );
        let te = infer(&e).unwrap();
        assert_eq!(te.effect, parse_hist("#a; #b").unwrap());
        assert_eq!(te.ty, Ty::Unit);
    }

    #[test]
    fn recursive_function_gets_mu_effect() {
        // rec f(x) { choose[more -> #w; f x | stop -> ()] }
        let body = Expr::choose([
            (
                "more",
                Expr::seq(
                    Expr::event("w", [] as [i64; 0]),
                    Expr::app(Expr::Var("f".into()), Expr::Var("x".into())),
                ),
            ),
            ("stop", Expr::Unit),
        ]);
        let f = Expr::fun("f", "x", Ty::Unit, Ty::Unit, body);
        let te = infer(&f).unwrap();
        assert!(te.effect.is_eps(), "defining is pure");
        // Applying it unleashes the loop.
        let call = Expr::app(f, Expr::Unit);
        let te = infer(&call).unwrap();
        let expected = parse_hist("mu h1_f. int[more -> #w; h1_f | stop -> eps]").unwrap();
        assert_eq!(te.effect, expected);
        assert!(wf::check(&te.effect).is_ok());
    }

    #[test]
    fn non_tail_recursion_rejected() {
        // rec f(x) { choose[go -> f x; #after | stop -> ()] } — the
        // recursive call is not in tail position.
        let body = Expr::choose([
            (
                "go",
                Expr::seq(
                    Expr::app(Expr::Var("f".into()), Expr::Var("x".into())),
                    Expr::event("after", [] as [i64; 0]),
                ),
            ),
            ("stop", Expr::Unit),
        ]);
        let call = Expr::app(Expr::fun("f", "x", Ty::Unit, Ty::Unit, body), Expr::Unit);
        let err = infer(&call).unwrap_err();
        assert!(matches!(err, TypeError::IllFormedEffect(_)));
    }

    #[test]
    fn unguarded_recursion_rejected() {
        // rec f(x) { f x } — no communication guard.
        let body = Expr::app(Expr::Var("f".into()), Expr::Var("x".into()));
        let call = Expr::app(Expr::fun("f", "x", Ty::Unit, Ty::Unit, body), Expr::Unit);
        let err = infer(&call).unwrap_err();
        assert!(matches!(err, TypeError::IllFormedEffect(_)));
    }

    #[test]
    fn request_and_frame_effects() {
        let e = Expr::request(
            1,
            None,
            Expr::seq(Expr::send("q"), Expr::offer([("a", Expr::Unit)])),
        );
        let te = infer(&e).unwrap();
        assert_eq!(
            te.effect,
            parse_hist("open 1 { int[q -> eps]; ext[a -> eps] }").unwrap()
        );
        let framed = Expr::frame(
            sufs_hexpr::PolicyRef::nullary("p"),
            Expr::event("x", [] as [i64; 0]),
        );
        assert_eq!(
            infer(&framed).unwrap().effect,
            parse_hist("frame p [ #x ]").unwrap()
        );
    }

    #[test]
    fn type_errors() {
        assert_eq!(
            infer(&Expr::Var("x".into())).unwrap_err(),
            TypeError::Unbound("x".into())
        );
        let e = Expr::app(Expr::Unit, Expr::Unit);
        assert!(matches!(infer(&e).unwrap_err(), TypeError::NotAFunction(_)));
        let f = Expr::lam(
            "g",
            Ty::pure_arrow(Ty::Unit, Ty::Unit),
            Expr::app(Expr::Var("g".into()), Expr::Unit),
        );
        let bad = Expr::app(f, Expr::Unit);
        assert!(matches!(
            infer(&bad).unwrap_err(),
            TypeError::Mismatch { .. }
        ));
    }

    #[test]
    fn branch_type_mismatch_rejected() {
        let e = Expr::offer([
            ("a", Expr::Unit),
            ("b", Expr::lam("x", Ty::Unit, Expr::Unit)),
        ]);
        assert!(matches!(
            infer(&e).unwrap_err(),
            TypeError::BranchMismatch { .. }
        ));
        assert_eq!(
            infer(&Expr::Offer(vec![])).unwrap_err(),
            TypeError::EmptyChoice
        );
    }

    #[test]
    fn higher_order_latent_effects() {
        // apply = λg:(unit -[#x]-> unit). g () — the latent effect of the
        // parameter shows up at the call site of `apply g`.
        let gty = Ty::arrow(Ty::Unit, parse_hist("#x").unwrap(), Ty::Unit);
        let apply = Expr::lam("g", gty, Expr::app(Expr::Var("g".into()), Expr::Unit));
        let g = Expr::lam("y", Ty::Unit, Expr::event("x", [] as [i64; 0]));
        let e = Expr::app(apply, g);
        let te = infer(&e).unwrap();
        assert_eq!(te.effect, parse_hist("#x").unwrap());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            TypeError::Unbound("z".into()).to_string(),
            "unbound variable z"
        );
        assert!(TypeError::EmptyChoice.to_string().contains("no branches"));
    }
}
