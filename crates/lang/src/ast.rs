//! Abstract syntax of the service λ-calculus.
//!
//! The paper represents services as λ-expressions whose abstract
//! behaviour a type-and-effect system extracts as a history expression
//! (§3, following Bartoletti–Degano–Ferrari \[5,4\]). This calculus is the
//! workspace's executable source language: a call-by-value λ-calculus
//! with access events, security framings, service requests and the
//! communication primitives that the effects abstract.

use std::fmt;

use crate::ty::Ty;
use sufs_hexpr::{Channel, Event, PolicyRef, RequestId};

/// An expression of the service λ-calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The unit value `()`.
    Unit,
    /// A variable.
    Var(String),
    /// An annotated abstraction `λx:τ. e`.
    Lam {
        /// The parameter name.
        param: String,
        /// The parameter type annotation.
        param_ty: Ty,
        /// The body.
        body: Box<Expr>,
    },
    /// A recursive function `rec f(x:τ) -> τ' { e }`; its latent effect
    /// is `μh.H` with `h` standing for the recursive calls.
    Fun {
        /// The function's own name, bound in the body.
        name: String,
        /// The parameter name.
        param: String,
        /// The parameter type annotation.
        param_ty: Ty,
        /// The declared return type.
        ret_ty: Ty,
        /// The body.
        body: Box<Expr>,
    },
    /// Application `e₁ e₂`.
    App(Box<Expr>, Box<Expr>),
    /// `let x = e₁; e₂`.
    Let(String, Box<Expr>, Box<Expr>),
    /// Sequencing `e₁; e₂` (a `let` with an unused binder).
    Seq(Box<Expr>, Box<Expr>),
    /// An access event `α(v̄)`; evaluates to `()`.
    Event(Event),
    /// A security framing `φ[e]`.
    Frame(PolicyRef, Box<Expr>),
    /// A service request `open_{r,φ} e close_{r,φ}`.
    Request {
        /// The request identifier.
        id: RequestId,
        /// The policy imposed on the session, if any.
        policy: Option<PolicyRef>,
        /// The client-side conversation.
        body: Box<Expr>,
    },
    /// Send on a channel: the output `ā`; evaluates to `()`.
    Send(Channel),
    /// External choice: offer every listed input, continue with the
    /// branch the partner selects.
    Offer(Vec<(Channel, Expr)>),
    /// Internal choice: autonomously pick a branch, send its output and
    /// continue.
    Choose(Vec<(Channel, Expr)>),
}

impl Expr {
    /// `λx:τ. e`.
    pub fn lam(param: impl Into<String>, param_ty: Ty, body: Expr) -> Expr {
        Expr::Lam {
            param: param.into(),
            param_ty,
            body: Box::new(body),
        }
    }

    /// `rec f(x:τ) -> τ' { e }`.
    pub fn fun(
        name: impl Into<String>,
        param: impl Into<String>,
        param_ty: Ty,
        ret_ty: Ty,
        body: Expr,
    ) -> Expr {
        Expr::Fun {
            name: name.into(),
            param: param.into(),
            param_ty,
            ret_ty,
            body: Box::new(body),
        }
    }

    /// Application.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(a))
    }

    /// `let x = e₁; e₂`.
    pub fn let_(x: impl Into<String>, bound: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Box::new(bound), Box::new(body))
    }

    /// `e₁; e₂`.
    pub fn seq(e1: Expr, e2: Expr) -> Expr {
        Expr::Seq(Box::new(e1), Box::new(e2))
    }

    /// Sequences a whole iterator of expressions (unit-valued prefix).
    pub fn seq_all<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut items: Vec<Expr> = items.into_iter().collect();
        let Some(mut acc) = items.pop() else {
            return Expr::Unit;
        };
        while let Some(e) = items.pop() {
            acc = Expr::seq(e, acc);
        }
        acc
    }

    /// An access event.
    pub fn event<I, V>(name: &str, args: I) -> Expr
    where
        I: IntoIterator<Item = V>,
        V: Into<sufs_hexpr::Value>,
    {
        Expr::Event(Event::new(name, args))
    }

    /// A security framing.
    pub fn frame(policy: PolicyRef, body: Expr) -> Expr {
        Expr::Frame(policy, Box::new(body))
    }

    /// A service request.
    pub fn request(id: u32, policy: Option<PolicyRef>, body: Expr) -> Expr {
        Expr::Request {
            id: RequestId::new(id),
            policy,
            body: Box::new(body),
        }
    }

    /// A send.
    pub fn send(chan: &str) -> Expr {
        Expr::Send(Channel::new(chan))
    }

    /// An external choice.
    pub fn offer<I: IntoIterator<Item = (&'static str, Expr)>>(branches: I) -> Expr {
        Expr::Offer(
            branches
                .into_iter()
                .map(|(c, e)| (Channel::new(c), e))
                .collect(),
        )
    }

    /// An internal choice.
    pub fn choose<I: IntoIterator<Item = (&'static str, Expr)>>(branches: I) -> Expr {
        Expr::Choose(
            branches
                .into_iter()
                .map(|(c, e)| (Channel::new(c), e))
                .collect(),
        )
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Unit => write!(f, "()"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Lam {
                param,
                param_ty,
                body,
            } => write!(f, "fun({param}: {param_ty}) {{ {body} }}"),
            Expr::Fun {
                name,
                param,
                param_ty,
                ret_ty,
                body,
            } => write!(
                f,
                "rec {name}({param}: {param_ty}) -> {ret_ty} {{ {body} }}"
            ),
            Expr::App(a, b) => write!(f, "{a}({b})"),
            Expr::Let(x, e1, e2) => {
                // The bound expression parses at call level: a `let`
                // or `;` inside it needs brackets.
                if matches!(**e1, Expr::Let(..) | Expr::Seq(..)) {
                    write!(f, "let {x} = ({e1}); {e2}")
                } else {
                    write!(f, "let {x} = {e1}; {e2}")
                }
            }
            Expr::Seq(e1, e2) => {
                // `;` parses right-associated and `let` extends to the
                // end, so either on the left needs brackets.
                if matches!(**e1, Expr::Let(..) | Expr::Seq(..)) {
                    write!(f, "({e1}); {e2}")
                } else {
                    write!(f, "{e1}; {e2}")
                }
            }
            Expr::Event(e) => write!(f, "{e}"),
            Expr::Frame(p, e) => write!(f, "frame {p} [ {e} ]"),
            Expr::Request { id, policy, body } => {
                write!(f, "open {}", id.index())?;
                if let Some(p) = policy {
                    write!(f, " phi {p}")?;
                }
                write!(f, " {{ {body} }}")
            }
            Expr::Send(c) => write!(f, "send {c}"),
            Expr::Offer(bs) => {
                write!(f, "offer[")?;
                for (i, (c, e)) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c} -> {e}")?;
                }
                write!(f, "]")
            }
            Expr::Choose(bs) => {
                write!(f, "choose[")?;
                for (i, (c, e)) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c} -> {e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Ty;

    #[test]
    fn builders_construct_expected_shapes() {
        let e = Expr::seq_all([
            Expr::event("sgn", [1i64]),
            Expr::send("req"),
            Expr::offer([("ok", Expr::Unit), ("no", Expr::Unit)]),
        ]);
        match &e {
            Expr::Seq(first, _) => assert!(matches!(**first, Expr::Event(_))),
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(Expr::seq_all([]), Expr::Unit);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::let_(
            "x",
            Expr::app(Expr::lam("y", Ty::Unit, Expr::Var("y".into())), Expr::Unit),
            Expr::send("done"),
        );
        assert_eq!(e.to_string(), "let x = fun(y: unit) { y }(()); send done");
    }

    #[test]
    fn request_display() {
        let e = Expr::request(3, None, Expr::send("w"));
        assert_eq!(e.to_string(), "open 3 { send w }");
    }
}
