//! Randomised tests for the λ-calculus front end: every run-time trace
//! of a randomly generated well-typed program is a path of its inferred
//! effect (effect soundness), and inference is deterministic. Every
//! case is deterministic in its seed.

use sufs_lang::{eval, infer, trace_conforms, Expr, Ty};
use sufs_rng::{Rng, SeedableRng, StdRng};

/// Random unit-typed programs: events, sends, choices, sequencing,
/// lets, framings, requests and immediately applied λ-abstractions.
fn random_program(depth: usize, r: &mut StdRng) -> Expr {
    if depth == 0 || r.gen_bool(0.2) {
        return match r.gen_range(0u8..3) {
            0 => Expr::Unit,
            1 => Expr::event("ev", [r.gen_range(0i64..10)]),
            _ => {
                let chans: [&str; 3] = ["a", "b", "c"];
                let chan = r.pick(&chans);
                Expr::send(chan)
            }
        };
    }
    match r.gen_range(0u8..6) {
        0 => Expr::seq(random_program(depth - 1, r), random_program(depth - 1, r)),
        1 => Expr::let_(
            "x",
            random_program(depth - 1, r),
            random_program(depth - 1, r),
        ),
        2 => {
            // offer / choose with distinct guards
            let chans = r.subsequence(&["p", "q", "r"], 1, 3);
            let branches: Vec<(&'static str, Expr)> = chans
                .into_iter()
                .map(|c| (c, random_program(depth - 1, r)))
                .collect();
            if r.gen_bool(0.5) {
                Expr::choose(branches)
            } else {
                Expr::offer(branches)
            }
        }
        3 => Expr::frame(
            sufs_hexpr::PolicyRef::nullary("phi"),
            random_program(depth - 1, r),
        ),
        4 => Expr::request(r.gen_range(0u32..4), None, random_program(depth - 1, r)),
        // (λx:unit. body)(arg)
        _ => Expr::app(
            Expr::lam("x", Ty::Unit, random_program(depth - 1, r)),
            random_program(depth - 1, r),
        ),
    }
}

const CASES: u64 = 250;

/// Effect soundness: every run-time trace is a path of the effect.
#[test]
fn traces_conform_to_effects() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let e = random_program(4, &mut r);
        // Duplicate request ids make the effect ill-formed; skip those.
        let Ok(te) = infer(&e) else { continue };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let run = eval(&e, &mut rng, 1 << 20).unwrap();
        assert!(
            trace_conforms(&te.effect, &run.trace),
            "seed {seed}: trace {:?} is not a path of {}",
            run.trace,
            te.effect
        );
    }
}

/// Inference is deterministic and the effect is well-formed.
#[test]
fn inference_deterministic_and_wf() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let e = random_program(4, &mut r);
        let r1 = infer(&e);
        let r2 = infer(&e);
        assert_eq!(
            r1.clone().map(|t| t.effect.clone()),
            r2.map(|t| t.effect),
            "seed {seed}"
        );
        if let Ok(te) = r1 {
            assert!(sufs_hexpr::wf::check(&te.effect).is_ok(), "seed {seed}");
        }
    }
}

/// Programs type at unit (the generator only builds unit-typed
/// expressions).
#[test]
fn programs_are_unit_typed() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let e = random_program(4, &mut r);
        if let Ok(te) = infer(&e) {
            assert!(te.ty.is_unit(), "seed {seed}");
        }
    }
}

/// The pretty printer emits parseable syntax: `parse ∘ display = id`.
#[test]
fn display_parse_roundtrip() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let e = random_program(4, &mut r);
        let printed = e.to_string();
        let reparsed = sufs_lang::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("seed {seed}: reparse of `{printed}` failed: {err}"));
        assert_eq!(reparsed, e, "seed {seed}");
    }
}
