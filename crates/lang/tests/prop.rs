//! Property tests for the λ-calculus front end: every run-time trace of
//! a randomly generated well-typed program is a path of its inferred
//! effect (effect soundness), and inference is deterministic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sufs_lang::{eval, infer, trace_conforms, Expr, Ty};

/// Random unit-typed programs: events, sends, choices, sequencing,
/// lets, framings, requests and immediately applied λ-abstractions.
fn arb_program() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Unit),
        (0i64..10).prop_map(|n| Expr::event("ev", [n])),
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(Expr::send),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::let_("x", a, b)),
            // offer / choose with distinct guards
            (
                any::<bool>(),
                proptest::sample::subsequence(vec!["p", "q", "r"], 1..=3),
                proptest::collection::vec(inner.clone(), 3),
            )
                .prop_map(|(internal, chans, conts)| {
                    let branches: Vec<(&'static str, Expr)> =
                        chans.into_iter().zip(conts).collect();
                    if internal {
                        Expr::choose(branches)
                    } else {
                        Expr::offer(branches)
                    }
                }),
            inner
                .clone()
                .prop_map(|e| Expr::frame(sufs_hexpr::PolicyRef::nullary("phi"), e)),
            (0u32..4, inner.clone()).prop_map(|(r, e)| Expr::request(r, None, e)),
            // (λx:unit. body)(arg)
            (inner.clone(), inner)
                .prop_map(|(body, arg)| { Expr::app(Expr::lam("x", Ty::Unit, body), arg) }),
        ]
    })
}

proptest! {
    /// Effect soundness: every run-time trace is a path of the effect.
    #[test]
    fn traces_conform_to_effects(e in arb_program(), seed in 0u64..1000) {
        // Duplicate request ids make the effect ill-formed; skip those.
        let Ok(te) = infer(&e) else { return Ok(()); };
        let mut rng = StdRng::seed_from_u64(seed);
        let run = eval(&e, &mut rng, 1 << 20).unwrap();
        prop_assert!(
            trace_conforms(&te.effect, &run.trace),
            "trace {:?} is not a path of {}",
            run.trace,
            te.effect
        );
    }

    /// Inference is deterministic and the effect is well-formed.
    #[test]
    fn inference_deterministic_and_wf(e in arb_program()) {
        let r1 = infer(&e);
        let r2 = infer(&e);
        prop_assert_eq!(r1.clone().map(|t| t.effect.clone()), r2.map(|t| t.effect));
        if let Ok(te) = r1 {
            prop_assert!(sufs_hexpr::wf::check(&te.effect).is_ok());
        }
    }

    /// Programs type at unit (the generator only builds unit-typed
    /// expressions).
    #[test]
    fn programs_are_unit_typed(e in arb_program()) {
        if let Ok(te) = infer(&e) {
            prop_assert!(te.ty.is_unit());
        }
    }

    /// The pretty printer emits parseable syntax: `parse ∘ display = id`.
    #[test]
    fn display_parse_roundtrip(e in arb_program()) {
        let printed = e.to_string();
        let reparsed = sufs_lang::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        prop_assert_eq!(reparsed, e);
    }
}
