//! The shared analysis context the passes consume: per-client candidate
//! plans and verification reports, per-component LTSs, the ground event
//! alphabet, composed-execution reachability, and every policy
//! reference with its origin.
//!
//! The context is built from a [`LintInput`] — a borrowed view over the
//! state to analyze — so the same passes run over a parsed
//! [`Scenario`] *and* over a broker's live [`Repository`]. Repeated
//! builds can share an [`AnalysisCaches`], which memoizes the expensive
//! sub-analyses (stand-alone LTSs, candidate plan spaces, whole
//! per-plan verdicts backed by a [`VerifyCache`], composed-execution
//! reachability) keyed by `sufs-hexpr::shash` structural fingerprints,
//! so re-analyzing a repository after a single mutation only pays for
//! what changed.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use sufs_core::cache::VerifyCache;
use sufs_core::plans::{PlanSpaceExceeded, DEFAULT_PLAN_CAP};
use sufs_core::product::ProductStore;
use sufs_core::report::VerifyReport;
use sufs_core::scenario::{Scenario, SpanTable, SrcPos};
use sufs_core::verify::{verify_plan_with, PlanVerdict, DEFAULT_STATE_BOUND};
use sufs_hexpr::requests::requests;
use sufs_hexpr::shash::stable_hash_of;
use sufs_hexpr::{Event, Hist, HistLts, Label, Location, PolicyRef, RequestId};
use sufs_net::symbolic::{symbolic_successors, SymState};
use sufs_net::{Plan, Repository};
use sufs_policy::cost::CostBound;
use sufs_policy::PolicyRegistry;

use crate::LintError;

/// A borrowed view of the state under analysis. Built from a parsed
/// [`Scenario`] (with spans and budgets) or assembled directly from a
/// live repository, registry and client set (no spans: every finding
/// anchors to the start position).
#[derive(Debug, Clone, Copy)]
pub struct LintInput<'a> {
    /// The clients, in the order diagnostics should report them.
    pub clients: &'a [(String, Hist)],
    /// The published services.
    pub repository: &'a Repository,
    /// The policy definitions.
    pub registry: &'a PolicyRegistry,
    /// Quantitative budgets (their policy names are exempt from
    /// vacuity checking).
    pub budgets: &'a [CostBound],
    /// Declaration positions, when the input came from a source file.
    pub spans: Option<&'a SpanTable>,
}

impl<'a> LintInput<'a> {
    /// A view over live state with no source positions or budgets.
    pub fn new(
        clients: &'a [(String, Hist)],
        repository: &'a Repository,
        registry: &'a PolicyRegistry,
    ) -> LintInput<'a> {
        LintInput {
            clients,
            repository,
            registry,
            budgets: &[],
            spans: None,
        }
    }
}

impl<'a> From<&'a Scenario> for LintInput<'a> {
    fn from(scenario: &'a Scenario) -> LintInput<'a> {
        LintInput {
            clients: &scenario.clients,
            repository: &scenario.repository,
            registry: &scenario.registry,
            budgets: &scenario.budgets,
            spans: Some(&scenario.spans),
        }
    }
}

/// Memoized sub-analyses shared across context builds, keyed by
/// structural fingerprints so stale entries can never be confused with
/// live ones. The [`VerifyCache`] is location-addressed and must be
/// invalidated on mutation (the [`crate::engine::LintEngine`] does);
/// the LTS and reachability maps are content-addressed and never go
/// stale.
#[derive(Debug, Default)]
pub struct AnalysisCaches {
    /// Shared projection/compliance/validity memo for plan verification.
    pub verify: VerifyCache,
    /// Composed-product store the plan-space enumeration reads through:
    /// lint and synthesis walk the same pruned product machinery, so an
    /// engine divergence would surface here as a lint regression.
    pub products: ProductStore,
    /// Stand-alone LTSs keyed by `(hist fingerprint, bound)`.
    lts: HashMap<(u64, usize), Arc<HistLts>>,
    /// Per-behaviour ground events keyed by behaviour fingerprint.
    events: HashMap<u64, Arc<BTreeSet<Event>>>,
    /// Composed-execution reachability keyed by a fingerprint of
    /// `(client, plan, selected service behaviours and capacities,
    /// bound)`.
    composed: HashMap<u64, Option<Arc<BTreeSet<Event>>>>,
    /// Candidate plan spaces (with per-plan [`PlanMeta`]) keyed by a
    /// fingerprint of `(client, cap, per-location exposed requests)` —
    /// enumeration only looks at which requests each service exposes,
    /// never at the rest of its body, so most mutations reuse the
    /// plans outright.
    plans: HashMap<u64, PlanSpace>,
    /// Exposed-request fingerprints keyed by behaviour fingerprint.
    exposed: HashMap<u64, u64>,
    /// Per-plan verdicts keyed by a fingerprint of `(client, plan,
    /// registry, bound locations' behaviours and capacities)` — i.e.
    /// everything the verdict reads. Content-addressed, so unlike the
    /// location-addressed [`VerifyCache`] it needs no invalidation, and
    /// a mutation that reshapes the plan space still splices the
    /// verdict of every plan it did not touch.
    verdict_rows: HashMap<u64, PlanVerdict>,
    /// Whole per-client reports keyed by a fingerprint of `(plan
    /// space, every row's dependency state)`: a re-lint of a
    /// previously seen state reuses the report without cloning a
    /// single verdict.
    reports: HashMap<u64, Arc<VerifyReport>>,
}

/// A cached plan space: the candidate plans plus per-plan metadata
/// (structural fingerprint and distinct bound locations), computed once
/// per enumeration instead of once per refresh.
#[derive(Debug, Clone)]
struct PlanSpace {
    plans: Arc<Vec<Plan>>,
    meta: Arc<Vec<PlanMeta>>,
}

/// Precomputed per-plan facts every refresh needs.
#[derive(Debug)]
struct PlanMeta {
    /// Structural fingerprint of the plan.
    fp: u64,
    /// The distinct locations the plan binds, sorted.
    locs: Vec<Location>,
}

impl AnalysisCaches {
    /// Drops the content-addressed maps if they have grown past
    /// `limit` entries (the verify cache has its own invalidation).
    pub fn trim(&mut self, limit: usize) {
        if self.lts.len() > limit {
            self.lts.clear();
        }
        if self.events.len() > limit {
            self.events.clear();
        }
        if self.composed.len() > limit {
            self.composed.clear();
        }
        if self.plans.len() > limit {
            self.plans.clear();
        }
        if self.exposed.len() > limit {
            self.exposed.clear();
        }
        if self.verdict_rows.len() > limit {
            self.verdict_rows.clear();
        }
        if self.reports.len() > limit {
            self.reports.clear();
        }
    }

    fn lts_for(
        &mut self,
        subject: impl Fn() -> String,
        hist: &Hist,
        fingerprint: u64,
        bound: usize,
    ) -> Result<Arc<HistLts>, LintError> {
        let key = (fingerprint, bound);
        if let Some(lts) = self.lts.get(&key) {
            return Ok(Arc::clone(lts));
        }
        let lts = HistLts::build_bounded(hist, bound).map_err(|error| LintError::Lts {
            subject: subject(),
            error,
        })?;
        let lts = Arc::new(lts);
        self.lts.insert(key, Arc::clone(&lts));
        Ok(lts)
    }

    /// The ground events of one behaviour, shared across refreshes.
    fn events_of(&mut self, fingerprint: u64, hist: &Hist) -> Arc<BTreeSet<Event>> {
        Arc::clone(
            self.events
                .entry(fingerprint)
                .or_insert_with(|| Arc::new(hist.events().into_iter().collect())),
        )
    }

    /// Memoized plan-space enumeration, read through the composed
    /// [`ProductStore`]. The plan space is a function of
    /// the client's requests and of the requests each published
    /// service exposes ([`sufs_core::plans`] closes bindings over
    /// those), so the key folds the per-location exposed-request
    /// fingerprints: a body edit that keeps a service's requests
    /// intact reuses the enumeration. Returns the key alongside so the
    /// verdict rows of the same plan space can be addressed.
    fn plans_for(
        &mut self,
        client: &Hist,
        client_fp: u64,
        repo: &Repository,
        cap: usize,
        loc_info: &BTreeMap<&Location, [u64; 3]>,
    ) -> Result<(u64, PlanSpace), PlanSpaceExceeded> {
        let mut key: Vec<u64> = vec![client_fp, cap as u64];
        for (loc, [name_fp, body_fp, _]) in loc_info {
            let exposed = match self.exposed.get(body_fp) {
                Some(fp) => *fp,
                None => {
                    let h = repo.get(loc).expect("iterated location is published");
                    let ids: Vec<RequestId> = requests(h).into_iter().map(|r| r.id).collect();
                    let fp = stable_hash_of(&ids);
                    self.exposed.insert(*body_fp, fp);
                    fp
                }
            };
            key.extend([*name_fp, exposed]);
        }
        let pkey = stable_hash_of(&key);
        if let Some(space) = self.plans.get(&pkey) {
            return Ok((pkey, space.clone()));
        }
        let plans = Arc::new(self.products.plan_space(client, repo, cap)?);
        let meta = Arc::new(
            plans
                .iter()
                .map(|plan| {
                    let locs: BTreeSet<&Location> = plan.iter().map(|(_, l)| l).collect();
                    PlanMeta {
                        fp: stable_hash_of(plan),
                        locs: locs.into_iter().cloned().collect(),
                    }
                })
                .collect(),
        );
        let space = PlanSpace { plans, meta };
        self.plans.insert(pkey, space.clone());
        Ok((pkey, space))
    }
}

/// Everything the engine precomputes about one client.
#[derive(Debug)]
pub struct ClientAnalysis {
    /// The client's name.
    pub name: String,
    /// The client's behaviour.
    pub hist: Hist,
    /// The stand-alone LTS of the client (for witness paths).
    pub lts: Arc<HistLts>,
    /// Every candidate plan (complete bindings over the repository),
    /// shared with the enumeration cache.
    pub plans: Arc<Vec<Plan>>,
    /// The verification report over the candidates, shared with the
    /// report cache. Empty (with `verified == false`) when an
    /// unresolved policy reference prevents verification.
    pub report: Arc<VerifyReport>,
    /// Whether `report` was actually computed.
    pub verified: bool,
    /// Events some composed execution under some candidate plan fires.
    pub reachable_events: BTreeSet<Event>,
    /// Whether every candidate plan was explored to completion (a bound
    /// hit makes reachability information incomplete; passes must then
    /// stay silent rather than guess).
    pub explored_all: bool,
}

/// Everything the engine precomputes about one published service.
#[derive(Debug)]
pub struct ServiceAnalysis {
    /// The stand-alone LTS of the service (for witness paths).
    pub lts: Arc<HistLts>,
    /// Events fired by some composed execution of a candidate plan that
    /// selects this service (an over-approximation of the service's own
    /// contribution, which errs towards silence).
    pub reachable_events: BTreeSet<Event>,
    /// Whether any candidate plan of any client selects the service.
    pub selected: bool,
    /// Whether every exploration involving the service completed.
    pub explored_all: bool,
}

/// A policy reference together with where it occurs.
#[derive(Debug, Clone)]
pub struct PolicyOrigin {
    /// The component mentioning the reference (`client c1`, `service br`).
    pub subject: String,
    /// The declaration position of that component.
    pub pos: SrcPos,
    /// The reference itself.
    pub reference: PolicyRef,
}

/// The precomputed analysis state shared by every pass.
#[derive(Debug)]
pub struct LintContext<'a> {
    /// The state under analysis.
    pub input: LintInput<'a>,
    /// The exploration bound the analyses ran under.
    pub bound: usize,
    /// Per-client analyses, in declaration order.
    pub clients: Vec<ClientAnalysis>,
    /// Per-service analyses.
    pub services: BTreeMap<Location, ServiceAnalysis>,
    /// The ground event alphabet: every event any component can fire.
    pub alphabet: Vec<Event>,
    /// Every policy reference in the scenario, deduplicated by reference
    /// (first origin wins), in first-occurrence order.
    pub policy_refs: Vec<PolicyOrigin>,
    /// Whether at least one reference fails to resolve (verification is
    /// skipped scenario-wide in that case; `SUFS008` reports the causes).
    pub has_unresolved: bool,
}

impl<'a> LintContext<'a> {
    /// Precomputes the context with the default exploration bound and
    /// plan cap.
    pub fn build(scenario: &'a Scenario) -> Result<LintContext<'a>, LintError> {
        Self::build_with(scenario, DEFAULT_STATE_BOUND, DEFAULT_PLAN_CAP)
    }

    /// Precomputes the context with explicit bounds.
    pub fn build_with(
        scenario: &'a Scenario,
        bound: usize,
        plan_cap: usize,
    ) -> Result<LintContext<'a>, LintError> {
        let mut caches = AnalysisCaches::default();
        Self::build_cached(scenario.into(), bound, plan_cap, &mut caches)
    }

    /// Precomputes the context over any [`LintInput`], memoizing the
    /// expensive sub-analyses in `caches` for the next build.
    pub fn build_cached(
        input: LintInput<'a>,
        bound: usize,
        plan_cap: usize,
        caches: &mut AnalysisCaches,
    ) -> Result<LintContext<'a>, LintError> {
        let mut policy_refs: Vec<PolicyOrigin> = Vec::new();
        let mut add_refs = |subject: String, pos: SrcPos, h: &Hist| {
            for reference in h.policy_refs() {
                if !policy_refs.iter().any(|o| o.reference == reference) {
                    policy_refs.push(PolicyOrigin {
                        subject: subject.clone(),
                        pos,
                        reference,
                    });
                }
            }
        };
        for (name, h) in input.clients {
            let pos = span_or_start(input.spans.map(|s| &s.clients), name);
            add_refs(format!("client {name}"), pos, h);
        }
        for (loc, h) in input.repository.iter() {
            let pos = span_or_start(input.spans.map(|s| &s.services), loc.as_str());
            add_refs(format!("service {loc}"), pos, h);
        }
        let has_unresolved = policy_refs
            .iter()
            .any(|o| input.registry.instantiate(&o.reference).is_err());

        // Per-location fingerprints `[name, behaviour, capacity]`,
        // computed once: every cache key below (plans, verdicts,
        // composed reachability) is assembled from these.
        let mut alphabet_union: BTreeSet<Event> = BTreeSet::new();
        let mut loc_info: BTreeMap<&Location, [u64; 3]> = BTreeMap::new();
        let mut services: BTreeMap<Location, ServiceAnalysis> = BTreeMap::new();
        for (loc, h) in input.repository.iter() {
            let body_fp = stable_hash_of(h);
            // `Some(Some(n))` is bounded, anything else unbounded —
            // the same encoding the engine fingerprints use.
            let cap_fp = match input.repository.capacity(loc) {
                Some(Some(n)) => n as u64,
                _ => u64::MAX,
            };
            loc_info.insert(loc, [stable_hash_of(loc.as_str()), body_fp, cap_fp]);
            alphabet_union.extend(caches.events_of(body_fp, h).iter().cloned());
            let lts = caches.lts_for(|| format!("service {loc}"), h, body_fp, bound)?;
            services.insert(
                loc.clone(),
                ServiceAnalysis {
                    lts,
                    reachable_events: BTreeSet::new(),
                    selected: false,
                    explored_all: true,
                },
            );
        }

        // One fingerprint of the whole registry: verdicts depend on it
        // through every policy the composition can activate.
        let registry_fp = {
            let parts: Vec<u64> = input
                .registry
                .iter()
                .map(|a| stable_hash_of(&format!("{a:?}")))
                .collect();
            stable_hash_of(&parts)
        };

        let mut clients = Vec::new();
        let mut key_buf: Vec<u64> = Vec::new();
        for (name, h) in input.clients {
            let client_hash = stable_hash_of(h);
            alphabet_union.extend(caches.events_of(client_hash, h).iter().cloned());
            let lts = caches.lts_for(|| format!("client {name}"), h, client_hash, bound)?;
            let (pkey, space) = caches
                .plans_for(h, client_hash, input.repository, plan_cap, &loc_info)
                .map_err(|error| LintError::Plans {
                    client: name.clone(),
                    error,
                })?;
            let PlanSpace { plans, meta } = space;

            let mut reachable_events = BTreeSet::new();
            let mut explored_all = true;
            for (plan, meta) in plans.iter().zip(meta.iter()) {
                for loc in &meta.locs {
                    if let Some(s) = services.get_mut(loc) {
                        s.selected = true;
                    }
                }
                key_buf.clear();
                key_buf.extend([client_hash, meta.fp, bound as u64]);
                for loc in &meta.locs {
                    key_buf.extend(loc_info.get(loc).expect("plans bind published locations"));
                }
                let events = match caches.composed.entry(stable_hash_of(&key_buf)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
                    std::collections::hash_map::Entry::Vacant(e) => e
                        .insert(composed_events(h, plan, input.repository, bound).map(Arc::new))
                        .clone(),
                };
                match events {
                    Some(events) => {
                        reachable_events.extend(events.iter().cloned());
                        for loc in &meta.locs {
                            if let Some(s) = services.get_mut(loc) {
                                s.reachable_events.extend(events.iter().cloned());
                            }
                        }
                    }
                    None => {
                        explored_all = false;
                        for loc in &meta.locs {
                            if let Some(s) = services.get_mut(loc) {
                                s.explored_all = false;
                            }
                        }
                    }
                }
            }

            let (report, verified) = if has_unresolved {
                (Arc::new(VerifyReport::new(Vec::new())), false)
            } else {
                // Fingerprint what each plan's verdict reads (registry
                // plus the bound locations' behaviours and
                // capacities); the plan itself is pinned by its row
                // index in the cached plan space.
                let deps: Vec<u64> = meta
                    .iter()
                    .map(|m| {
                        key_buf.clear();
                        key_buf.push(registry_fp);
                        for loc in &m.locs {
                            key_buf
                                .extend(loc_info.get(loc).expect("plans bind published locations"));
                        }
                        stable_hash_of(&key_buf)
                    })
                    .collect();
                let rkey = stable_hash_of(&(pkey, &deps));
                let report = match caches.reports.get(&rkey) {
                    Some(report) => Arc::clone(report),
                    None => {
                        // Splice row verdicts whose inputs are
                        // unchanged; re-verify the rest through the
                        // shared `VerifyCache`. Verdict-identical to
                        // `synthesize_with` — pinned by the
                        // equivalence suite in
                        // `tests/lint_incremental.rs`.
                        let mut verdicts = Vec::with_capacity(plans.len());
                        for ((plan, m), dep) in plans.iter().zip(meta.iter()).zip(&deps) {
                            let vkey = stable_hash_of(&[client_hash, m.fp, *dep]);
                            let cached = caches.verdict_rows.get(&vkey).filter(|v| v.plan == *plan);
                            let verdict = match cached {
                                Some(v) => v.clone(),
                                None => {
                                    let v = verify_plan_with(
                                        h,
                                        plan,
                                        input.repository,
                                        input.registry,
                                        Some(&caches.verify),
                                    )
                                    .map_err(|error| LintError::Verify {
                                        client: name.clone(),
                                        error,
                                    })?;
                                    caches.verdict_rows.insert(vkey, v.clone());
                                    v
                                }
                            };
                            verdicts.push(verdict);
                        }
                        let report = Arc::new(VerifyReport::new(verdicts));
                        caches.reports.insert(rkey, Arc::clone(&report));
                        report
                    }
                };
                (report, true)
            };

            clients.push(ClientAnalysis {
                name: name.clone(),
                hist: h.clone(),
                lts,
                plans,
                report,
                verified,
                reachable_events,
                explored_all,
            });
        }

        Ok(LintContext {
            input,
            bound,
            clients,
            services,
            alphabet: alphabet_union.into_iter().collect(),
            policy_refs,
            has_unresolved,
        })
    }

    /// The published services under analysis.
    pub fn repository(&self) -> &Repository {
        self.input.repository
    }

    /// The policy definitions under analysis.
    pub fn registry(&self) -> &PolicyRegistry {
        self.input.registry
    }

    /// The quantitative budgets, if any.
    pub fn budgets(&self) -> &[CostBound] {
        self.input.budgets
    }

    /// The declared position of a client (start of text as fallback).
    pub fn client_pos(&self, name: &str) -> SrcPos {
        span_or_start(self.input.spans.map(|s| &s.clients), name)
    }

    /// The declared position of a service.
    pub fn service_pos(&self, loc: &Location) -> SrcPos {
        span_or_start(self.input.spans.map(|s| &s.services), loc.as_str())
    }

    /// The declared position of a policy definition; falls back to the
    /// position of `or` (the first reference's origin), then to the
    /// start of the text.
    pub fn policy_pos(&self, name: &str, or: Option<SrcPos>) -> SrcPos {
        self.input
            .spans
            .and_then(|s| s.policies.get(name).copied())
            .or(or)
            .unwrap_or_else(SrcPos::start)
    }
}

fn span_or_start(map: Option<&BTreeMap<String, SrcPos>>, name: &str) -> SrcPos {
    map.and_then(|m| m.get(name).copied())
        .unwrap_or_else(SrcPos::start)
}

/// Every event some run of `client` under `plan` fires, by breadth-first
/// exploration of the composed symbolic state space; `None` if more than
/// `bound` states are reachable.
fn composed_events(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
    bound: usize,
) -> Option<BTreeSet<Event>> {
    let initial = SymState::initial("client", client.clone());
    let mut seen: HashSet<SymState> = HashSet::from([initial.clone()]);
    let mut queue = VecDeque::from([initial]);
    let mut events = BTreeSet::new();
    while let Some(state) = queue.pop_front() {
        for (label, next) in symbolic_successors(&state, plan, repo) {
            if let Label::Ev(e) = &label {
                events.insert(e.clone());
            }
            if !seen.contains(&next) {
                if seen.len() >= bound {
                    return None;
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    Some(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_core::scenario::parse_scenario;

    #[test]
    fn context_precomputes_plans_and_reachability() {
        let sc = parse_scenario(
            r#"
            client c { open 1 { int[ask -> eps]; ext[yes -> #won; eps | no -> eps] } }
            service nay { ext[ask -> int[no -> eps]] }
            "#,
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        assert_eq!(ctx.clients.len(), 1);
        let c = &ctx.clients[0];
        assert_eq!(c.plans.len(), 1);
        assert!(c.verified);
        assert!(c.explored_all);
        // The service only answers `no`, so `#won` never fires …
        assert!(!c.reachable_events.contains(&Event::nullary("won")));
        // … but it is part of the alphabet.
        assert!(ctx.alphabet.contains(&Event::nullary("won")));
        let srv = ctx.services.get(&Location::new("nay")).unwrap();
        assert!(srv.selected);
    }

    #[test]
    fn unresolved_policies_disable_verification() {
        let sc = parse_scenario(
            r#"
            client c { open 1 phi ghost { int[a -> eps] } }
            service s { ext[a -> eps] }
            "#,
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        assert!(ctx.has_unresolved);
        assert!(!ctx.clients[0].verified);
        assert_eq!(ctx.policy_refs.len(), 1);
        assert_eq!(ctx.policy_refs[0].subject, "client c");
    }

    #[test]
    fn cached_build_matches_cold_build() {
        let sc = parse_scenario(
            r#"
            client c { open 1 { int[ask -> eps]; ext[yes -> #won; eps | no -> eps] } }
            service nay { ext[ask -> int[no -> eps]] }
            service aye { ext[ask -> int[yes -> eps]] }
            "#,
        )
        .unwrap();
        let cold = LintContext::build(&sc).unwrap();
        let mut caches = AnalysisCaches::default();
        let input = LintInput::from(&sc);
        let warm1 =
            LintContext::build_cached(input, DEFAULT_STATE_BOUND, DEFAULT_PLAN_CAP, &mut caches)
                .unwrap();
        let warm2 =
            LintContext::build_cached(input, DEFAULT_STATE_BOUND, DEFAULT_PLAN_CAP, &mut caches)
                .unwrap();
        for warm in [&warm1, &warm2] {
            assert_eq!(warm.clients.len(), cold.clients.len());
            for (a, b) in warm.clients.iter().zip(&cold.clients) {
                assert_eq!(a.plans, b.plans);
                assert_eq!(a.verified, b.verified);
                assert_eq!(a.reachable_events, b.reachable_events);
                assert_eq!(
                    a.report.valid_plans().collect::<Vec<_>>(),
                    b.report.valid_plans().collect::<Vec<_>>()
                );
            }
            assert_eq!(warm.alphabet, cold.alphabet);
        }
    }
}
