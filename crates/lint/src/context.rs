//! The shared analysis context the passes consume: per-client candidate
//! plans and verification reports, per-component LTSs, the ground event
//! alphabet, composed-execution reachability, and every policy
//! reference with its origin.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use sufs_core::plans::{enumerate_plans, DEFAULT_PLAN_CAP};
use sufs_core::report::VerifyReport;
use sufs_core::scenario::{Scenario, SrcPos};
use sufs_core::verify::{verify, DEFAULT_STATE_BOUND};
use sufs_hexpr::{Event, Hist, HistLts, Label, Location, PolicyRef};
use sufs_net::symbolic::{symbolic_successors, SymState};
use sufs_net::{Plan, Repository};
use sufs_policy::automata_bridge::system_alphabet;

use crate::LintError;

/// Everything the engine precomputes about one client.
#[derive(Debug)]
pub struct ClientAnalysis {
    /// The client's name.
    pub name: String,
    /// The client's behaviour.
    pub hist: Hist,
    /// The stand-alone LTS of the client (for witness paths).
    pub lts: HistLts,
    /// Every candidate plan (complete bindings over the repository).
    pub plans: Vec<Plan>,
    /// The verification report over the candidates. Empty (with
    /// `verified == false`) when an unresolved policy reference prevents
    /// verification.
    pub report: VerifyReport,
    /// Whether `report` was actually computed.
    pub verified: bool,
    /// Events some composed execution under some candidate plan fires.
    pub reachable_events: BTreeSet<Event>,
    /// Whether every candidate plan was explored to completion (a bound
    /// hit makes reachability information incomplete; passes must then
    /// stay silent rather than guess).
    pub explored_all: bool,
}

/// Everything the engine precomputes about one published service.
#[derive(Debug)]
pub struct ServiceAnalysis {
    /// The stand-alone LTS of the service (for witness paths).
    pub lts: HistLts,
    /// Events fired by some composed execution of a candidate plan that
    /// selects this service (an over-approximation of the service's own
    /// contribution, which errs towards silence).
    pub reachable_events: BTreeSet<Event>,
    /// Whether any candidate plan of any client selects the service.
    pub selected: bool,
    /// Whether every exploration involving the service completed.
    pub explored_all: bool,
}

/// A policy reference together with where it occurs.
#[derive(Debug, Clone)]
pub struct PolicyOrigin {
    /// The component mentioning the reference (`client c1`, `service br`).
    pub subject: String,
    /// The declaration position of that component.
    pub pos: SrcPos,
    /// The reference itself.
    pub reference: PolicyRef,
}

/// The precomputed analysis state shared by every pass.
#[derive(Debug)]
pub struct LintContext<'a> {
    /// The scenario under analysis.
    pub scenario: &'a Scenario,
    /// Per-client analyses, in declaration order.
    pub clients: Vec<ClientAnalysis>,
    /// Per-service analyses.
    pub services: BTreeMap<Location, ServiceAnalysis>,
    /// The ground event alphabet: every event any component can fire.
    pub alphabet: Vec<Event>,
    /// Every policy reference in the scenario, deduplicated by reference
    /// (first origin wins), in first-occurrence order.
    pub policy_refs: Vec<PolicyOrigin>,
    /// Whether at least one reference fails to resolve (verification is
    /// skipped scenario-wide in that case; `SUFS008` reports the causes).
    pub has_unresolved: bool,
}

impl<'a> LintContext<'a> {
    /// Precomputes the context with the default exploration bound and
    /// plan cap.
    pub fn build(scenario: &'a Scenario) -> Result<LintContext<'a>, LintError> {
        Self::build_with(scenario, DEFAULT_STATE_BOUND, DEFAULT_PLAN_CAP)
    }

    /// Precomputes the context with explicit bounds.
    pub fn build_with(
        scenario: &'a Scenario,
        bound: usize,
        plan_cap: usize,
    ) -> Result<LintContext<'a>, LintError> {
        let behaviours: Vec<&Hist> = scenario
            .clients
            .iter()
            .map(|(_, h)| h)
            .chain(scenario.repository.iter().map(|(_, h)| h))
            .collect();
        let alphabet = system_alphabet(behaviours);

        let mut policy_refs: Vec<PolicyOrigin> = Vec::new();
        let mut add_refs = |subject: String, pos: SrcPos, h: &Hist| {
            for reference in h.policy_refs() {
                if !policy_refs.iter().any(|o| o.reference == reference) {
                    policy_refs.push(PolicyOrigin {
                        subject: subject.clone(),
                        pos,
                        reference,
                    });
                }
            }
        };
        for (name, h) in &scenario.clients {
            let pos = span_or_start(&scenario.spans.clients, name);
            add_refs(format!("client {name}"), pos, h);
        }
        for (loc, h) in scenario.repository.iter() {
            let pos = span_or_start(&scenario.spans.services, loc.as_str());
            add_refs(format!("service {loc}"), pos, h);
        }
        let has_unresolved = policy_refs
            .iter()
            .any(|o| scenario.registry.instantiate(&o.reference).is_err());

        let mut services: BTreeMap<Location, ServiceAnalysis> = BTreeMap::new();
        for (loc, h) in scenario.repository.iter() {
            let lts = HistLts::build_bounded(h, bound).map_err(|error| LintError::Lts {
                subject: format!("service {loc}"),
                error,
            })?;
            services.insert(
                loc.clone(),
                ServiceAnalysis {
                    lts,
                    reachable_events: BTreeSet::new(),
                    selected: false,
                    explored_all: true,
                },
            );
        }

        let mut clients = Vec::new();
        for (name, h) in &scenario.clients {
            let lts = HistLts::build_bounded(h, bound).map_err(|error| LintError::Lts {
                subject: format!("client {name}"),
                error,
            })?;
            let plans = enumerate_plans(h, &scenario.repository, plan_cap).map_err(|error| {
                LintError::Plans {
                    client: name.clone(),
                    error,
                }
            })?;
            let (report, verified) = if has_unresolved {
                (VerifyReport::new(Vec::new()), false)
            } else {
                let report =
                    verify(h, &scenario.repository, &scenario.registry).map_err(|error| {
                        LintError::Verify {
                            client: name.clone(),
                            error,
                        }
                    })?;
                (report, true)
            };

            let mut reachable_events = BTreeSet::new();
            let mut explored_all = true;
            for plan in &plans {
                let locs: BTreeSet<&Location> = plan.iter().map(|(_, l)| l).collect();
                for loc in &locs {
                    if let Some(s) = services.get_mut(*loc) {
                        s.selected = true;
                    }
                }
                match composed_events(h, plan, &scenario.repository, bound) {
                    Some(events) => {
                        reachable_events.extend(events.iter().cloned());
                        for loc in locs {
                            if let Some(s) = services.get_mut(loc) {
                                s.reachable_events.extend(events.iter().cloned());
                            }
                        }
                    }
                    None => {
                        explored_all = false;
                        for loc in locs {
                            if let Some(s) = services.get_mut(loc) {
                                s.explored_all = false;
                            }
                        }
                    }
                }
            }

            clients.push(ClientAnalysis {
                name: name.clone(),
                hist: h.clone(),
                lts,
                plans,
                report,
                verified,
                reachable_events,
                explored_all,
            });
        }

        Ok(LintContext {
            scenario,
            clients,
            services,
            alphabet,
            policy_refs,
            has_unresolved,
        })
    }

    /// The declared position of a client (start of text as fallback).
    pub fn client_pos(&self, name: &str) -> SrcPos {
        span_or_start(&self.scenario.spans.clients, name)
    }

    /// The declared position of a service.
    pub fn service_pos(&self, loc: &Location) -> SrcPos {
        span_or_start(&self.scenario.spans.services, loc.as_str())
    }

    /// The declared position of a policy definition; falls back to the
    /// position of `or` (the first reference's origin), then to the
    /// start of the text.
    pub fn policy_pos(&self, name: &str, or: Option<SrcPos>) -> SrcPos {
        self.scenario
            .spans
            .policies
            .get(name)
            .copied()
            .or(or)
            .unwrap_or_else(SrcPos::start)
    }
}

fn span_or_start(map: &BTreeMap<String, SrcPos>, name: &str) -> SrcPos {
    map.get(name).copied().unwrap_or_else(SrcPos::start)
}

/// Every event some run of `client` under `plan` fires, by breadth-first
/// exploration of the composed symbolic state space; `None` if more than
/// `bound` states are reachable.
fn composed_events(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
    bound: usize,
) -> Option<BTreeSet<Event>> {
    let initial = SymState::initial("client", client.clone());
    let mut seen: HashSet<SymState> = HashSet::from([initial.clone()]);
    let mut queue = VecDeque::from([initial]);
    let mut events = BTreeSet::new();
    while let Some(state) = queue.pop_front() {
        for (label, next) in symbolic_successors(&state, plan, repo) {
            if let Label::Ev(e) = &label {
                events.insert(e.clone());
            }
            if !seen.contains(&next) {
                if seen.len() >= bound {
                    return None;
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    Some(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_core::scenario::parse_scenario;

    #[test]
    fn context_precomputes_plans_and_reachability() {
        let sc = parse_scenario(
            r#"
            client c { open 1 { int[ask -> eps]; ext[yes -> #won; eps | no -> eps] } }
            service nay { ext[ask -> int[no -> eps]] }
            "#,
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        assert_eq!(ctx.clients.len(), 1);
        let c = &ctx.clients[0];
        assert_eq!(c.plans.len(), 1);
        assert!(c.verified);
        assert!(c.explored_all);
        // The service only answers `no`, so `#won` never fires …
        assert!(!c.reachable_events.contains(&Event::nullary("won")));
        // … but it is part of the alphabet.
        assert!(ctx.alphabet.contains(&Event::nullary("won")));
        let srv = ctx.services.get(&Location::new("nay")).unwrap();
        assert!(srv.selected);
    }

    #[test]
    fn unresolved_policies_disable_verification() {
        let sc = parse_scenario(
            r#"
            client c { open 1 phi ghost { int[a -> eps] } }
            service s { ext[a -> eps] }
            "#,
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        assert!(ctx.has_unresolved);
        assert!(!ctx.clients[0].verified);
        assert_eq!(ctx.policy_refs.len(), 1);
        assert_eq!(ctx.policy_refs[0].subject, "client c");
    }
}
