//! The incremental lint engine: maintains a [`LintReport`] over a
//! mutating repository state, re-running only the passes whose inputs
//! changed.
//!
//! The engine fingerprints every declaration of a [`LintInput`] with
//! `sufs-hexpr::shash` (the same structural hashing `VerifyCache`
//! keys on): each client behaviour, each published service behaviour,
//! each capacity annotation, each policy automaton, and the budget
//! list. A [`refresh`](LintEngine::refresh) diffs the fingerprints
//! against the previous state, invalidates the location-addressed
//! verify cache for exactly the touched locations, rebuilds the
//! [`LintContext`] through the shared [`AnalysisCaches`] (stand-alone
//! LTSs, per-plan verification and composed reachability all become
//! lookups for unchanged components), and then walks the passes: a
//! pass none of whose [`Dep`](crate::passes::Dep) kinds changed gets
//! its previous diagnostics spliced back verbatim; the rest re-run.
//! The result is equal to a cold full re-lint — enforced by the seeded
//! property suite in `tests/lint_incremental.rs`.

use std::collections::{BTreeMap, BTreeSet};

use sufs_core::plans::DEFAULT_PLAN_CAP;
use sufs_core::verify::DEFAULT_STATE_BOUND;
use sufs_hexpr::shash::stable_hash_of;
use sufs_hexpr::Location;

use crate::context::{AnalysisCaches, LintContext, LintInput};
use crate::diag::{Code, Diagnostic, LintReport};
use crate::passes::{self, Dep};
use crate::{sort_diagnostics, LintError};

/// Past this many content-addressed cache entries the maps are dropped
/// wholesale (a crude bound; entries are re-derivable).
const CACHE_TRIM: usize = 1 << 16;

/// Per-declaration fingerprints of one input state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Fingerprints {
    clients: BTreeMap<String, u64>,
    services: BTreeMap<Location, u64>,
    capacities: BTreeMap<Location, u64>,
    policies: BTreeMap<String, u64>,
    budgets: u64,
}

impl Fingerprints {
    fn of(input: &LintInput<'_>) -> Fingerprints {
        let mut fp = Fingerprints::default();
        for (name, hist) in input.clients {
            fp.clients.insert(name.clone(), stable_hash_of(hist));
        }
        for (loc, hist) in input.repository.iter() {
            fp.services.insert(loc.clone(), stable_hash_of(hist));
            // `capacity` is `Some(None)` for unbounded, `Some(Some(n))`
            // for bounded; encode both distinctly.
            let cap = match input.repository.capacity(loc) {
                Some(Some(n)) => n as u64,
                _ => u64::MAX,
            };
            fp.capacities.insert(loc.clone(), cap);
        }
        for automaton in input.registry.iter() {
            // `UsageAutomaton` has no `Hash`, but its `Debug` rendering
            // is a pure function of its (all-`String`/`Vec`) fields.
            fp.policies.insert(
                automaton.name().to_string(),
                stable_hash_of(&format!("{automaton:?}")),
            );
        }
        fp.budgets = stable_hash_of(&format!("{:?}", input.budgets));
        fp
    }

    /// The declaration kinds that differ between two states.
    fn changed_kinds(&self, prev: &Fingerprints) -> BTreeSet<Dep> {
        let mut changed = BTreeSet::new();
        if self.clients != prev.clients {
            changed.insert(Dep::Clients);
        }
        if self.services != prev.services {
            changed.insert(Dep::Services);
        }
        if self.capacities != prev.capacities {
            changed.insert(Dep::Capacities);
        }
        if self.policies != prev.policies {
            changed.insert(Dep::Policies);
        }
        if self.budgets != prev.budgets {
            changed.insert(Dep::Budgets);
        }
        changed
    }
}

/// What one [`LintEngine::refresh`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshOutcome {
    /// Passes that re-ran because a dependency changed.
    pub passes_run: usize,
    /// Passes whose previous diagnostics were spliced back verbatim.
    pub passes_reused: usize,
}

/// One pass's cached result from the previous refresh.
#[derive(Debug, Clone)]
struct PassEntry {
    code: Code,
    diagnostics: Vec<Diagnostic>,
}

/// An incrementally-maintained lint report over a mutating repository
/// state. See the module docs for the mechanism.
#[derive(Debug, Default)]
pub struct LintEngine {
    bound: usize,
    plan_cap: usize,
    caches: AnalysisCaches,
    state: Option<Fingerprints>,
    pass_cache: Vec<PassEntry>,
    report: LintReport,
}

impl LintEngine {
    /// An engine with the default exploration bound and plan cap.
    pub fn new() -> LintEngine {
        Self::with_bounds(DEFAULT_STATE_BOUND, DEFAULT_PLAN_CAP)
    }

    /// An engine with explicit bounds.
    pub fn with_bounds(bound: usize, plan_cap: usize) -> LintEngine {
        LintEngine {
            bound,
            plan_cap,
            caches: AnalysisCaches::default(),
            state: None,
            pass_cache: Vec::new(),
            report: LintReport::default(),
        }
    }

    /// The report as of the last successful [`refresh`](Self::refresh).
    pub fn report(&self) -> &LintReport {
        &self.report
    }

    /// Brings the report up to date with `input`, re-running only the
    /// passes whose declared dependencies changed.
    ///
    /// # Errors
    ///
    /// As [`crate::lint_scenario`]; the previous report is kept on
    /// error and the next refresh starts from the same diff.
    pub fn refresh(&mut self, input: LintInput<'_>) -> Result<RefreshOutcome, LintError> {
        let fp = Fingerprints::of(&input);
        let changed = match &self.state {
            None => BTreeSet::from([
                Dep::Clients,
                Dep::Services,
                Dep::Capacities,
                Dep::Policies,
                Dep::Budgets,
            ]),
            Some(prev) => fp.changed_kinds(prev),
        };
        if changed.is_empty() {
            return Ok(RefreshOutcome {
                passes_run: 0,
                passes_reused: self.pass_cache.len(),
            });
        }

        // The verify cache is location-addressed: evict exactly the
        // locations whose behaviour or capacity changed (the same
        // discipline the broker applies on mutation).
        if let Some(prev) = &self.state {
            if changed.contains(&Dep::Policies) || changed.contains(&Dep::Budgets) {
                self.caches.verify.invalidate_registry();
            }
            let mut touched: BTreeSet<&Location> = BTreeSet::new();
            for (map, prev_map) in [
                (&fp.services, &prev.services),
                (&fp.capacities, &prev.capacities),
            ] {
                for (loc, h) in map {
                    if prev_map.get(loc) != Some(h) {
                        touched.insert(loc);
                    }
                }
                for loc in prev_map.keys() {
                    if !map.contains_key(loc) {
                        touched.insert(loc);
                    }
                }
            }
            for loc in touched {
                self.caches.verify.invalidate_location(loc);
            }
        }
        self.caches.trim(CACHE_TRIM);

        let ctx = LintContext::build_cached(input, self.bound, self.plan_cap, &mut self.caches)?;
        let mut outcome = RefreshOutcome::default();
        let mut diagnostics = Vec::new();
        let mut next_cache = Vec::new();
        for pass in passes::all() {
            let cached = self
                .pass_cache
                .iter()
                .find(|e| e.code == pass.code())
                .filter(|_| !pass.deps().iter().any(|d| changed.contains(d)));
            let diags = match cached {
                Some(entry) => {
                    outcome.passes_reused += 1;
                    entry.diagnostics.clone()
                }
                None => {
                    outcome.passes_run += 1;
                    pass.run(&ctx)
                }
            };
            diagnostics.extend(diags.iter().cloned());
            next_cache.push(PassEntry {
                code: pass.code(),
                diagnostics: diags,
            });
        }
        sort_diagnostics(&mut diagnostics);
        self.pass_cache = next_cache;
        self.report = LintReport { diagnostics };
        self.state = Some(fp);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_scenario;
    use sufs_core::scenario::parse_scenario;

    #[test]
    fn engine_matches_cold_lint_and_reuses_passes() {
        let sc = parse_scenario(
            "client c { open 1 { int[q -> eps]; ext[a -> eps | b -> eps] } }
             service s { ext[q -> int[a -> eps | b -> eps]] }
             service spare { ext[zzz -> eps] }",
        )
        .unwrap();
        let mut engine = LintEngine::new();
        let first = engine.refresh(LintInput::from(&sc)).unwrap();
        assert_eq!(first.passes_reused, 0);
        let cold = lint_scenario(&sc).unwrap();
        assert_eq!(engine.report().to_json(None), cold.to_json(None));

        // Unchanged state: everything is reused, nothing runs.
        let second = engine.refresh(LintInput::from(&sc)).unwrap();
        assert_eq!(second.passes_run, 0);
        assert_eq!(second.passes_reused, first.passes_run);
        assert_eq!(engine.report().to_json(None), cold.to_json(None));
    }

    #[test]
    fn engine_tracks_repository_mutations() {
        let before = parse_scenario(
            "client c { open 1 { int[q -> eps] } }
             service s { ext[q -> eps] }
             service t { ext[q -> eps] }",
        )
        .unwrap();
        let after = parse_scenario(
            "client c { open 1 { int[q -> eps] } }
             service s { ext[q -> eps] }",
        )
        .unwrap();
        let mut engine = LintEngine::new();
        engine.refresh(LintInput::from(&before)).unwrap();
        let outcome = engine.refresh(LintInput::from(&after)).unwrap();
        // Policy-independent passes re-run (services changed); the
        // report matches a cold lint of the mutated state.
        assert!(outcome.passes_run > 0);
        let cold = lint_scenario(&after).unwrap();
        assert_eq!(engine.report().to_json(None), cold.to_json(None));
        // And back again.
        engine.refresh(LintInput::from(&before)).unwrap();
        let cold_before = lint_scenario(&before).unwrap();
        assert_eq!(engine.report().to_json(None), cold_before.to_json(None));
    }
}
