//! `SUFS003` — policies made redundant by stricter ones.
//!
//! Over the scenario's ground alphabet each instantiated policy denotes
//! a regular language of forbidden traces. If `L(φ_b) ⊆ L(φ_a)`
//! properly, everything `φ_b` forbids is already forbidden by `φ_a`, so
//! enforcing `φ_b` alongside `φ_a` adds nothing; language-equal pairs
//! are reported once. Vacuous instances (empty language, reported by
//! `SUFS002`) are skipped — the empty language is trivially contained
//! in everything.

use sufs_automata::Dfa;
use sufs_hexpr::Event;
use sufs_policy::automata_bridge::to_dfa;

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `policy-subsumption` pass.
pub struct PolicySubsumption;

impl Pass for PolicySubsumption {
    fn code(&self) -> Code {
        Code::PolicySubsumption
    }

    fn description(&self) -> &'static str {
        "instantiated policies whose forbidden language is contained in another's"
    }

    fn deps(&self) -> &'static [Dep] {
        // Languages are compared over the alphabet (clients+services);
        // the references come from behaviours and resolve against the
        // registry.
        &[Dep::Clients, Dep::Services, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        // Materialise the DFA of every resolvable, non-vacuous instance.
        let mut dfas: Vec<(&crate::context::PolicyOrigin, Dfa<Event>)> = Vec::new();
        for origin in &ctx.policy_refs {
            let Ok(instance) = ctx.registry().instantiate(&origin.reference) else {
                continue;
            };
            let dfa = to_dfa(&instance, &ctx.alphabet);
            if dfa.language_is_empty() {
                continue;
            }
            dfas.push((origin, dfa));
        }

        let mut out = Vec::new();
        for i in 0..dfas.len() {
            for j in 0..dfas.len() {
                if i == j {
                    continue;
                }
                let (a, dfa_a) = &dfas[i];
                let (b, dfa_b) = &dfas[j];
                // L(b) ⊆ L(a) ⟺ L(b) ∩ ¬L(a) = ∅.
                let b_in_a = dfa_b.intersect(&dfa_a.complement()).language_is_empty();
                if !b_in_a {
                    continue;
                }
                let a_in_b = dfa_a.intersect(&dfa_b.complement()).language_is_empty();
                if a_in_b {
                    // Language-equal: report once, against the later
                    // occurrence so the first-declared instance survives.
                    if i < j {
                        out.push(
                            Diagnostic::new(
                                Code::PolicySubsumption,
                                ctx.policy_pos(b.reference.name(), Some(b.pos)),
                                format!("policy {}", b.reference),
                                format!(
                                    "forbids exactly the same traces as {} over the scenario's \
                                     alphabet",
                                    a.reference
                                ),
                            )
                            .with_note(format!(
                                "instantiated in {}; the two instantiations are interchangeable",
                                b.subject
                            )),
                        );
                    }
                } else {
                    // Proper containment: b is the redundant (weaker) one.
                    let mut d = Diagnostic::new(
                        Code::PolicySubsumption,
                        ctx.policy_pos(b.reference.name(), Some(b.pos)),
                        format!("policy {}", b.reference),
                        format!(
                            "is subsumed by {}: every trace it forbids is already forbidden \
                             by the stricter instantiation",
                            a.reference
                        ),
                    )
                    .with_note(format!(
                        "instantiated in {}; a plan valid under {} is automatically valid \
                         under this policy",
                        b.subject, a.reference
                    ));
                    // A trace the stricter policy forbids on top: shows
                    // the containment is proper.
                    if let Some(extra) = dfa_a.intersect(&dfa_b.complement()).shortest_accepted() {
                        d = d.with_witness(extra.iter().map(|e| e.to_string()).collect());
                    }
                    out.push(d);
                }
            }
        }
        out
    }
}
