//! The lint passes, one module per diagnostic code, behind the common
//! [`Pass`] trait.

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};

mod dead_service;
mod empty_plan_space;
mod plan_contention;
mod policy_subsumption;
mod unbalanced_framing;
mod unreachable_event;
mod unresolved_policy;
mod vacuous_policy;

pub use dead_service::DeadService;
pub use empty_plan_space::EmptyPlanSpace;
pub use plan_contention::PlanContention;
pub use policy_subsumption::PolicySubsumption;
pub use unbalanced_framing::UnbalancedFraming;
pub use unreachable_event::UnreachableEvent;
pub use unresolved_policy::UnresolvedPolicy;
pub use vacuous_policy::VacuousPolicy;

/// One lint pass: a self-contained analysis emitting diagnostics of a
/// single code.
pub trait Pass {
    /// The code this pass emits.
    fn code(&self) -> Code;

    /// The pass name (kebab case, same as the code's).
    fn name(&self) -> &'static str {
        self.code().name()
    }

    /// One sentence on what the pass looks for.
    fn description(&self) -> &'static str;

    /// Runs the pass over the precomputed context.
    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;
}

/// Every pass, in diagnostic-code order.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(UnreachableEvent),
        Box::new(VacuousPolicy),
        Box::new(PolicySubsumption),
        Box::new(UnbalancedFraming),
        Box::new(DeadService),
        Box::new(PlanContention),
        Box::new(EmptyPlanSpace),
        Box::new(UnresolvedPolicy),
    ]
}
