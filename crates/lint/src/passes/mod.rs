//! The lint passes, one module per diagnostic code, behind the common
//! [`Pass`] trait.

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};

mod capacity_deadlock_cycle;
mod dead_service;
mod empty_plan_space;
mod plan_contention;
mod policy_subsumption;
mod single_point_of_failure;
mod unbalanced_framing;
mod unreachable_event;
mod unresolved_policy;
mod vacuous_policy;

pub use capacity_deadlock_cycle::CapacityDeadlockCycle;
pub use dead_service::DeadService;
pub use empty_plan_space::EmptyPlanSpace;
pub use plan_contention::PlanContention;
pub use policy_subsumption::PolicySubsumption;
pub use single_point_of_failure::SinglePointOfFailure;
pub use unbalanced_framing::UnbalancedFraming;
pub use unreachable_event::UnreachableEvent;
pub use unresolved_policy::UnresolvedPolicy;
pub use vacuous_policy::VacuousPolicy;

/// One kind of declaration a pass reads. The incremental engine
/// fingerprints each kind over the live state and re-runs a pass only
/// when a kind it depends on changed (see
/// [`crate::engine::LintEngine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dep {
    /// Client behaviours (names and histories).
    Clients,
    /// Published service behaviours.
    Services,
    /// Service capacity annotations.
    Capacities,
    /// Policy definitions.
    Policies,
    /// Quantitative budgets.
    Budgets,
}

/// One lint pass: a self-contained analysis emitting diagnostics of a
/// single code.
pub trait Pass {
    /// The code this pass emits.
    fn code(&self) -> Code;

    /// The pass name (kebab case, same as the code's).
    fn name(&self) -> &'static str {
        self.code().name()
    }

    /// One sentence on what the pass looks for.
    fn description(&self) -> &'static str;

    /// The kinds of declaration the pass's verdict can depend on. The
    /// incremental engine reuses the pass's previous diagnostics
    /// verbatim when none of these changed, so omitting a kind that the
    /// pass actually reads is a soundness bug (caught by the
    /// incremental-equivalence property suite).
    fn deps(&self) -> &'static [Dep];

    /// Runs the pass over the precomputed context.
    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;
}

/// Every pass, in diagnostic-code order.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(UnreachableEvent),
        Box::new(VacuousPolicy),
        Box::new(PolicySubsumption),
        Box::new(UnbalancedFraming),
        Box::new(DeadService),
        Box::new(PlanContention),
        Box::new(EmptyPlanSpace),
        Box::new(UnresolvedPolicy),
        Box::new(CapacityDeadlockCycle),
        Box::new(SinglePointOfFailure),
    ]
}
