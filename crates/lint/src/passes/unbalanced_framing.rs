//! `SUFS004` — `Φ`-opens that some path never closes.
//!
//! Parsed scenarios are well-formed, so framings are *syntactically*
//! balanced; what can still go wrong is behavioural: a loop wholly
//! inside a framed body (or inside a policy-bearing request) lets a run
//! keep the activation open forever, so the policy stays armed and the
//! close is never reached on that path. The pass reuses the `hexpr::wf`
//! residual checks for expressions assembled programmatically (where a
//! dangling `close`/`⌟φ` can appear syntactically) and detects the
//! behavioural case on the stand-alone LTS: a cycle reachable from the
//! open without traversing the matching close.

use sufs_core::scenario::SrcPos;
use sufs_hexpr::{wf, Hist, HistLts, Label};

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `unbalanced-framing` pass.
pub struct UnbalancedFraming;

impl Pass for UnbalancedFraming {
    fn code(&self) -> Code {
        Code::UnbalancedFraming
    }

    fn description(&self) -> &'static str {
        "framings or policy-bearing requests whose close is unreachable on some path"
    }

    fn deps(&self) -> &'static [Dep] {
        // A purely behavioural check on each component's stand-alone
        // LTS.
        &[Dep::Clients, Dep::Services]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for c in &ctx.clients {
            check_component(
                &mut out,
                format!("client {}", c.name),
                ctx.client_pos(&c.name),
                &c.hist,
                &c.lts,
            );
        }
        for (loc, s) in &ctx.services {
            let service = ctx
                .repository()
                .get(loc)
                .expect("analysed services are published");
            check_component(
                &mut out,
                format!("service {loc}"),
                ctx.service_pos(loc),
                service,
                &s.lts,
            );
        }
        out
    }
}

fn check_component(
    out: &mut Vec<Diagnostic>,
    subject: String,
    pos: SrcPos,
    hist: &Hist,
    lts: &HistLts,
) {
    // Syntactic residuals (unreachable from parsed scenarios, which are
    // wf-checked; guards library callers handing us raw expressions).
    for e in wf::check_all(hist) {
        match e {
            wf::WfError::ResidualClose(r) => out.push(Diagnostic::new(
                Code::UnbalancedFraming,
                pos,
                subject.clone(),
                format!("a pending close_{r} residual appears without its open"),
            )),
            wf::WfError::ResidualFrameClose => out.push(Diagnostic::new(
                Code::UnbalancedFraming,
                pos,
                subject.clone(),
                "a pending ⌟φ residual appears without its opening frame".to_string(),
            )),
            _ => {}
        }
    }

    // Behavioural: an activation the run can keep open forever.
    let mut reported: Vec<Label> = Vec::new();
    for (src, label, tgt) in lts.iter_edges() {
        let closes: Box<dyn Fn(&Label) -> bool> = match label {
            Label::FrameOpen(p) => {
                let p = p.clone();
                Box::new(move |l: &Label| l == &Label::FrameClose(p.clone()))
            }
            Label::Open(r, Some(_)) => {
                let r = *r;
                Box::new(move |l: &Label| matches!(l, Label::Close(r2, _) if *r2 == r))
            }
            _ => continue,
        };
        if reported.contains(label) {
            continue;
        }
        let within = lts.reachable_via(tgt, |l| !closes(l));
        if lts.cycle_within(&within, |l| !closes(l)).is_none() {
            continue;
        }
        reported.push(label.clone());
        let what = match label {
            Label::FrameOpen(p) => format!("framing {p}⟦…⟧"),
            Label::Open(r, Some(p)) => format!("request {r} (policy {p})"),
            _ => unreachable!(),
        };
        let witness = lts
            .shortest_path_to_edge(lts.initial(), |s2, l2, t2| {
                s2 == src && l2 == label && t2 == tgt
            })
            .map(|path| path.iter().map(|l| l.to_string()).collect::<Vec<_>>());
        let mut d = Diagnostic::new(
            Code::UnbalancedFraming,
            pos,
            subject.clone(),
            format!(
                "{what} can stay open forever: a loop inside the body never reaches the \
                 matching close on some path"
            ),
        )
        .with_note(
            "the policy stays active along that loop; every event fired inside it is \
             checked against the policy indefinitely"
                .to_string(),
        );
        if let Some(witness) = witness {
            d = d.with_witness(witness);
        }
        out.push(d);
    }
}
