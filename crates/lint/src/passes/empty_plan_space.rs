//! `SUFS007` — clients with no valid plan at all.
//!
//! The paper's whole programme is static synthesis of valid plans; a
//! client whose plan space is empty cannot be run safely under any
//! binding, so this is an error. The note reports the last violation of
//! each candidate (the reason the verifier finally rejected it), which
//! is where scenario authors look first.

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// How many rejected candidates the note spells out.
const MAX_LISTED: usize = 4;

/// The `empty-plan-space` pass.
pub struct EmptyPlanSpace;

impl Pass for EmptyPlanSpace {
    fn code(&self) -> Code {
        Code::EmptyPlanSpace
    }

    fn description(&self) -> &'static str {
        "clients for which no valid plan exists"
    }

    fn deps(&self) -> &'static [Dep] {
        // Plan verdicts (and their counterexample traces) depend on
        // behaviours, policies AND capacities: a plan binding two
        // overlapping requests to a bounded service blocks on the slot.
        &[Dep::Clients, Dep::Services, Dep::Capacities, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for c in &ctx.clients {
            if !c.verified || c.report.has_valid_plan() {
                continue;
            }
            let pos = ctx.client_pos(&c.name);
            let subject = format!("client {}", c.name);
            if c.report.is_empty() {
                out.push(
                    Diagnostic::new(
                        Code::EmptyPlanSpace,
                        pos,
                        subject,
                        "no candidate plan exists: the repository cannot bind the client's \
                         requests"
                            .to_string(),
                    )
                    .with_note("publish at least one service per open request"),
                );
                continue;
            }
            let mut reasons = Vec::new();
            for v in c.report.verdicts().iter().take(MAX_LISTED) {
                let last = v
                    .violations
                    .last()
                    .map(|viol| viol.to_string())
                    .unwrap_or_else(|| "unknown".to_string());
                reasons.push(format!("{}: {last}", v.plan));
            }
            if c.report.len() > MAX_LISTED {
                reasons.push(format!("… and {} more", c.report.len() - MAX_LISTED));
            }
            // The witness is the failed synthesis itself: every
            // candidate the verifier walked, with its rejection.
            let witness: Vec<String> = reasons.iter().map(|r| format!("✗ {r}")).collect();
            out.push(
                Diagnostic::new(
                    Code::EmptyPlanSpace,
                    pos,
                    subject,
                    format!(
                        "no valid plan among the {} candidate(s): every binding violates \
                         security or progress",
                        c.report.len()
                    ),
                )
                .with_note(reasons.join("; "))
                .with_witness(witness),
            );
        }
        out
    }
}
