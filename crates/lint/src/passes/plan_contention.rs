//! `SUFS006` — clients statically racing for a bounded service.
//!
//! A service published with `cap n` serves at most `n` concurrent
//! sessions. If more than `n` clients have *only* valid plans that go
//! through it, every joint execution must contend for the capacity:
//! some client can be locked out at run time even though each client
//! verified individually. This is the cross-client race that PR 1's
//! fault injection observes dynamically; here it is caught statically.

use sufs_hexpr::Label;

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `plan-contention` pass.
pub struct PlanContention;

impl Pass for PlanContention {
    fn code(&self) -> Code {
        Code::PlanContention
    }

    fn description(&self) -> &'static str {
        "bounded-capacity services that more clients are forced onto than the capacity admits"
    }

    fn deps(&self) -> &'static [Dep] {
        // Forced-plan sets depend on valid plans (behaviours +
        // policies); the threshold is the capacity annotation.
        &[Dep::Clients, Dep::Services, Dep::Capacities, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for loc in ctx.services.keys() {
            let Some(Some(cap)) = ctx.repository().capacity(loc) else {
                continue; // unbounded (or unknown, which cannot happen)
            };
            // Clients whose every valid plan selects this service.
            let forced: Vec<&crate::context::ClientAnalysis> = ctx
                .clients
                .iter()
                .filter(|c| {
                    c.verified
                        && c.report.has_valid_plan()
                        && c.report
                            .valid_plans()
                            .all(|p| p.iter().any(|(_, l)| l == loc))
                })
                .collect();
            if forced.len() <= cap {
                continue;
            }
            let names: Vec<&str> = forced.iter().map(|c| c.name.as_str()).collect();
            let mut d = Diagnostic::new(
                Code::PlanContention,
                ctx.service_pos(loc),
                format!("service {loc}"),
                format!(
                    "{} clients ({}) can only be served through this service, but its \
                     capacity is {cap}",
                    forced.len(),
                    names.join(", ")
                ),
            )
            .with_note(
                "every valid plan of each of these clients selects it; when they run \
                 concurrently, someone waits for a slot or starves"
                    .to_string(),
            );
            // Witness: how the first forced client reaches its demand.
            if let Some(c) = forced.first() {
                let plan = c.report.valid_plans().next().expect("has_valid_plan");
                let witness = c.lts.shortest_path_to_edge(
                    c.lts.initial(),
                    |_, l, _| matches!(l, Label::Open(r, _) if plan.service_for(*r) == Some(loc)),
                );
                if let Some(path) = witness {
                    d = d.with_witness(path.iter().map(|l| l.to_string()).collect());
                }
            }
            out.push(d);
        }
        out
    }
}
