//! `SUFS008` — policy references that do not resolve.
//!
//! A request annotation or framing mentioning a policy with no `policy`
//! definition (or the wrong arity) can never be verified: `sufs verify`
//! would fail outright. The lint reports every unresolved reference
//! with its origin, and the engine skips plan verification while any
//! exist (the structural passes still run).

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `unresolved-policy` pass.
pub struct UnresolvedPolicy;

impl Pass for UnresolvedPolicy {
    fn code(&self) -> Code {
        Code::UnresolvedPolicy
    }

    fn description(&self) -> &'static str {
        "policy references with no matching definition"
    }

    fn deps(&self) -> &'static [Dep] {
        // References live in behaviours; resolution is against the
        // registry.
        &[Dep::Clients, Dep::Services, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for origin in &ctx.policy_refs {
            let Err(e) = ctx.registry().instantiate(&origin.reference) else {
                continue;
            };
            out.push(
                Diagnostic::new(
                    Code::UnresolvedPolicy,
                    origin.pos,
                    format!("policy {}", origin.reference),
                    format!("the reference does not resolve: {e}"),
                )
                .with_note(format!(
                    "mentioned in {}; plan verification is skipped while unresolved \
                     references remain",
                    origin.subject
                )),
            );
        }
        out
    }
}
