//! `SUFS010` — services whose crash leaves a client with no fallback.
//!
//! The PR-1 fault machinery recovers a client by failing over to the
//! next plan in its verifier-derived fallback chain
//! (`sufs_core::recovery::fallback_chain`) that avoids the crashed
//! service. Plan verdicts depend only on the services a plan selects,
//! so the chain surviving a crash of `L` is exactly the valid plans not
//! routing through `L` — and a service every valid plan selects is a
//! single point of failure: its crash empties the client's recovery
//! chain. The pass intersects the location sets of each client's valid
//! plans (no re-verification needed) and reports each (client, service)
//! pair, with the failed fallback search as witness: the surviving
//! candidates the verifier already rejected. Info severity — small
//! scenarios keep single providers on purpose, and the paper's own
//! repository in §2 has one broker.

use std::collections::BTreeSet;

use sufs_hexpr::Location;

use crate::context::{ClientAnalysis, LintContext};
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// How many rejected survivors the witness spells out.
const MAX_LISTED: usize = 4;

/// The `single-point-of-failure` pass.
pub struct SinglePointOfFailure;

impl Pass for SinglePointOfFailure {
    fn code(&self) -> Code {
        Code::SinglePointOfFailure
    }

    fn description(&self) -> &'static str {
        "services selected by every valid plan of some client: their crash empties its recovery chain"
    }

    fn deps(&self) -> &'static [Dep] {
        // Plan verdicts (and their counterexample traces) depend on
        // behaviours, policies AND capacities: a plan binding two
        // overlapping requests to a bounded service blocks on the slot.
        &[Dep::Clients, Dep::Services, Dep::Capacities, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for c in &ctx.clients {
            if !c.verified {
                continue;
            }
            let mut valid = c.report.valid_plans();
            let Some(first) = valid.next() else {
                continue; // SUFS007 owns the no-plan case
            };
            // Locations every valid plan routes through.
            let mut shared: BTreeSet<&Location> = first.iter().map(|(_, l)| l).collect();
            for plan in valid {
                let locs: BTreeSet<&Location> = plan.iter().map(|(_, l)| l).collect();
                shared.retain(|l| locs.contains(l));
                if shared.is_empty() {
                    break;
                }
            }
            for loc in shared {
                out.push(diagnose(ctx, c, loc));
            }
        }
        out
    }
}

fn diagnose(ctx: &LintContext<'_>, c: &ClientAnalysis, loc: &Location) -> Diagnostic {
    let total = c.report.valid_plans().count();
    // The failed fallback search: every candidate avoiding `loc` was
    // already rejected by the verifier — the recovery chain after a
    // crash of `loc` is empty.
    let survivors: Vec<String> = c
        .report
        .verdicts()
        .iter()
        .filter(|v| !v.is_valid() && !v.plan.iter().any(|(_, l)| l == loc))
        .map(|v| {
            let why = v
                .violations
                .last()
                .map(|viol| viol.to_string())
                .unwrap_or_else(|| "rejected".to_string());
            format!("✗ {}: {why}", v.plan)
        })
        .collect();
    let mut witness = vec![format!(
        "crash {loc}: {} candidate(s) avoid it",
        survivors.len()
    )];
    witness.extend(survivors.iter().take(MAX_LISTED).cloned());
    if survivors.len() > MAX_LISTED {
        witness.push(format!("… and {} more", survivors.len() - MAX_LISTED));
    }
    witness.push("recovery chain is empty: no surviving valid plan".to_string());
    Diagnostic::new(
        Code::SinglePointOfFailure,
        ctx.client_pos(&c.name),
        format!("client {}", c.name),
        format!(
            "service {loc} is a single point of failure: every valid plan ({total} of them) \
             routes through it"
        ),
    )
    .with_note(format!(
        "a crash of {loc} leaves the fallback chain empty; failover (PR 1) would abort the \
         client instead of recovering it"
    ))
    .with_witness(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_core::recovery::fallback_chain;
    use sufs_core::scenario::parse_scenario;

    #[test]
    fn sole_provider_is_a_spof_and_redundancy_clears_it() {
        let sc = parse_scenario(
            "client c { open 1 { int[q -> eps]; ext[a -> eps] } }
             service only { ext[q -> int[a -> eps]] }
             service broken { ext[q -> int[b -> eps]] }",
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        let diags = SinglePointOfFailure.run(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("service only"));
        let witness = diags[0].witness.as_ref().expect("fallback-search witness");
        assert!(witness.iter().any(|l| l.contains("broken")));
        assert!(witness.last().unwrap().contains("empty"));

        let sc2 = parse_scenario(
            "client c { open 1 { int[q -> eps]; ext[a -> eps] } }
             service only { ext[q -> int[a -> eps]] }
             service spare { ext[q -> int[a -> eps]] }",
        )
        .unwrap();
        let ctx2 = LintContext::build(&sc2).unwrap();
        assert!(SinglePointOfFailure.run(&ctx2).is_empty());
    }

    #[test]
    fn agrees_with_pr1_fallback_chains() {
        // The pass's claim is exactly "retract the service and the
        // recovery chain is empty": check it against the real PR-1
        // machinery for every (client, service) pair.
        let sc = parse_scenario(
            "client c { open 1 { int[q -> eps]; ext[a -> eps] } }
             client d { open 1 { int[q -> eps]; ext[a -> eps] } }
             service only { ext[q -> int[a -> eps]] }
             service spare { ext[q -> int[b -> eps]] }",
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        let diags = SinglePointOfFailure.run(&ctx);
        for (name, hist) in &sc.clients {
            for loc in sc.repository.locations() {
                let flagged = diags.iter().any(|dg| {
                    dg.subject == format!("client {name}")
                        && dg.message.contains(&format!("service {loc}"))
                });
                let mut crashed = sc.repository.clone();
                crashed.retract(loc);
                let chain = fallback_chain(hist, &crashed, &sc.registry).unwrap();
                let had_plans = !fallback_chain(hist, &sc.repository, &sc.registry)
                    .unwrap()
                    .is_empty();
                assert_eq!(
                    flagged,
                    had_plans && chain.is_empty(),
                    "client {name}, service {loc}"
                );
            }
        }
        assert!(!diags.is_empty());
    }
}
