//! `SUFS002` — policies that cannot forbid anything.
//!
//! A policy is vacuous for a scenario when its forbidden-trace language
//! is empty over the scenario's ground event alphabet: no sequence of
//! events the system can fire ever drives the usage automaton into an
//! offending state, so validity checking against it can never fail and
//! the policy constrains nothing. Policies that are defined but never
//! instantiated anywhere are reported too. Budget-only policy names are
//! exempt: their registered automaton is deliberately trivial (the
//! quantitative bound does the constraining).

use std::collections::BTreeSet;

use sufs_policy::automata_bridge::to_dfa;
use sufs_policy::UsageAutomaton;

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `vacuous-policy` pass.
pub struct VacuousPolicy;

impl Pass for VacuousPolicy {
    fn code(&self) -> Code {
        Code::VacuousPolicy
    }

    fn description(&self) -> &'static str {
        "policies whose offending states are unreachable over the scenario's event alphabet"
    }

    fn deps(&self) -> &'static [Dep] {
        // The alphabet comes from client and service behaviours, the
        // automata from the registry, and budget names are exempt.
        &[Dep::Clients, Dep::Services, Dep::Policies, Dep::Budgets]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let budget_names: BTreeSet<&str> = ctx.budgets().iter().map(|b| b.policy.name()).collect();

        // Instantiated references with an empty forbidden language.
        for origin in &ctx.policy_refs {
            let name = origin.reference.name();
            if budget_names.contains(name) {
                continue;
            }
            let Ok(instance) = ctx.registry().instantiate(&origin.reference) else {
                continue; // SUFS008 reports unresolved references.
            };
            if !to_dfa(&instance, &ctx.alphabet).language_is_empty() {
                continue;
            }
            let pos = ctx.policy_pos(name, Some(origin.pos));
            let mut d = Diagnostic::new(
                Code::VacuousPolicy,
                pos,
                format!("policy {}", origin.reference),
                format!(
                    "the policy is vacuous: no trace over the scenario's {} event(s) ever \
                     reaches an offending state",
                    ctx.alphabet.len()
                ),
            )
            .with_note(format!(
                "instantiated in {}; validity checking against it can never fail, so it \
                 constrains nothing",
                origin.subject
            ));
            if let Some(witness) = structural_witness(ctx.registry().get(name)) {
                d = d.with_witness(witness);
            } else {
                d = d.with_note(format!(
                    "instantiated in {}; the automaton has no graph path to an offending state \
                     at all",
                    origin.subject
                ));
            }
            out.push(d);
        }

        // Definitions nothing ever instantiates.
        for automaton in ctx.registry().iter() {
            let name = automaton.name();
            if budget_names.contains(name) {
                continue;
            }
            if ctx.policy_refs.iter().any(|o| o.reference.name() == name) {
                continue;
            }
            let pos = ctx.policy_pos(name, None);
            let mut d = Diagnostic::new(
                Code::VacuousPolicy,
                pos,
                format!("policy {name}"),
                "the policy is defined but never instantiated by any client or service".to_string(),
            )
            .with_note("no request annotation or framing mentions it, so it is never enforced");
            if let Some(witness) = structural_witness(Some(automaton)) {
                d = d.with_witness(witness);
            }
            out.push(d);
        }
        out
    }
}

/// Renders the automaton's shortest structural path to an offending
/// state (the trace shape a forbidden history would need).
fn structural_witness(automaton: Option<&UsageAutomaton>) -> Option<Vec<String>> {
    let path = automaton?.structural_offending_path()?;
    if path.is_empty() {
        return Some(vec!["(start state is already offending)".to_string()]);
    }
    Some(
        path.iter()
            .map(|t| {
                let event = t
                    .event
                    .as_ref()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "*".to_string());
                match &t.guard {
                    sufs_policy::Guard::True => event,
                    g => format!("{event} if {g}"),
                }
            })
            .collect(),
    )
}
