//! `SUFS009` — wait-for cycles among clients contending for bounded
//! services.
//!
//! Each client's plan is verified in isolation (§5 considers "one of
//! them at a time"), but under the bounded-availability extension two
//! individually valid plans can strand each other: A holds the last
//! slot of `s₁` while waiting for `s₂`, B holds `s₂` while waiting for
//! `s₁`. The pass builds the network of every verified client running
//! its first valid plan — the deterministic binding `sufs run` would
//! pick — and explores the joint symbolic product under the shared
//! capacities via `sufs_core::multi::find_joint_deadlock`. A reachable
//! global deadlock is reported once, with the deadlocking schedule
//! prefix as witness. A joint-product bound hit makes the answer
//! unknown, so the pass stays silent then (as does any client without a
//! valid plan — `SUFS007` owns that).

use std::collections::BTreeSet;

use sufs_core::multi::{find_joint_deadlock, ClientSpec};
use sufs_hexpr::Location;

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `capacity-deadlock-cycle` pass.
pub struct CapacityDeadlockCycle;

impl Pass for CapacityDeadlockCycle {
    fn code(&self) -> Code {
        Code::CapacityDeadlockCycle
    }

    fn description(&self) -> &'static str {
        "client networks where contention for bounded services reaches a global deadlock"
    }

    fn deps(&self) -> &'static [Dep] {
        // The network is built from valid plans (behaviours +
        // policies); the deadlock itself hinges on the capacities.
        &[Dep::Clients, Dep::Services, Dep::Capacities, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        // The network under analysis: every verified client running its
        // first valid plan.
        let mut specs: Vec<ClientSpec> = Vec::new();
        for c in &ctx.clients {
            if !c.verified {
                return Vec::new(); // no notion of a valid network
            }
            if let Some(plan) = c.report.valid_plans().next() {
                specs.push(ClientSpec::new(
                    c.name.as_str(),
                    c.hist.clone(),
                    plan.clone(),
                ));
            }
        }
        // Deadlock needs someone to hold a bounded slot; with no
        // bounded service in any chosen plan the joint product cannot
        // block, so skip the (expensive) exploration outright.
        let bounded: BTreeSet<&Location> = specs
            .iter()
            .flat_map(|s| s.plan.iter().map(|(_, l)| l))
            .filter(|l| matches!(ctx.repository().capacity(l), Some(Some(_))))
            .collect();
        if specs.is_empty() || bounded.is_empty() {
            return Vec::new();
        }

        let deadlock = match find_joint_deadlock(&specs, ctx.repository(), ctx.bound) {
            Ok(Some(d)) => d,
            // No deadlock found within the bound: a clean verdict.
            Ok(None) => return Vec::new(),
            // The joint product outgrew the bound. Unknown is not a
            // deadlock finding, but staying silent would let a bound
            // blow-up masquerade as "no deadlock" — say so explicitly.
            Err(_) => {
                let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                let caps: Vec<String> = bounded
                    .iter()
                    .map(|l| match ctx.repository().capacity(l) {
                        Some(Some(n)) => format!("{l} (cap {n})"),
                        _ => l.to_string(),
                    })
                    .collect();
                return vec![Diagnostic::new(
                    Code::CapacityDeadlockCycle,
                    ctx.client_pos(specs[0].name.as_str()),
                    format!("clients {}", names.join(", ")),
                    format!(
                        "analysis truncated: the joint product of {} exceeded the exploration \
                         bound of {} states",
                        names.join(", "),
                        ctx.bound
                    ),
                )
                .with_note(format!(
                    "contention for {} could not be explored to completion, so the deadlock \
                     verdict is unknown — rerun with a larger state bound to decide it",
                    caps.join(", ")
                ))];
            }
        };

        let stuck: Vec<&str> = deadlock
            .stuck_components
            .iter()
            .map(|&i| specs[i].name.as_str())
            .collect();
        let Some(&first_stuck) = deadlock.stuck_components.first() else {
            return Vec::new(); // all terminated is not a deadlock
        };
        let mut witness: Vec<String> = deadlock
            .path
            .iter()
            .map(|(i, label)| format!("{} ▸ {label}", specs[*i].name))
            .collect();
        witness.push(format!(
            "deadlock: {} blocked, nobody can move",
            stuck.join(", ")
        ));
        let caps: Vec<String> = bounded
            .iter()
            .map(|l| match ctx.repository().capacity(l) {
                Some(Some(n)) => format!("{l} (cap {n})"),
                _ => l.to_string(),
            })
            .collect();
        let first = &specs[first_stuck];
        vec![Diagnostic::new(
            Code::CapacityDeadlockCycle,
            ctx.client_pos(first.name.as_str()),
            format!("clients {}", stuck.join(", ")),
            format!(
                "a schedule deadlocks the whole network: {} hold and wait for each other's \
                 bounded services in a cycle",
                stuck.join(", ")
            ),
        )
        .with_note(format!(
            "each client's plan is individually valid, but contention for {} admits an \
             interleaving where every participant waits forever; the witness is a shortest \
             deadlocking schedule",
            caps.join(", ")
        ))
        .with_witness(witness)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use sufs_core::scenario::parse_scenario;

    /// Two cap-1 locks acquired in opposite orders: the textbook
    /// circular wait. Distinct events force the circular binding.
    const CIRCULAR: &str = "
        client alice { open 1 { int[acq_a -> eps]; open 2 { int[acq_b -> eps] } } }
        client bob { open 3 { int[acq_b -> eps]; open 4 { int[acq_a -> eps] } } }
        service lock_a cap 1 { ext[acq_a -> eps] }
        service lock_b cap 1 { ext[acq_b -> eps] }
    ";

    #[test]
    fn circular_wait_is_reported_with_schedule_witness() {
        let sc = parse_scenario(CIRCULAR).unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        let diags = CapacityDeadlockCycle.run(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.severity(), Severity::Warning);
        assert!(d.subject.contains("alice") && d.subject.contains("bob"));
        let witness = d.witness.as_ref().expect("schedule witness");
        assert!(witness.last().unwrap().contains("deadlock"));
        assert!(witness.len() > 1, "needs a schedule prefix: {witness:?}");
    }

    #[test]
    fn bound_blow_up_reports_truncation_instead_of_silence() {
        let sc = parse_scenario(CIRCULAR).unwrap();
        // A bound wide enough for each client's individual product but
        // too tight for the joint exploration: the pass must say the
        // analysis was truncated, not stay silent.
        let bound = {
            // Find the smallest power of two that still verifies every
            // client individually, then use it as the joint bound.
            let mut b = 4usize;
            loop {
                if let Ok(ctx) = LintContext::build_with(&sc, b, 1024) {
                    if ctx.clients.iter().all(|c| c.verified) {
                        break b;
                    }
                }
                b *= 2;
                assert!(b <= 1 << 20, "no verifying bound found");
            }
        };
        let ctx = LintContext::build_with(&sc, bound, 1024).unwrap();
        let diags = CapacityDeadlockCycle.run(&ctx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, Code::CapacityDeadlockCycle);
        assert_eq!(d.severity(), Severity::Warning);
        assert!(d.message.contains("analysis truncated"), "{}", d.message);
        let note = d.note.as_ref().expect("truncation note");
        assert!(note.contains("unknown"), "{note}");
        assert!(d.witness.is_none(), "no schedule witness when truncated");
    }

    #[test]
    fn consistent_lock_order_is_silent() {
        // Same locks, both clients acquire a then b: no cycle.
        let sc = parse_scenario(
            "
            client alice { open 1 { int[acq_a -> eps]; open 2 { int[acq_b -> eps] } } }
            client bob { open 3 { int[acq_a -> eps]; open 4 { int[acq_b -> eps] } } }
            service lock_a cap 1 { ext[acq_a -> eps] }
            service lock_b cap 1 { ext[acq_b -> eps] }
            ",
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        assert!(CapacityDeadlockCycle.run(&ctx).is_empty());
    }

    #[test]
    fn unbounded_services_are_skipped() {
        let sc = parse_scenario(
            "
            client alice { open 1 { int[acq_a -> eps]; open 2 { int[acq_b -> eps] } } }
            client bob { open 3 { int[acq_b -> eps]; open 4 { int[acq_a -> eps] } } }
            service lock_a { ext[acq_a -> eps] }
            service lock_b { ext[acq_b -> eps] }
            ",
        )
        .unwrap();
        let ctx = LintContext::build(&sc).unwrap();
        assert!(CapacityDeadlockCycle.run(&ctx).is_empty());
    }
}
