//! `SUFS001` — events that no composed execution can fire.
//!
//! Well-formedness guarantees every syntactic event is reachable in a
//! component's *stand-alone* LTS, so unreachability only arises from
//! composition: the partner the plan supplies never drives the branch
//! that fires the event. The pass compares each component's syntactic
//! alphabet against the events actually fired by some composed
//! execution under some candidate plan (for services: some candidate
//! plan that selects them) and reports the difference, with the
//! stand-alone shortest path to the event as witness.

use std::collections::BTreeSet;

use sufs_hexpr::{Event, HistLts, Label};

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `unreachable-event` pass.
pub struct UnreachableEvent;

impl Pass for UnreachableEvent {
    fn code(&self) -> Code {
        Code::UnreachableEvent
    }

    fn description(&self) -> &'static str {
        "events in a client or service history that no composed execution under any candidate plan reaches"
    }

    fn deps(&self) -> &'static [Dep] {
        // Reachability is over compositions of clients with selected
        // services; policies only gate whether verification runs, not
        // what is reachable.
        &[Dep::Clients, Dep::Services]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for c in &ctx.clients {
            // Without a candidate plan nothing composed can run at all;
            // SUFS007 reports that more precisely. A bound hit makes the
            // reachability set incomplete, so stay silent then too.
            if c.plans.is_empty() || !c.explored_all {
                continue;
            }
            for e in c.hist.events().difference(&c.reachable_events) {
                out.push(diagnose(
                    ctx,
                    format!("client {}", c.name),
                    ctx.client_pos(&c.name),
                    e,
                    &c.lts,
                    c.plans.len(),
                ));
            }
        }
        for (loc, s) in &ctx.services {
            if !s.selected || !s.explored_all {
                continue;
            }
            let service = ctx
                .repository()
                .get(loc)
                .expect("analysed services are published");
            let events: BTreeSet<Event> = service.events();
            for e in events.difference(&s.reachable_events) {
                out.push(diagnose(
                    ctx,
                    format!("service {loc}"),
                    ctx.service_pos(loc),
                    e,
                    &s.lts,
                    0,
                ));
            }
        }
        out
    }
}

fn diagnose(
    _ctx: &LintContext<'_>,
    subject: String,
    pos: sufs_core::scenario::SrcPos,
    event: &Event,
    lts: &HistLts,
    plan_count: usize,
) -> Diagnostic {
    let witness = lts
        .shortest_path_to_edge(lts.initial(), |_, l, _| l == &Label::Ev(event.clone()))
        .map(|path| path.iter().map(|l| l.to_string()).collect::<Vec<_>>());
    let message = format!("event {event} can never fire: no composed execution reaches it");
    let note = if plan_count > 0 {
        format!(
            "checked all {plan_count} candidate plan(s); the branch guarding {event} is never \
             driven by any selectable partner"
        )
    } else {
        "no candidate plan that selects this service ever drives the branch".to_string()
    };
    let mut d = Diagnostic::new(Code::UnreachableEvent, pos, subject, message).with_note(note);
    if let Some(witness) = witness {
        d = d.with_witness(witness);
    }
    d
}
