//! `SUFS005` — services no valid plan ever selects.
//!
//! A published service that appears in no valid plan of any client is
//! dead weight: the planner can never pick it, so publishing it serves
//! nobody. Often intentional (tutorial scenarios publish rejected
//! alternatives on purpose, and the paper's own repository in §2 keeps
//! non-compliant hotels around), hence Info severity.

use std::collections::BTreeSet;

use sufs_hexpr::Location;

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::Pass;

/// The `dead-service` pass.
pub struct DeadService;

impl Pass for DeadService {
    fn code(&self) -> Code {
        Code::DeadService
    }

    fn description(&self) -> &'static str {
        "repository services that no valid plan of any client selects"
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        // Without clients (or without verification) there is no notion
        // of a valid plan to measure against.
        if ctx.clients.is_empty() || ctx.clients.iter().any(|c| !c.verified) {
            return Vec::new();
        }
        let mut valid_locs: BTreeSet<&Location> = BTreeSet::new();
        let mut candidate_locs: BTreeSet<&Location> = BTreeSet::new();
        for c in &ctx.clients {
            for plan in c.report.valid_plans() {
                valid_locs.extend(plan.iter().map(|(_, l)| l));
            }
            for plan in &c.plans {
                candidate_locs.extend(plan.iter().map(|(_, l)| l));
            }
        }
        let mut out = Vec::new();
        for loc in ctx.services.keys() {
            if valid_locs.contains(loc) {
                continue;
            }
            let note = if candidate_locs.contains(loc) {
                "it appears in candidate plans, but every one of them is rejected; \
                 `sufs verify` shows the per-plan violations"
            } else {
                "no client request can even be bound to it"
            };
            out.push(
                Diagnostic::new(
                    Code::DeadService,
                    ctx.service_pos(loc),
                    format!("service {loc}"),
                    "no valid plan of any client selects this service".to_string(),
                )
                .with_note(note),
            );
        }
        out
    }
}
