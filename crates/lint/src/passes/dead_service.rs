//! `SUFS005` — services no valid plan ever selects.
//!
//! A published service that appears in no valid plan of any client is
//! dead weight: the planner can never pick it, so publishing it serves
//! nobody. Often intentional (tutorial scenarios publish rejected
//! alternatives on purpose, and the paper's own repository in §2 keeps
//! non-compliant hotels around), hence Info severity.

use std::collections::HashSet;

use sufs_hexpr::Location;

use crate::context::LintContext;
use crate::diag::{Code, Diagnostic};
use crate::passes::{Dep, Pass};

/// The `dead-service` pass.
pub struct DeadService;

impl Pass for DeadService {
    fn code(&self) -> Code {
        Code::DeadService
    }

    fn description(&self) -> &'static str {
        "repository services that no valid plan of any client selects"
    }

    fn deps(&self) -> &'static [Dep] {
        // Plan verdicts (and their counterexample traces) depend on
        // behaviours, policies AND capacities: a plan binding two
        // overlapping requests to a bounded service blocks on the slot.
        &[Dep::Clients, Dep::Services, Dep::Capacities, Dep::Policies]
    }

    fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        // Without clients (or without verification) there is no notion
        // of a valid plan to measure against.
        if ctx.clients.is_empty() || ctx.clients.iter().any(|c| !c.verified) {
            return Vec::new();
        }
        // Hash sets suffice: the emission loop below walks the sorted
        // service map, so diagnostic order never depends on these.
        let mut valid_locs: HashSet<&Location> = HashSet::new();
        let mut candidate_locs: HashSet<&Location> = HashSet::new();
        for c in &ctx.clients {
            for plan in c.report.valid_plans() {
                valid_locs.extend(plan.iter().map(|(_, l)| l));
            }
            for plan in c.plans.iter() {
                candidate_locs.extend(plan.iter().map(|(_, l)| l));
            }
        }
        let mut out = Vec::new();
        for loc in ctx.services.keys() {
            if valid_locs.contains(loc) {
                continue;
            }
            let note = if candidate_locs.contains(loc) {
                "it appears in candidate plans, but every one of them is rejected; \
                 `sufs verify` shows the per-plan violations"
            } else {
                "no client request can even be bound to it"
            };
            out.push(
                Diagnostic::new(
                    Code::DeadService,
                    ctx.service_pos(loc),
                    format!("service {loc}"),
                    "no valid plan of any client selects this service".to_string(),
                )
                .with_note(note),
            );
        }
        out
    }
}
