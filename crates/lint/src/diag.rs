//! Structured diagnostics: codes, severities, locations, notes and
//! witness traces, with plain-text and JSON renderings.

use std::fmt;

use sufs_core::scenario::SrcPos;

/// Every diagnostic code the lint engine can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `SUFS001` — an event no composed execution under any candidate
    /// plan ever fires.
    UnreachableEvent,
    /// `SUFS002` — a policy whose forbidden-trace language is empty over
    /// the scenario's event alphabet: it constrains nothing.
    VacuousPolicy,
    /// `SUFS003` — an instantiated policy whose forbidden language is
    /// properly contained in another instantiation's: redundant.
    PolicySubsumption,
    /// `SUFS004` — a `Φ`-open (framing or policy-bearing request) with a
    /// path that never reaches the matching close.
    UnbalancedFraming,
    /// `SUFS005` — a repository service no valid plan of any client
    /// selects.
    DeadService,
    /// `SUFS006` — more clients are forced onto a bounded-capacity
    /// service than its capacity admits.
    PlanContention,
    /// `SUFS007` — a client with no valid plan at all.
    EmptyPlanSpace,
    /// `SUFS008` — a policy reference that does not resolve against the
    /// scenario's `policy` definitions.
    UnresolvedPolicy,
    /// `SUFS009` — a wait-for cycle among clients contending for
    /// bounded-capacity services: some interleaving strands every
    /// participant.
    CapacityDeadlockCycle,
    /// `SUFS010` — a service whose crash leaves some client with an
    /// empty recovery chain: every valid plan routes through it.
    SinglePointOfFailure,
}

impl Code {
    /// The stable `SUFS0xx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnreachableEvent => "SUFS001",
            Code::VacuousPolicy => "SUFS002",
            Code::PolicySubsumption => "SUFS003",
            Code::UnbalancedFraming => "SUFS004",
            Code::DeadService => "SUFS005",
            Code::PlanContention => "SUFS006",
            Code::EmptyPlanSpace => "SUFS007",
            Code::UnresolvedPolicy => "SUFS008",
            Code::CapacityDeadlockCycle => "SUFS009",
            Code::SinglePointOfFailure => "SUFS010",
        }
    }

    /// The human-readable pass name (kebab case).
    pub fn name(self) -> &'static str {
        match self {
            Code::UnreachableEvent => "unreachable-event",
            Code::VacuousPolicy => "vacuous-policy",
            Code::PolicySubsumption => "policy-subsumption",
            Code::UnbalancedFraming => "unbalanced-framing",
            Code::DeadService => "dead-service",
            Code::PlanContention => "plan-contention",
            Code::EmptyPlanSpace => "empty-plan-space",
            Code::UnresolvedPolicy => "unresolved-policy",
            Code::CapacityDeadlockCycle => "capacity-deadlock-cycle",
            Code::SinglePointOfFailure => "single-point-of-failure",
        }
    }

    /// The fixed severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::EmptyPlanSpace | Code::UnresolvedPolicy => Severity::Error,
            // SUFS010 is informational by design: almost every small
            // scenario has a service all plans route through, and the
            // paper's repositories keep single providers on purpose.
            Code::DeadService | Code::SinglePointOfFailure => Severity::Info,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The scenario is broken: no valid plan, unresolved reference.
    Error,
    /// Very likely a mistake, but the scenario still works.
    Warning,
    /// Worth knowing; often intentional.
    Info,
}

impl Severity {
    /// The lowercase rendering used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The diagnostic code (which fixes the severity).
    pub code: Code,
    /// Where in the scenario source the subject was declared.
    pub pos: SrcPos,
    /// What the finding is about (`client c1`, `service br`,
    /// `policy hotel({1},45,100)`, …).
    pub subject: String,
    /// The finding itself, one sentence.
    pub message: String,
    /// An optional explanatory note.
    pub note: Option<String>,
    /// A witness trace backing the finding, when an automaton analysis
    /// produced one (rendered transition labels).
    pub witness: Option<Vec<String>>,
}

impl Diagnostic {
    /// Builds a bare diagnostic.
    pub fn new(
        code: Code,
        pos: SrcPos,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            pos,
            subject: subject.into(),
            message: message.into(),
            note: None,
            witness: None,
        }
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.note = Some(note.into());
        self
    }

    /// Attaches a witness trace.
    pub fn with_witness(mut self, witness: Vec<String>) -> Diagnostic {
        self.witness = Some(witness);
        self
    }

    /// The severity (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The JSON object for `--json` output.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":\"{}\"", self.code));
        s.push_str(&format!(",\"pass\":\"{}\"", self.code.name()));
        s.push_str(&format!(",\"severity\":\"{}\"", self.severity()));
        s.push_str(&format!(",\"line\":{}", self.pos.line));
        s.push_str(&format!(",\"column\":{}", self.pos.col));
        s.push_str(&format!(",\"subject\":\"{}\"", json_escape(&self.subject)));
        s.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        if let Some(note) = &self.note {
            s.push_str(&format!(",\"note\":\"{}\"", json_escape(note)));
        }
        if let Some(witness) = &self.witness {
            s.push_str(",\"witness\":[");
            for (i, w) in witness.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\"", json_escape(w)));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity(),
            self.code,
            self.subject,
            self.message
        )?;
        write!(f, "\n  --> {}", self.pos)?;
        if let Some(note) = &self.note {
            write!(f, "\n  note: {note}")?;
        }
        if let Some(witness) = &self.witness {
            write!(f, "\n  witness: {}", witness.join(" → "))?;
        }
        Ok(())
    }
}

/// The result of linting one scenario: every finding, in the
/// documented deterministic order — by code, then source position,
/// then subject name, then message.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All diagnostics, in deterministic order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// The number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// The number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == s)
            .count()
    }

    /// Returns `true` if nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The JSON document for `--json` output: `file` is the path the
    /// caller read the scenario from, if any.
    pub fn to_json(&self, file: Option<&str>) -> String {
        let mut s = String::from("{");
        if let Some(file) = file {
            s.push_str(&format!("\"file\":\"{}\",", json_escape(file)));
        }
        s.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str(&format!(
            "],\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}}}}",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        s
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info(s)",
            self.errors(),
            self.warnings(),
            self.infos()
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            Code::UnreachableEvent,
            Code::VacuousPolicy,
            Code::PolicySubsumption,
            Code::UnbalancedFraming,
            Code::DeadService,
            Code::PlanContention,
            Code::EmptyPlanSpace,
            Code::UnresolvedPolicy,
            Code::CapacityDeadlockCycle,
            Code::SinglePointOfFailure,
        ];
        let mut ids: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert_eq!(Code::UnreachableEvent.as_str(), "SUFS001");
        assert_eq!(Code::CapacityDeadlockCycle.as_str(), "SUFS009");
        assert_eq!(Code::SinglePointOfFailure.as_str(), "SUFS010");
        assert_eq!(Code::EmptyPlanSpace.severity(), Severity::Error);
        assert_eq!(Code::DeadService.severity(), Severity::Info);
        assert_eq!(Code::CapacityDeadlockCycle.severity(), Severity::Warning);
        assert_eq!(Code::SinglePointOfFailure.severity(), Severity::Info);
        assert_eq!(Code::VacuousPolicy.severity(), Severity::Warning);
    }

    #[test]
    fn diagnostic_renders_text_and_json() {
        let d = Diagnostic::new(
            Code::UnreachableEvent,
            SrcPos {
                offset: 10,
                line: 3,
                col: 7,
            },
            "client c1",
            "event #x can never fire",
        )
        .with_note("a \"quoted\" note")
        .with_witness(vec!["⌞φ".into(), "a!".into()]);
        let text = d.to_string();
        assert!(text.contains("warning[SUFS001]"));
        assert!(text.contains("--> 3:7"));
        assert!(text.contains("witness: ⌞φ → a!"));
        let json = d.to_json();
        assert!(json.contains("\"code\":\"SUFS001\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"witness\":[\"⌞φ\",\"a!\"]"));
    }

    #[test]
    fn report_counts_and_json() {
        let mk = |code| Diagnostic::new(code, SrcPos::start(), "s", "m");
        let report = LintReport {
            diagnostics: vec![
                mk(Code::EmptyPlanSpace),
                mk(Code::VacuousPolicy),
                mk(Code::DeadService),
            ],
        };
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.infos(), 1);
        assert!(!report.is_clean());
        let json = report.to_json(Some("x.sufs"));
        assert!(json.contains("\"file\":\"x.sufs\""));
        assert!(json.contains("\"errors\":1,\"warnings\":1,\"infos\":1"));
    }
}
