//! Multi-pass static diagnostics over scenarios, policies and plans.
//!
//! The paper decides security and progress *statically* (§5, Theorems
//! 1–2); this crate turns those analyses into rustc-style lints: a set
//! of [`passes`] runs over a parsed [`Scenario`] and emits structured
//! [`Diagnostic`]s with stable `SUFS0xx` codes, a severity, the source
//! location of the subject, an explanatory note, and — where an
//! automaton analysis backs the finding — a witness trace.
//!
//! | code | pass | severity | finding |
//! |------|------|----------|---------|
//! | `SUFS001` | `unreachable-event` | warning | an event no composed execution fires |
//! | `SUFS002` | `vacuous-policy` | warning | a policy that cannot forbid anything |
//! | `SUFS003` | `policy-subsumption` | warning | a policy another policy makes redundant |
//! | `SUFS004` | `unbalanced-framing` | warning | a `Φ`-open that a path never closes |
//! | `SUFS005` | `dead-service` | info | a service no valid plan selects |
//! | `SUFS006` | `plan-contention` | warning | clients forced past a service's capacity |
//! | `SUFS007` | `empty-plan-space` | error | a client with no valid plan |
//! | `SUFS008` | `unresolved-policy` | error | a policy reference with no definition |
//! | `SUFS009` | `capacity-deadlock-cycle` | warning | clients deadlocking over bounded capacities |
//! | `SUFS010` | `single-point-of-failure` | info | a service whose crash empties a recovery chain |
//!
//! Passes run over any [`LintInput`] — a parsed scenario or a broker's
//! live repository — and the [`engine::LintEngine`] maintains a report
//! incrementally across mutations, re-running only the passes whose
//! fingerprinted inputs changed.
//!
//! Diagnostics are ordered deterministically: by code, then source
//! position, then subject, then message.
//!
//! See `docs/LINTS.md` for a catalogue with minimal triggering
//! scenarios.
//!
//! # Example
//!
//! ```
//! use sufs_core::scenario::parse_scenario;
//! use sufs_lint::lint_scenario;
//!
//! let sc = parse_scenario(
//!     "client c { open 1 { int[q -> eps] } }
//!      service s { ext[q -> eps] }
//!      service unused { ext[zzz -> eps] }",
//! )
//! .unwrap();
//! let report = lint_scenario(&sc).unwrap();
//! // `unused` can serve r1 too (plans bind requests to every service),
//! // but no valid plan picks it: SUFS005.
//! assert!(report.diagnostics.iter().any(|d| d.code.as_str() == "SUFS005"));
//! assert_eq!(report.errors(), 0);
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod engine;
pub mod passes;

use std::fmt;

use sufs_core::plans::PlanSpaceExceeded;
use sufs_core::scenario::Scenario;
use sufs_core::verify::VerifyError;
use sufs_hexpr::lts::StateSpaceExceeded;

pub use context::{AnalysisCaches, LintContext, LintInput};
pub use diag::{Code, Diagnostic, LintReport, Severity};
pub use engine::{LintEngine, RefreshOutcome};
pub use passes::{Dep, Pass};

/// An error preventing the lint engine from running (as opposed to a
/// finding, which goes in the report).
#[derive(Debug, Clone)]
pub enum LintError {
    /// Verification of a client failed.
    Verify {
        /// The client being verified.
        client: String,
        /// The underlying error.
        error: VerifyError,
    },
    /// Plan enumeration for a client overflowed the cap.
    Plans {
        /// The client whose plan space overflowed.
        client: String,
        /// The underlying error.
        error: PlanSpaceExceeded,
    },
    /// A component's stand-alone LTS exceeded the state bound.
    Lts {
        /// The component.
        subject: String,
        /// The underlying error.
        error: StateSpaceExceeded,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Verify { client, error } => {
                write!(f, "verifying client {client}: {error}")
            }
            LintError::Plans { client, error } => {
                write!(f, "enumerating plans of client {client}: {error}")
            }
            LintError::Lts { subject, error } => write!(f, "exploring {subject}: {error}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Lints a scenario with the default bounds: builds the shared
/// [`LintContext`], runs every pass, and returns the findings sorted by
/// code, source position, subject, then message.
///
/// # Errors
///
/// Returns a [`LintError`] when the underlying analyses cannot run at
/// all (state-space or plan-space explosion, verifier failure) — not
/// for findings, which land in the report.
pub fn lint_scenario(scenario: &Scenario) -> Result<LintReport, LintError> {
    let ctx = LintContext::build(scenario)?;
    Ok(run_passes(&ctx))
}

/// [`lint_scenario`] with explicit exploration bound and plan cap.
///
/// # Errors
///
/// As [`lint_scenario`].
pub fn lint_scenario_with(
    scenario: &Scenario,
    bound: usize,
    plan_cap: usize,
) -> Result<LintReport, LintError> {
    let ctx = LintContext::build_with(scenario, bound, plan_cap)?;
    Ok(run_passes(&ctx))
}

fn run_passes(ctx: &LintContext<'_>) -> LintReport {
    let mut diagnostics = Vec::new();
    for pass in passes::all() {
        diagnostics.extend(pass.run(ctx));
    }
    sort_diagnostics(&mut diagnostics);
    LintReport { diagnostics }
}

/// The one documented diagnostic order, shared by the batch runner and
/// the incremental engine: code, then source position, then subject,
/// then message.
pub(crate) fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (a.code, a.pos, &a.subject, &a.message).cmp(&(b.code, b.pos, &b.subject, &b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_core::scenario::parse_scenario;

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_scenario_is_clean() {
        // Two interchangeable providers: no dead service, and no
        // single point of failure (SUFS010) either.
        let sc = parse_scenario(
            "client c { open 1 { int[q -> eps]; ext[a -> eps | b -> eps] } }
             service s { ext[q -> int[a -> eps | b -> eps]] }
             service s2 { ext[q -> int[a -> eps | b -> eps]] }",
        )
        .unwrap();
        let report = lint_scenario(&sc).unwrap();
        assert!(report.is_clean(), "unexpected findings: {report}");
    }

    #[test]
    fn unreachable_event_is_found_with_witness() {
        let sc = parse_scenario(
            "client c { open 1 { int[ask -> eps]; ext[yes -> #won; eps | no -> eps] } }
             service nay { ext[ask -> int[no -> eps]] }",
        )
        .unwrap();
        let report = lint_scenario(&sc).unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UnreachableEvent)
            .expect("SUFS001 expected");
        assert!(d.message.contains("#won"));
        assert!(d.witness.as_ref().is_some_and(|w| !w.is_empty()));
        assert!(d.pos.line > 0);
    }

    #[test]
    fn unresolved_policy_is_an_error_and_skips_verification() {
        let sc = parse_scenario(
            "client c { open 1 phi ghost { int[a -> eps] } }
             service s { ext[a -> eps] }",
        )
        .unwrap();
        let report = lint_scenario(&sc).unwrap();
        assert!(codes(&report).contains(&"SUFS008"));
        assert!(report.errors() >= 1);
        // No SUFS007: verification was skipped, not failed.
        assert!(!codes(&report).contains(&"SUFS007"));
    }

    #[test]
    fn empty_plan_space_reports_last_violations() {
        let sc = parse_scenario(
            "client c { open 1 { int[q -> eps]; ext[a -> eps] } }
             service s { ext[q -> int[b -> eps]] }",
        )
        .unwrap();
        let report = lint_scenario(&sc).unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::EmptyPlanSpace)
            .expect("SUFS007 expected");
        assert_eq!(d.severity(), Severity::Error);
        assert!(d.note.as_ref().is_some_and(|n| n.contains("{r1↦s}")));
    }

    #[test]
    fn diagnostics_are_ordered_by_code_then_position() {
        // `spare` is declared first (lowest position) but its
        // dead-service finding (SUFS005) must sort after the client's
        // unreachable event (SUFS001): code orders before position.
        let sc = parse_scenario(
            "service spare { ext[zzz -> eps] }
             client c { open 1 { int[ask -> eps]; ext[yes -> #won; eps | no -> eps] } }
             service nay { ext[ask -> int[no -> eps]] }",
        )
        .unwrap();
        let report = lint_scenario(&sc).unwrap();
        assert!(report.diagnostics.len() >= 2, "{report}");
        let keys: Vec<_> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.pos, d.subject.clone(), d.message.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "report must be in documented order");
        assert_eq!(report.diagnostics[0].code, Code::UnreachableEvent);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::DeadService));
    }

    #[test]
    fn output_is_deterministic() {
        let src = "client c { open 1 { int[ask -> eps]; ext[yes -> #won; eps | no -> eps] } }
                   service nay { ext[ask -> int[no -> eps]] }
                   service spare { ext[zzz -> eps] }";
        let sc = parse_scenario(src).unwrap();
        let first = lint_scenario(&sc).unwrap().to_json(None);
        for _ in 0..5 {
            let sc2 = parse_scenario(src).unwrap();
            assert_eq!(lint_scenario(&sc2).unwrap().to_json(None), first);
        }
    }
}
