//! Scenario corpus at scale: a seeded topology **generator** plus a
//! record/replay **conformance harness**.
//!
//! The crate has two halves, wired to the `sufs gen` and `sufs replay`
//! subcommands:
//!
//! * [`gen`] derives well-formed `.sufs` scenario text from a seed and
//!   a topology profile (`mesh`, `tree`, `pipeline`, `star`), with
//!   optional policy layers and fault schedules — deterministically,
//!   so a committed corpus is regenerable byte for byte.
//! * [`runfile`] defines the `.sufsrun` JSON scenario-run format
//!   (steps, expected verdicts, golden transcripts) and [`replay`]
//!   executes it: in process for lint/plan/run steps, against a
//!   lazily-spawned live broker for the broker leg, with every `plan`
//!   step doubling as an enumerative-vs-compositional differential
//!   check.
//!
//! See `docs/SCENARIOS.md` for the user-facing reference.

pub mod gen;
pub mod replay;
pub mod runfile;

pub use gen::{corpus_config, generate, GenConfig, Generated, PolicyMix, Profile, PROFILES};
pub use replay::{replay_path, FileOutcome, ReplayOptions, ReplaySummary};
pub use runfile::{Expect, Op, RunFile, RunFileError, Step, SCHEMA_VERSION};
