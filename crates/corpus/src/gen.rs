//! Seeded scenario-topology generator.
//!
//! `generate` turns a [`GenConfig`] into a well-formed `.sufs` scenario
//! text: a realistic microservice topology (fan-out call graphs with
//! bounded fan-out, replicated providers, bounded capacities, layered
//! request/deny/framing policies in the SafeTree style, optional fault
//! schedules) that round-trips through the existing scenario parser.
//!
//! The generator is a pure function of its configuration: the same
//! [`GenConfig`] always produces the same bytes, so a committed corpus
//! is regenerable and every scenario embeds the exact `sufs gen`
//! invocation that produced it as its first comment line.
//!
//! Four topology profiles are supported:
//!
//! * **pipeline** — a client calls tier 1, tier `i` calls tier `i+1`;
//!   each tier is a group of interchangeable provider variants.
//! * **tree** — a root request fans out to a bounded number of child
//!   services, optionally one level deeper: the SafeTree-style
//!   tree-shaped mesh.
//! * **star** — a replicated hub service fans out to leaf groups.
//! * **mesh** — several clients share a flat pool of replicated
//!   provider groups, with optional capacity contention.
//!
//! Every group's variant 0 is an *honest* provider emitting no policed
//! event, so the all-honest assignment is always a valid plan: no
//! generated scenario ever lints at `error` level. Later variants may
//! be *rogue* (emitting the `probe` event a deny policy forbids, or
//! double-`wlog` inside a framing window), which carves a non-trivial
//! valid/rejected structure into the plan space.

use sufs_rng::{Rng, SeedableRng, StdRng};

/// The topology family a generated scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Several clients over a flat pool of replicated provider groups.
    Mesh,
    /// A root request fanning out into a bounded-degree service tree.
    Tree,
    /// A linear chain of tiers, each calling the next.
    Pipeline,
    /// A replicated hub fanning out to leaf groups.
    Star,
}

/// Every profile, in the order the corpus enumerates them.
pub const PROFILES: [Profile; 4] = [
    Profile::Mesh,
    Profile::Tree,
    Profile::Pipeline,
    Profile::Star,
];

impl Profile {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "mesh" => Some(Profile::Mesh),
            "tree" => Some(Profile::Tree),
            "pipeline" => Some(Profile::Pipeline),
            "star" => Some(Profile::Star),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Mesh => "mesh",
            Profile::Tree => "tree",
            Profile::Pipeline => "pipeline",
            Profile::Star => "star",
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Which policy layers the generated scenario carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyMix {
    /// A `deny_probe` usage automaton guarding the root request: rogue
    /// providers emitting `#probe` make their plans invalid.
    pub deny: bool,
    /// A `once_wlog` framing around each client body: at most one
    /// `wlog` event per window.
    pub frame: bool,
    /// Bounded capacities (`cap N`) on some provider variants.
    pub cap: bool,
}

impl PolicyMix {
    /// Parses the CLI spelling: a comma-separated subset of
    /// `deny`, `frame`, `cap` (empty/`none` for no policies).
    pub fn parse(s: &str) -> Result<PolicyMix, String> {
        let mut mix = PolicyMix::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            match part {
                "deny" => mix.deny = true,
                "frame" => mix.frame = true,
                "cap" => mix.cap = true,
                "none" => {}
                other => {
                    return Err(format!(
                        "unknown policy layer `{other}` (expected a subset of `deny,frame,cap`)"
                    ))
                }
            }
        }
        Ok(mix)
    }

    /// The CLI spelling (`none` when empty).
    pub fn as_string(&self) -> String {
        let mut parts = Vec::new();
        if self.deny {
            parts.push("deny");
        }
        if self.frame {
            parts.push("frame");
        }
        if self.cap {
            parts.push("cap");
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join(",")
        }
    }
}

/// A full generator configuration: the identity of one corpus scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// The determinism seed.
    pub seed: u64,
    /// Target service count (clamped per profile to keep plan spaces
    /// tractable; the emitted count is exact).
    pub services: usize,
    /// The topology family.
    pub profile: Profile,
    /// Arm a deterministic fault schedule (`faults { … }` block).
    pub faults: bool,
    /// The policy layers.
    pub policies: PolicyMix,
}

impl GenConfig {
    /// The exact `sufs gen` invocation reproducing this scenario. The
    /// generator embeds it as the first comment line of the output and
    /// CI replays it to prove the committed corpus is regenerable.
    pub fn command_line(&self) -> String {
        let mut cmd = format!(
            "sufs gen --profile {} --services {} --seed {} --policies {}",
            self.profile,
            self.services,
            self.seed,
            self.policies.as_string()
        );
        if self.faults {
            cmd.push_str(" --faults");
        }
        cmd
    }
}

/// The standard corpus cell for `(profile, index)`: how `sufs gen
/// --corpus` (and the regeneration check in CI) derives each scenario's
/// knobs from its index. Pure and deterministic.
pub fn corpus_config(profile: Profile, index: u64) -> GenConfig {
    let policies = match index % 8 {
        0 => PolicyMix::default(),
        1 => PolicyMix {
            deny: true,
            ..Default::default()
        },
        2 => PolicyMix {
            frame: true,
            ..Default::default()
        },
        3 => PolicyMix {
            cap: true,
            ..Default::default()
        },
        4 => PolicyMix {
            deny: true,
            cap: true,
            ..Default::default()
        },
        5 => PolicyMix {
            deny: true,
            frame: true,
            ..Default::default()
        },
        6 => PolicyMix {
            frame: true,
            cap: true,
            ..Default::default()
        },
        _ => PolicyMix {
            deny: true,
            frame: true,
            cap: true,
        },
    };
    GenConfig {
        seed: index,
        services: 3 + (index as usize % 6),
        profile,
        faults: index.is_multiple_of(5),
        policies,
    }
}

/// A generated scenario plus the structural facts the conformance
/// harness needs to build a run file for it.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The `.sufs` scenario text.
    pub scenario: String,
    /// Client names, in declaration order.
    pub clients: Vec<String>,
    /// Emitted service count.
    pub services: usize,
    /// Emitted policy-definition count.
    pub policies: usize,
    /// Distinct request ids in the topology.
    pub requests: usize,
    /// Whether a `faults { … }` block was emitted.
    pub has_faults: bool,
}

/// One request id served by a group of interchangeable variants.
struct Group {
    id: u32,
    prefix: String,
    children: Vec<u32>,
    variants: usize,
}

/// What a client looks like before rendering: the request ids it opens.
struct ClientSpec {
    name: String,
    opens: Vec<u32>,
}

/// Distributes `total` units over `groups` slots, each at least 1 and
/// at most `cap`, round-robin from the front. Deterministic.
fn distribute(total: usize, groups: usize, cap: usize) -> Vec<usize> {
    let mut out = vec![1usize; groups];
    let mut left = total.saturating_sub(groups);
    let mut i = 0;
    while left > 0 && out.iter().any(|&v| v < cap) {
        if out[i] < cap {
            out[i] += 1;
            left -= 1;
        }
        i = (i + 1) % groups;
    }
    out
}

/// Generates the scenario text for `cfg`. Pure: byte-identical output
/// for equal configurations.
pub fn generate(cfg: &GenConfig) -> Generated {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f5_u64.wrapping_mul(cfg.profile as u64 + 1));
    let (groups, clients) = build_topology(cfg, &mut rng);

    // Rogue placement: the deny rogue is the last variant of the last
    // group with at least two variants; the framing rogue is variant 1
    // of the first such group (skipped if it would collide with the
    // deny rogue). Variant 0 of every group stays honest, so the
    // all-honest assignment is always a valid plan.
    let deny_rogue: Option<(u32, usize)> = cfg
        .policies
        .deny
        .then(|| {
            groups
                .iter()
                .rev()
                .find(|g| g.variants >= 2)
                .map(|g| (g.id, g.variants - 1))
        })
        .flatten();
    let frame_rogue: Option<(u32, usize)> = cfg
        .policies
        .frame
        .then(|| {
            groups
                .iter()
                .find(|g| g.variants >= 2)
                .map(|g| (g.id, 1))
                .filter(|slot| Some(*slot) != deny_rogue)
        })
        .flatten();

    let mut text = String::new();
    text.push_str(&format!("// Generated by `{}`.\n", cfg.command_line()));
    text.push_str(&format!(
        "// {} topology: {} service(s) in {} provider group(s) over {} request id(s).\n",
        cfg.profile,
        groups.iter().map(|g| g.variants).sum::<usize>(),
        groups.len(),
        groups.len(),
    ));
    text.push_str("// Deterministic: the same invocation reproduces this file byte for byte.\n\n");

    let mut policies = 0;
    if cfg.policies.deny {
        text.push_str(
            "policy deny_probe {\n  start q0;\n  offending bad;\n  q0 -- probe -> bad;\n}\n\n",
        );
        policies += 1;
    }
    if cfg.policies.frame {
        text.push_str(
            "policy once_wlog {\n  start q0;\n  offending bad;\n  q0 -- wlog -> w1;\n  \
             w1 -- wlog -> bad;\n}\n\n",
        );
        policies += 1;
    }

    if cfg.faults {
        text.push_str(&format!(
            "faults {{\n  crash 0.01;\n  drop 0.05;\n  max_crashes 1;\n  timeout 12;\n  \
             retries 2;\n  seed {};\n}}\n\n",
            cfg.seed % 97 + 1
        ));
    }

    for c in &clients {
        text.push_str(&render_client(c, cfg));
        text.push('\n');
    }

    let mut services = 0;
    for g in &groups {
        for v in 0..g.variants {
            let rogue_probe = deny_rogue == Some((g.id, v));
            let rogue_wlog = frame_rogue == Some((g.id, v));
            text.push_str(&render_service(
                cfg,
                g,
                v,
                rogue_probe,
                rogue_wlog,
                &mut rng,
            ));
            text.push('\n');
            services += 1;
        }
    }

    Generated {
        scenario: text,
        clients: clients.iter().map(|c| c.name.clone()).collect(),
        services,
        policies,
        requests: groups.len(),
        has_faults: cfg.faults,
    }
}

/// Builds the request-id graph and client list for a profile. Request
/// ids are assigned 1..=K in group order.
fn build_topology(cfg: &GenConfig, rng: &mut StdRng) -> (Vec<Group>, Vec<ClientSpec>) {
    let n = cfg.services.clamp(3, 9);
    match cfg.profile {
        Profile::Pipeline => {
            // Tiers t1 → t2 [→ t3]; tier i serves request i and opens
            // request i+1.
            let depth = if n >= 6 { 3 } else { 2 };
            let variants = distribute(n, depth, 3);
            let groups = (0..depth)
                .map(|i| Group {
                    id: i as u32 + 1,
                    prefix: format!("t{}", i + 1),
                    children: if i + 1 < depth {
                        vec![i as u32 + 2]
                    } else {
                        vec![]
                    },
                    variants: variants[i],
                })
                .collect();
            let clients = vec![ClientSpec {
                name: "c0".to_owned(),
                opens: vec![1],
            }];
            (groups, clients)
        }
        Profile::Tree => {
            // A root with two children; a grandchild under the first
            // child when the budget allows without blowing up the plan
            // space (candidates = services^requests).
            let grandchild = (5..=6).contains(&n);
            let nodes = if grandchild { 4 } else { 3 };
            let variants = distribute(n, nodes, 3);
            let mut groups = vec![
                Group {
                    id: 1,
                    prefix: "root".to_owned(),
                    children: vec![2, 3],
                    variants: variants[0],
                },
                Group {
                    id: 2,
                    prefix: "left".to_owned(),
                    children: if grandchild { vec![4] } else { vec![] },
                    variants: variants[1],
                },
                Group {
                    id: 3,
                    prefix: "right".to_owned(),
                    children: vec![],
                    variants: variants[2],
                },
            ];
            if grandchild {
                groups.push(Group {
                    id: 4,
                    prefix: "deep".to_owned(),
                    children: vec![],
                    variants: variants[3],
                });
            }
            let clients = vec![ClientSpec {
                name: "c0".to_owned(),
                opens: vec![1],
            }];
            (groups, clients)
        }
        Profile::Star => {
            // A hub serving request 1 fans out to two leaf groups.
            let variants = distribute(n, 3, 3);
            let groups = vec![
                Group {
                    id: 1,
                    prefix: "hub".to_owned(),
                    children: vec![2, 3],
                    variants: variants[0],
                },
                Group {
                    id: 2,
                    prefix: "leaf1".to_owned(),
                    children: vec![],
                    variants: variants[1],
                },
                Group {
                    id: 3,
                    prefix: "leaf2".to_owned(),
                    children: vec![],
                    variants: variants[2],
                },
            ];
            let clients = vec![ClientSpec {
                name: "c0".to_owned(),
                opens: vec![1],
            }];
            (groups, clients)
        }
        Profile::Mesh => {
            // A flat pool of provider groups shared by several clients;
            // plan spaces stay small because nothing nests.
            let pool = (n / 3).clamp(2, 3);
            let variants = distribute(n, pool, 3);
            let groups: Vec<Group> = (0..pool)
                .map(|i| Group {
                    id: i as u32 + 1,
                    prefix: format!("svc{}", i + 1),
                    children: vec![],
                    variants: variants[i],
                })
                .collect();
            let nclients = 2 + (rng.gen_range(0..2usize));
            let clients = (0..nclients)
                .map(|i| {
                    let first = (i % pool) as u32 + 1;
                    let mut opens = vec![first];
                    if rng.gen_bool(0.5) && pool > 1 {
                        let second = (first as usize % pool) as u32 + 1;
                        opens.push(second);
                    }
                    ClientSpec {
                        name: format!("c{i}"),
                        opens,
                    }
                })
                .collect();
            (groups, clients)
        }
    }
}

/// The client-side conversation of request `id`.
fn conversation(id: u32) -> String {
    format!("int[q{id} -> eps]; ext[ok{id} -> eps | no{id} -> eps]")
}

/// An `open` of request `id` with an optional `phi` policy.
fn open_request(id: u32, phi: Option<&str>) -> String {
    match phi {
        Some(p) => format!("open {id} phi {p} {{ {} }}", conversation(id)),
        None => format!("open {id} {{ {} }}", conversation(id)),
    }
}

fn render_client(c: &ClientSpec, cfg: &GenConfig) -> String {
    let mut opens = Vec::new();
    for (i, &id) in c.opens.iter().enumerate() {
        let phi = (cfg.policies.deny && i == 0).then_some("deny_probe");
        opens.push(open_request(id, phi));
    }
    let body = opens.join(";\n    ");
    if cfg.policies.frame {
        format!(
            "client {} {{\n  frame once_wlog [\n    {body}\n  ]\n}}\n",
            c.name
        )
    } else {
        format!("client {} {{\n  {body}\n}}\n", c.name)
    }
}

/// Renders one provider variant of a group: receive the request, do
/// some work (events, calls to child groups), reply.
fn render_service(
    cfg: &GenConfig,
    g: &Group,
    variant: usize,
    rogue_probe: bool,
    rogue_wlog: bool,
    rng: &mut StdRng,
) -> String {
    let name = format!("{}_{}", g.prefix, (b'a' + variant as u8) as char);
    let mut items: Vec<String> = vec![format!("ext[q{} -> eps]", g.id)];
    // Work events. Variant 0 is always honest and silent on policed
    // events; later variants draw a little noise from the seed stream.
    if variant > 0 {
        for ev in ["#step", "#audit"] {
            if rng.gen_bool(0.4) {
                items.push(ev.to_owned());
            }
        }
        if cfg.policies.frame && !rogue_wlog && rng.gen_bool(0.3) {
            items.push("#wlog".to_owned());
        }
    }
    if rogue_probe {
        items.push("#probe".to_owned());
    }
    if rogue_wlog {
        items.push("#wlog".to_owned());
        items.push("#wlog".to_owned());
    }
    for &child in &g.children {
        items.push(open_request(child, None));
    }
    items.push(format!("int[ok{} -> eps | no{} -> eps]", g.id, g.id));
    // Bounded capacity on some non-canonical variants.
    let cap = if cfg.policies.cap && variant > 0 && rng.gen_bool(0.5) {
        Some(1 + rng.gen_range(0..2usize))
    } else {
        None
    };
    let cap_txt = cap.map(|c| format!(" cap {c}")).unwrap_or_default();
    format!(
        "service {name}{cap_txt} {{\n  {}\n}}\n",
        items.join(";\n  ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_config() {
        for profile in PROFILES {
            let cfg = corpus_config(profile, 11);
            assert_eq!(generate(&cfg).scenario, generate(&cfg).scenario);
        }
    }

    #[test]
    fn distribute_respects_bounds() {
        assert_eq!(distribute(7, 3, 3), vec![3, 2, 2]);
        assert_eq!(distribute(3, 3, 3), vec![1, 1, 1]);
        assert_eq!(distribute(20, 2, 3), vec![3, 3]);
    }

    #[test]
    fn command_line_round_trips() {
        let cfg = corpus_config(Profile::Star, 7);
        let cmd = cfg.command_line();
        assert!(cmd.starts_with("sufs gen --profile star"));
        assert!(cmd.contains("--seed 7"));
    }
}
