//! The record/replay conformance executor.
//!
//! `replay_path` loads one `.sufsrun` file (or every `*.sufsrun` in a
//! directory), executes each file's steps against its scenario, and
//! compares the canonicalized output of every step to the committed
//! golden transcript — byte for byte. In `--record` mode mismatching
//! transcripts are rewritten instead of failed, turning the same code
//! path into the golden-file recorder.
//!
//! Two properties make the harness a standing differential gate:
//!
//! * **Engine conformance.** Every `plan` step synthesizes with *both*
//!   the enumerative and the compositional engine and fails on any
//!   difference in the valid-plan set — before even looking at the
//!   golden transcript. The transcripts themselves canonicalize to the
//!   valid plans only (count plus one `✓` line per plan, in report
//!   order), because that is the surface the engines contract to agree
//!   on: the compositional product prunes refuted subtrees, so full
//!   verdict lists are engine-specific by design.
//! * **Leg conformance.** `broker_plan` steps replay the same query
//!   against a live broker (spawned lazily, one per run file, on an
//!   ephemeral port) with both engines, and additionally require the
//!   remote answer to be byte-identical to the last in-process `plan`
//!   transcript for the same client.
//!
//! Runtime steps (`run`, `broker_run`) are seeded and use committed
//! choices, so their `BatchSummary` counters are a pure function of
//! the run file — fault schedules included.
//!
//! Run files containing failover steps (`broker_kill`,
//! `broker_promote`) get a two-node durable cluster instead of the
//! single in-process broker: a quorum-ack primary plus a live
//! follower, each journaling into its own scratch directory.
//! `broker_kill` waits for replication to drain and then fail-stops
//! the primary, so every later step replays against the promoted
//! survivor — the transcript *is* the proof that failover loses
//! nothing.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sufs_broker::{AckMode, Broker, BrokerClient, BrokerConfig, Json};
use sufs_core::scenario::{parse_scenario, Scenario};
use sufs_core::{synthesize, Engine, SynthesisOptions};
use sufs_hexpr::{Hist, Location};
use sufs_lint::lint_scenario;
use sufs_net::{ChoiceMode, MonitorMode, Network, Scheduler};
use sufs_rng::{SeedableRng, StdRng};

use crate::runfile::{Op, RunFile, Step};

/// How a replay run behaves.
#[derive(Debug, Clone, Default)]
pub struct ReplayOptions {
    /// Rewrite mismatching transcripts (and write the files back)
    /// instead of failing on them. Expectations are still checked.
    pub record: bool,
    /// Skip broker-leg steps entirely (counted, not failed).
    pub no_broker: bool,
    /// Only replay files whose name contains this substring.
    pub filter: Option<String>,
    /// Worker threads over the file list; 0 or 1 = sequential.
    pub jobs: usize,
}

/// The outcome of replaying one run file.
#[derive(Debug)]
pub struct FileOutcome {
    /// The `.sufsrun` path.
    pub path: PathBuf,
    /// Steps executed (broker steps skipped under `no_broker` are not
    /// counted).
    pub steps: usize,
    /// Broker steps skipped under `no_broker`.
    pub skipped: usize,
    /// Every failure, already formatted (`step 3 (plan): …`).
    pub failures: Vec<String>,
    /// Whether `--record` rewrote the file.
    pub updated: bool,
}

impl FileOutcome {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The aggregated outcome of one replay invocation, sorted by path.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    pub files: Vec<FileOutcome>,
}

impl ReplaySummary {
    pub fn passed(&self) -> usize {
        self.files.iter().filter(|f| f.passed()).count()
    }

    pub fn failed(&self) -> usize {
        self.files.len() - self.passed()
    }

    pub fn steps(&self) -> usize {
        self.files.iter().map(|f| f.steps).sum()
    }

    pub fn updated(&self) -> usize {
        self.files.iter().filter(|f| f.updated).count()
    }

    /// The transcript-diff report CI uploads as an artifact on failure:
    /// one block per failing file listing every step failure verbatim.
    pub fn diff_report(&self) -> String {
        let mut out = String::new();
        for f in self.files.iter().filter(|f| !f.passed()) {
            out.push_str(&format!("== {} ==\n", f.path.display()));
            for failure in &f.failures {
                out.push_str(failure);
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

/// Replays a `.sufsrun` file or every `*.sufsrun` in a directory.
///
/// # Errors
///
/// Returns an error for an unusable path or an empty selection;
/// per-file problems (parse errors, mismatches) are reported as file
/// failures in the summary instead, so one bad file cannot hide the
/// rest of a corpus.
pub fn replay_path(path: &Path, opts: &ReplayOptions) -> Result<ReplaySummary, String> {
    let files = collect_runfiles(path, opts.filter.as_deref())?;
    if files.is_empty() {
        return Err(match &opts.filter {
            Some(f) => format!("no .sufsrun files under {} match `{f}`", path.display()),
            None => format!("no .sufsrun files under {}", path.display()),
        });
    }
    let jobs = opts.jobs.max(1).min(files.len());
    let mut summary = ReplaySummary::default();
    if jobs == 1 {
        for file in &files {
            summary.files.push(replay_file(file, opts));
        }
    } else {
        let next = AtomicUsize::new(0);
        let outcomes: Mutex<Vec<FileOutcome>> = Mutex::new(Vec::with_capacity(files.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(file) = files.get(i) else { break };
                    let outcome = replay_file(file, opts);
                    outcomes.lock().expect("outcome lock").push(outcome);
                });
            }
        });
        summary.files = outcomes.into_inner().expect("outcome lock");
        summary.files.sort_by(|a, b| a.path.cmp(&b.path));
    }
    Ok(summary)
}

fn collect_runfiles(path: &Path, filter: Option<&str>) -> Result<Vec<PathBuf>, String> {
    let matches = |p: &Path| {
        filter.is_none_or(|f| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(f))
        })
    };
    if path.is_file() {
        return Ok(if matches(path) {
            vec![path.to_path_buf()]
        } else {
            vec![]
        });
    }
    if !path.is_dir() {
        return Err(format!("{}: not a file or directory", path.display()));
    }
    let entries =
        std::fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let p = entry.map_err(|e| e.to_string())?.path();
        if p.extension().is_some_and(|x| x == "sufsrun") && matches(&p) {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

/// A lazily-started in-process broker: one per run file, so broker
/// steps see exactly this file's published repository and parallel
/// workers never share state.
///
/// Run files with failover steps get a two-node durable cluster
/// instead: a quorum-ack primary plus one live follower. `broker_kill`
/// consumes the primary handle and re-points `client` at the survivor,
/// so every later step transparently replays against it.
struct BrokerSession {
    client: BrokerClient,
    primary: Option<sufs_broker::BrokerHandle>,
    follower: Option<sufs_broker::BrokerHandle>,
    dirs: Vec<PathBuf>,
}

impl BrokerSession {
    fn start(failover: bool) -> Result<BrokerSession, String> {
        if !failover {
            let handle = Broker::spawn(BrokerConfig::default())
                .map_err(|e| format!("cannot spawn broker: {e}"))?;
            let client = BrokerClient::connect(handle.addr())
                .map_err(|e| format!("cannot connect to broker: {e}"))?;
            return Ok(BrokerSession {
                client,
                primary: Some(handle),
                follower: None,
                dirs: Vec::new(),
            });
        }
        // Scratch state dirs must be unique across the parallel file
        // workers of one replay invocation *and* across invocations.
        static SESSION: AtomicUsize = AtomicUsize::new(0);
        let tag = SESSION.fetch_add(1, Ordering::Relaxed);
        let dirs: Vec<PathBuf> = (0..2)
            .map(|i| {
                let mut p = std::env::temp_dir();
                p.push(format!(
                    "sufs-replay-failover-{}-{tag}-n{i}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&p);
                p
            })
            .collect();
        let node = |dir: &Path, follow: Option<String>| BrokerConfig {
            state_dir: Some(dir.to_path_buf()),
            follow,
            ack: AckMode::Quorum,
            cluster_size: 2,
            ack_timeout: Duration::from_secs(2),
            follow_retry: Duration::from_millis(10),
            replication_tick: Duration::from_millis(25),
            ..BrokerConfig::default()
        };
        let primary = Broker::spawn(node(&dirs[0], None))
            .map_err(|e| format!("cannot spawn cluster primary: {e}"))?;
        let follower = Broker::spawn(node(&dirs[1], Some(primary.addr().to_string())))
            .map_err(|e| format!("cannot spawn cluster follower: {e}"))?;
        let client = BrokerClient::connect(primary.addr())
            .map_err(|e| format!("cannot connect to broker: {e}"))?;
        Ok(BrokerSession {
            client,
            primary: Some(primary),
            follower: Some(follower),
            dirs,
        })
    }

    /// Blocks until the follower has acknowledged every record the
    /// primary has sent — the durability precondition that makes
    /// killing the primary a loss-free event.
    fn await_follower_sync(&mut self) -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = self.client.stats().map_err(|e| e.to_string())?;
            let repl = stats.get("replication").cloned().unwrap_or_else(Json::obj);
            let synced = repl
                .get("followers")
                .and_then(Json::as_arr)
                .is_some_and(|fs| {
                    !fs.is_empty() && fs.iter().all(|f| f.u64_field("lag") == Some(0))
                });
            if synced {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err("follower never caught up with the primary".to_owned());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for BrokerSession {
    fn drop(&mut self) {
        let _ = self.client.shutdown();
        if let Some(handle) = self.primary.take() {
            if self.follower.is_some() {
                handle.kill();
            } else {
                handle.wait();
            }
        }
        if let Some(handle) = self.follower.take() {
            handle.kill();
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

struct Ctx {
    scenario: Scenario,
    text: String,
    /// Whether this run file contains failover steps, decided before
    /// the first broker step: the session must start as a cluster.
    failover: bool,
    broker: Option<BrokerSession>,
    /// Last in-process `plan` transcript per client, for the broker-leg
    /// cross-check.
    plans: BTreeMap<String, Vec<String>>,
}

impl Ctx {
    fn client(&self, step: &Step) -> Result<(String, Hist), String> {
        let name = step.client.as_deref().expect("validated at parse");
        match self.scenario.client(name) {
            Some(h) => Ok((name.to_owned(), h.clone())),
            None => Err(format!("scenario has no client `{name}`")),
        }
    }

    fn broker(&mut self) -> Result<&mut BrokerSession, String> {
        if self.broker.is_none() {
            self.broker = Some(BrokerSession::start(self.failover)?);
        }
        Ok(self.broker.as_mut().expect("just set"))
    }
}

fn replay_file(path: &Path, opts: &ReplayOptions) -> FileOutcome {
    let mut outcome = FileOutcome {
        path: path.to_path_buf(),
        steps: 0,
        skipped: 0,
        failures: Vec::new(),
        updated: false,
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            outcome.failures.push(format!("cannot read file: {e}"));
            return outcome;
        }
    };
    let mut file = match RunFile::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            outcome.failures.push(format!("invalid run file: {e}"));
            return outcome;
        }
    };
    let dir = path.parent().unwrap_or(Path::new("."));
    let scenario_path = dir.join(&file.scenario);
    let scenario_text = match std::fs::read_to_string(&scenario_path) {
        Ok(t) => t,
        Err(e) => {
            outcome.failures.push(format!(
                "cannot read scenario {}: {e}",
                scenario_path.display()
            ));
            return outcome;
        }
    };
    let scenario = match parse_scenario(&scenario_text) {
        Ok(sc) => sc,
        Err(e) => {
            outcome.failures.push(format!(
                "scenario {} does not parse: {e}",
                scenario_path.display()
            ));
            return outcome;
        }
    };
    let mut ctx = Ctx {
        scenario,
        text: scenario_text,
        failover: file.steps.iter().any(|s| s.op().is_failover()),
        broker: None,
        plans: BTreeMap::new(),
    };

    let mut dirty = false;
    for (i, step) in file.steps.iter_mut().enumerate() {
        let op = step.op();
        if op.is_broker() && opts.no_broker {
            outcome.skipped += 1;
            continue;
        }
        outcome.steps += 1;
        let label = format!("step {} ({op})", i + 1);
        let (transcript, mut failures) = match execute_step(&mut ctx, step) {
            Ok(r) => r,
            Err(e) => {
                outcome.failures.push(format!("{label}: {e}"));
                continue;
            }
        };
        if transcript != step.transcript {
            if opts.record {
                step.transcript = transcript;
                dirty = true;
            } else {
                failures.push(transcript_diff(&step.transcript, &transcript));
            }
        }
        outcome
            .failures
            .extend(failures.into_iter().map(|f| format!("{label}: {f}")));
    }

    // A failing file is never rewritten, even under `--record`:
    // expectation failures must not overwrite goldens with output the
    // author has not vetted.
    if opts.record && dirty && outcome.failures.is_empty() {
        match std::fs::write(path, file.serialize()) {
            Ok(()) => outcome.updated = true,
            Err(e) => outcome.failures.push(format!("cannot write file: {e}")),
        }
    }
    outcome
}

fn transcript_diff(golden: &[String], actual: &[String]) -> String {
    let mut out = String::from("transcript mismatch");
    out.push_str("\n  golden:");
    for line in golden {
        out.push_str(&format!("\n    | {line}"));
    }
    out.push_str("\n  actual:");
    for line in actual {
        out.push_str(&format!("\n    | {line}"));
    }
    out
}

/// Executes one step: returns the canonical transcript plus any
/// expectation failures. A hard `Err` means the step could not run at
/// all (and recording is impossible).
fn execute_step(ctx: &mut Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    match step.op() {
        Op::Lint => step_lint(ctx, step),
        Op::Plan => step_plan(ctx, step),
        Op::Run => step_run(ctx, step),
        Op::BrokerPublish => step_broker_publish(ctx),
        Op::Wait => step_wait(ctx, step),
        Op::BrokerPlan => step_broker_plan(ctx, step),
        Op::BrokerRun => step_broker_run(ctx, step),
        Op::BrokerKill => step_broker_kill(ctx),
        Op::BrokerPromote => step_broker_promote(ctx),
    }
}

/// The canonical lint transcript: one line per diagnostic (severity,
/// code, position, subject, message — notes and witnesses are
/// presentation, not verdict) plus the severity tally.
pub fn lint_transcript(report: &sufs_lint::LintReport) -> Vec<String> {
    let mut lines: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| {
            format!(
                "{}[{}] {}:{} {}: {}",
                d.severity(),
                d.code,
                d.pos.line,
                d.pos.col,
                d.subject,
                d.message
            )
        })
        .collect();
    lines.push(format!(
        "errors={} warnings={} infos={}",
        report.errors(),
        report.warnings(),
        report.infos()
    ));
    lines
}

fn step_lint(ctx: &Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    let report = lint_scenario(&ctx.scenario).map_err(|e| e.to_string())?;
    let mut failures = Vec::new();
    if let Some(want) = step.expect.errors {
        if report.errors() as u64 != want {
            failures.push(format!(
                "expected {want} error(s), found {}",
                report.errors()
            ));
        }
    }
    if let Some(min) = step.expect.min_errors {
        if (report.errors() as u64) < min {
            failures.push(format!(
                "expected at least {min} error(s), found {}",
                report.errors()
            ));
        }
    }
    Ok((lint_transcript(&report), failures))
}

/// The canonical plan transcript: the valid-plan count plus one `✓`
/// line per valid plan, in report order. Candidate counts and rejected
/// verdicts are deliberately excluded — the compositional engine prunes
/// refuted subtrees, so only the valid set is engine-independent.
pub fn plan_transcript(valid: &[String]) -> Vec<String> {
    let mut lines = vec![format!("valid={}", valid.len())];
    lines.extend(valid.iter().map(|p| format!("✓ {p}")));
    lines
}

fn engine_valid_plans(ctx: &Ctx, client: &Hist, engine: Engine) -> Result<Vec<String>, String> {
    let opts = SynthesisOptions {
        engine,
        ..SynthesisOptions::default()
    };
    let synthesis = synthesize(
        client,
        &ctx.scenario.repository,
        &ctx.scenario.registry,
        &opts,
    )
    .map_err(|e| e.to_string())?;
    Ok(synthesis
        .report
        .valid_plans()
        .map(|p| p.to_string())
        .collect())
}

fn check_valid_expectations(step: &Step, found: usize, failures: &mut Vec<String>) {
    if let Some(want) = step.expect.valid {
        if found as u64 != want {
            failures.push(format!("expected {want} valid plan(s), found {found}"));
        }
    }
    if let Some(min) = step.expect.min_valid {
        if (found as u64) < min {
            failures.push(format!(
                "expected at least {min} valid plan(s), found {found}"
            ));
        }
    }
}

fn step_plan(ctx: &mut Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    let (name, client) = ctx.client(step)?;
    let enumerative = engine_valid_plans(ctx, &client, Engine::Enumerative)?;
    let compositional = engine_valid_plans(ctx, &client, Engine::Compositional)?;
    let transcript = plan_transcript(&enumerative);
    let mut failures = Vec::new();
    if enumerative != compositional {
        failures.push(
            transcript_diff(&transcript, &plan_transcript(&compositional)).replace(
                "transcript mismatch",
                "engine divergence (enumerative vs compositional)",
            ),
        );
    }
    check_valid_expectations(step, enumerative.len(), &mut failures);
    ctx.plans.insert(name, transcript.clone());
    Ok((transcript, failures))
}

fn step_run(ctx: &Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    let (name, client) = ctx.client(step)?;
    let synthesis = synthesize(
        &client,
        &ctx.scenario.repository,
        &ctx.scenario.registry,
        &SynthesisOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let Some(plan) = synthesis.report.valid_plans().next().cloned() else {
        return Err("no valid plan to run".to_owned());
    };
    let choice = if step.committed.unwrap_or(false) {
        ChoiceMode::Committed
    } else {
        ChoiceMode::Angelic
    };
    let mut scheduler = Scheduler::new(
        &ctx.scenario.repository,
        &ctx.scenario.registry,
        MonitorMode::Audit,
        choice,
    );
    if let Some(f) = ctx.scenario.faults.clone() {
        scheduler = scheduler.with_faults(f);
    }
    if step.recover.unwrap_or(false) {
        let table = sufs_core::recovery::recovery_table(
            std::slice::from_ref(&client),
            &ctx.scenario.repository,
            &ctx.scenario.registry,
        )
        .map_err(|e| e.to_string())?;
        scheduler = scheduler.with_recovery(table);
    }
    let mut network = Network::new();
    network.add_client(Location::new(name), client, plan);
    let runs = step.runs.unwrap_or(8) as usize;
    let mut rng = StdRng::seed_from_u64(step.seed.unwrap_or(0));
    let summary = scheduler
        .run_batch(&network, runs, &mut rng, 100_000)
        .map_err(|e| e.to_string())?;
    let transcript = vec![
        summary.to_string(),
        format!(
            "secure={} unfailing={}",
            summary.is_secure(),
            summary.is_unfailing()
        ),
    ];
    let mut failures = Vec::new();
    if let Some(want) = step.expect.secure {
        if summary.is_secure() != want {
            failures.push(format!(
                "expected secure={want}, got {}",
                summary.is_secure()
            ));
        }
    }
    if let Some(want) = step.expect.unfailing {
        if summary.is_unfailing() != want {
            failures.push(format!(
                "expected unfailing={want}, got {}",
                summary.is_unfailing()
            ));
        }
    }
    Ok((transcript, failures))
}

fn check_reply(reply: Json) -> Result<Json, String> {
    if reply.bool_field("ok") == Some(true) {
        Ok(reply)
    } else {
        let kind = reply.str_field("kind").unwrap_or("error");
        let msg = reply.str_field("error").unwrap_or("unknown broker error");
        Err(format!("broker refused ({kind}): {msg}"))
    }
}

fn step_broker_publish(ctx: &mut Ctx) -> Result<(Vec<String>, Vec<String>), String> {
    let text = ctx.text.clone();
    let session = ctx.broker()?;
    let reply = check_reply(
        session
            .client
            .publish_scenario(&text)
            .map_err(|e| e.to_string())?,
    )?;
    // Cache-eviction counts depend on broker history, not the scenario:
    // excluded from the canonical transcript.
    let transcript = vec![format!(
        "services={} policies={}",
        reply.u64_field("services").unwrap_or(0),
        reply.u64_field("policies").unwrap_or(0)
    )];
    Ok((transcript, Vec::new()))
}

fn step_wait(ctx: &mut Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    let target = step.services.expect("validated at parse") as usize;
    let session = ctx.broker()?;
    let mut seen = 0;
    for _ in 0..100 {
        let reply = check_reply(session.client.repo().map_err(|e| e.to_string())?)?;
        seen = reply
            .get("services")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        if seen >= target {
            // The transcript pins the target, not the observed count:
            // a wait-condition's verdict is "reached", never a racy
            // snapshot.
            return Ok((vec![format!("services={target}")], Vec::new()));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(format!(
        "wait-condition timed out: broker repository holds {seen} service(s), wanted {target}"
    ))
}

fn step_broker_plan(ctx: &mut Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    let (name, client) = ctx.client(step)?;
    let hist = client.to_string();
    let session = ctx.broker()?;
    let mut per_engine = Vec::new();
    for engine in [Engine::Enumerative, Engine::Compositional] {
        let extra = Json::obj().with("engine", engine.as_str());
        let reply = check_reply(
            session
                .client
                .plan_with(&hist, extra)
                .map_err(|e| e.to_string())?,
        )?;
        let valid: Vec<String> = reply
            .get("valid")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|p| p.as_str().map(str::to_owned))
            .collect();
        per_engine.push(plan_transcript(&valid));
    }
    let transcript = per_engine[0].clone();
    let mut failures = Vec::new();
    if per_engine[0] != per_engine[1] {
        failures.push(transcript_diff(&per_engine[0], &per_engine[1]).replace(
            "transcript mismatch",
            "remote engine divergence (enumerative vs compositional)",
        ));
    }
    if let Some(local) = ctx.plans.get(&name) {
        if *local != transcript {
            failures.push(transcript_diff(local, &transcript).replace(
                "transcript mismatch",
                "broker leg diverged from the in-process plan transcript",
            ));
        }
    }
    let found = transcript.len().saturating_sub(1);
    check_valid_expectations(step, found, &mut failures);
    Ok((transcript, failures))
}

/// Fail-stops the cluster primary. Replication is drained first —
/// killing before the follower has acked everything would test data
/// loss, not failover — and the session's client re-points at the
/// survivor, which still answers reads but refuses mutations until
/// `broker_promote`.
fn step_broker_kill(ctx: &mut Ctx) -> Result<(Vec<String>, Vec<String>), String> {
    let session = ctx.broker()?;
    if session.follower.is_none() {
        return Err("no failover cluster in this session".to_owned());
    }
    if session.primary.is_none() {
        return Err("the primary is already dead".to_owned());
    }
    session.await_follower_sync()?;
    let survivor = session.follower.as_ref().expect("checked above").addr();
    session.primary.take().expect("checked above").kill();
    session.client = BrokerClient::connect(survivor)
        .map_err(|e| format!("cannot connect to the survivor: {e}"))?;
    Ok((vec!["killed=primary survivors=1".to_owned()], Vec::new()))
}

/// Promotes the surviving follower — the explicit operator action of
/// `--election manual`. The transcript pins the post-promotion epoch,
/// so an accidental extra epoch bump anywhere in the promotion path
/// shows up as a golden-file diff.
fn step_broker_promote(ctx: &mut Ctx) -> Result<(Vec<String>, Vec<String>), String> {
    let session = ctx.broker()?;
    if session.primary.is_some() {
        return Err(
            "the primary is still alive; `broker_promote` must follow `broker_kill`".to_owned(),
        );
    }
    let reply = check_reply(session.client.promote().map_err(|e| e.to_string())?)?;
    let transcript = vec![format!(
        "role={} epoch={} changed={}",
        reply.str_field("role").unwrap_or("?"),
        reply.u64_field("epoch").unwrap_or(0),
        reply.bool_field("changed").unwrap_or(false)
    )];
    Ok((transcript, Vec::new()))
}

fn step_broker_run(ctx: &mut Ctx, step: &Step) -> Result<(Vec<String>, Vec<String>), String> {
    let (_, client) = ctx.client(step)?;
    let hist = client.to_string();
    let extra = Json::obj()
        .with("seed", step.seed.unwrap_or(0))
        .with("committed", step.committed.unwrap_or(false));
    let session = ctx.broker()?;
    let reply = session
        .client
        .run(&hist, extra)
        .map_err(|e| e.to_string())?;
    let mut failures = Vec::new();
    if reply.bool_field("ok") == Some(true) {
        if let Some(kind) = &step.expect.error {
            failures.push(format!(
                "expected broker error `{kind}`, but the run succeeded"
            ));
        }
        let transcript = vec![format!(
            "plan={} outcome={} steps={} faults={} violations={}",
            reply.str_field("plan").unwrap_or("?"),
            reply.str_field("outcome").unwrap_or("?"),
            reply.u64_field("steps").unwrap_or(0),
            reply.u64_field("faults").unwrap_or(0),
            reply.u64_field("violations").unwrap_or(0)
        )];
        Ok((transcript, failures))
    } else {
        let kind = reply.str_field("kind").unwrap_or("error").to_owned();
        match &step.expect.error {
            Some(want) if *want == kind => Ok((vec![format!("error={kind}")], failures)),
            _ => Err(format!(
                "broker refused ({kind}): {}",
                reply.str_field("error").unwrap_or("unknown broker error")
            )),
        }
    }
}
