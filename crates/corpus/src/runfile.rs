//! The `.sufsrun` scenario-run format.
//!
//! A run file is a JSON document describing how one `.sufs` scenario is
//! exercised end to end: a sequence of steps (lint, plan, run, broker
//! publish/plan/run, wait-conditions), each with optional *expected
//! verdicts* (error counts, valid-plan counts, secure/unfailing flags)
//! and a *golden transcript* — the canonicalized output the step must
//! reproduce byte for byte on replay.
//!
//! The schema is strict: unknown top-level keys, step keys, expectation
//! keys, or operations are parse errors, so a typo in a hand-edited run
//! file fails loudly instead of silently skipping an assertion. Files
//! are written by a stable pretty-printer, so `--record` produces
//! minimal diffs.

use std::fmt;

use sufs_broker::json::{self, escape, Json};

/// The current `.sufsrun` schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// A step operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Lint the scenario in process; transcript = canonical diagnostics.
    Lint,
    /// Synthesize plans for one client with *both* engines in process;
    /// replay fails on any divergence. Transcript = valid-plan summary.
    Plan,
    /// Execute a seeded batch for one client; transcript = the
    /// `BatchSummary` line plus the secure/unfailing verdict.
    Run,
    /// Publish the scenario's services and policies to the live broker.
    BrokerPublish,
    /// Wait-condition: poll the broker until its repository holds the
    /// expected number of services.
    Wait,
    /// Synthesize remotely with both engines; replay fails if the
    /// broker's answer diverges across engines *or* from the last
    /// in-process `plan` transcript for the same client.
    BrokerPlan,
    /// A seeded single run on the live broker.
    BrokerRun,
    /// Fail-stop the replay cluster's primary after replication has
    /// drained; later broker steps talk to the surviving follower.
    BrokerKill,
    /// Manually promote the surviving follower to primary (the
    /// operator action `broker_kill` sets the stage for).
    BrokerPromote,
}

impl Op {
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Lint => "lint",
            Op::Plan => "plan",
            Op::Run => "run",
            Op::BrokerPublish => "broker_publish",
            Op::Wait => "wait",
            Op::BrokerPlan => "broker_plan",
            Op::BrokerRun => "broker_run",
            Op::BrokerKill => "broker_kill",
            Op::BrokerPromote => "broker_promote",
        }
    }

    pub fn parse(s: &str) -> Option<Op> {
        match s {
            "lint" => Some(Op::Lint),
            "plan" => Some(Op::Plan),
            "run" => Some(Op::Run),
            "broker_publish" => Some(Op::BrokerPublish),
            "wait" => Some(Op::Wait),
            "broker_plan" => Some(Op::BrokerPlan),
            "broker_run" => Some(Op::BrokerRun),
            "broker_kill" => Some(Op::BrokerKill),
            "broker_promote" => Some(Op::BrokerPromote),
            _ => None,
        }
    }

    /// Whether the step needs a live broker.
    pub fn is_broker(self) -> bool {
        matches!(
            self,
            Op::BrokerPublish
                | Op::Wait
                | Op::BrokerPlan
                | Op::BrokerRun
                | Op::BrokerKill
                | Op::BrokerPromote
        )
    }

    /// Whether the step needs the broker session upgraded to a
    /// two-node failover cluster (primary + quorum-acked follower).
    pub fn is_failover(self) -> bool {
        matches!(self, Op::BrokerKill | Op::BrokerPromote)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Expected verdicts for one step. All fields optional; absent fields
/// assert nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Expect {
    /// Exact error-severity diagnostic count (lint).
    pub errors: Option<u64>,
    /// Lower bound on error-severity diagnostics (lint; for
    /// intentional-failure scenarios whose exact count may evolve).
    pub min_errors: Option<u64>,
    /// Exact valid-plan count (plan / broker_plan).
    pub valid: Option<u64>,
    /// Lower bound on valid plans (plan / broker_plan).
    pub min_valid: Option<u64>,
    /// `BatchSummary::is_secure` must equal this (run).
    pub secure: Option<bool>,
    /// `BatchSummary::is_unfailing` must equal this (run).
    pub unfailing: Option<bool>,
    /// The step must fail with a structured broker error of this kind
    /// (e.g. `no_valid_plan`); success is then a replay failure.
    pub error: Option<String>,
}

impl Expect {
    pub fn is_empty(&self) -> bool {
        *self == Expect::default()
    }
}

/// One step of a run file.
#[derive(Debug, Clone, Default)]
pub struct Step {
    pub op: Option<Op>,
    /// Client name (plan / run / broker_plan / broker_run).
    pub client: Option<String>,
    /// Batch size (run); defaults to 8.
    pub runs: Option<u64>,
    /// Determinism seed (run / broker_run); defaults to 0.
    pub seed: Option<u64>,
    /// Committed (demonic) choice instead of angelic (run/broker_run).
    pub committed: Option<bool>,
    /// Arm plan failover from a recovery table (run).
    pub recover: Option<bool>,
    /// Wait target: broker repository size (wait).
    pub services: Option<u64>,
    pub expect: Expect,
    /// The golden transcript; empty until recorded.
    pub transcript: Vec<String>,
}

impl Step {
    pub fn new(op: Op) -> Step {
        Step {
            op: Some(op),
            ..Step::default()
        }
    }

    /// The operation; run files always carry one (enforced at parse).
    pub fn op(&self) -> Op {
        self.op.expect("step without op")
    }
}

/// A parsed `.sufsrun` document.
#[derive(Debug, Clone)]
pub struct RunFile {
    pub schema_version: u64,
    /// Path of the `.sufs` scenario, relative to the run file's
    /// directory.
    pub scenario: String,
    /// Provenance: the exact `sufs gen` invocation for generated
    /// scenarios, absent for hand-written ones.
    pub generator: Option<String>,
    pub steps: Vec<Step>,
}

/// A run-file parse/validation error.
#[derive(Debug, Clone)]
pub struct RunFileError(pub String);

impl fmt::Display for RunFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RunFileError {}

fn err(msg: impl Into<String>) -> RunFileError {
    RunFileError(msg.into())
}

fn want_u64(v: &Json, key: &str) -> Result<u64, RunFileError> {
    v.as_u64()
        .ok_or_else(|| err(format!("`{key}` must be a non-negative integer")))
}

fn want_bool(v: &Json, key: &str) -> Result<bool, RunFileError> {
    v.as_bool()
        .ok_or_else(|| err(format!("`{key}` must be a boolean")))
}

fn want_str(v: &Json, key: &str) -> Result<String, RunFileError> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| err(format!("`{key}` must be a string")))
}

impl RunFile {
    /// Parses and validates a run-file document. Strict: unknown keys
    /// and operations are errors.
    pub fn parse(text: &str) -> Result<RunFile, RunFileError> {
        let root = json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let Json::Obj(fields) = &root else {
            return Err(err("run file must be a JSON object"));
        };
        let mut file = RunFile {
            schema_version: 0,
            scenario: String::new(),
            generator: None,
            steps: Vec::new(),
        };
        for (key, value) in fields {
            match key.as_str() {
                "schema_version" => file.schema_version = want_u64(value, key)?,
                "scenario" => file.scenario = want_str(value, key)?,
                "generator" => file.generator = Some(want_str(value, key)?),
                "steps" => {
                    let arr = value
                        .as_arr()
                        .ok_or_else(|| err("`steps` must be an array"))?;
                    for (i, step) in arr.iter().enumerate() {
                        file.steps
                            .push(parse_step(step).map_err(|e| err(format!("steps[{i}]: {e}")))?);
                    }
                }
                other => return Err(err(format!("unknown run-file key `{other}`"))),
            }
        }
        if file.schema_version != SCHEMA_VERSION {
            return Err(err(format!(
                "unsupported schema_version {} (this build understands {SCHEMA_VERSION})",
                file.schema_version
            )));
        }
        if file.scenario.is_empty() {
            return Err(err("missing `scenario`"));
        }
        if file.steps.is_empty() {
            return Err(err("`steps` must be a non-empty array"));
        }
        Ok(file)
    }

    /// Whether any step needs a live broker.
    pub fn needs_broker(&self) -> bool {
        self.steps.iter().any(|s| s.op().is_broker())
    }

    /// Serializes back to the canonical pretty-printed form `--record`
    /// writes. `parse ∘ serialize` is the identity on the structure.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            escape(&self.scenario)
        ));
        if let Some(g) = &self.generator {
            out.push_str(&format!("  \"generator\": \"{}\",\n", escape(g)));
        }
        out.push_str("  \"steps\": [\n");
        for (i, step) in self.steps.iter().enumerate() {
            serialize_step(&mut out, step);
            out.push_str(if i + 1 < self.steps.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn parse_step(value: &Json) -> Result<Step, RunFileError> {
    let Json::Obj(fields) = value else {
        return Err(err("step must be an object"));
    };
    let mut step = Step::default();
    for (key, v) in fields {
        match key.as_str() {
            "op" => {
                let name = want_str(v, key)?;
                step.op =
                    Some(Op::parse(&name).ok_or_else(|| err(format!("unknown op `{name}`")))?);
            }
            "client" => step.client = Some(want_str(v, key)?),
            "runs" => step.runs = Some(want_u64(v, key)?),
            "seed" => step.seed = Some(want_u64(v, key)?),
            "committed" => step.committed = Some(want_bool(v, key)?),
            "recover" => step.recover = Some(want_bool(v, key)?),
            "services" => step.services = Some(want_u64(v, key)?),
            "expect" => step.expect = parse_expect(v)?,
            "transcript" => {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| err("`transcript` must be an array of strings"))?;
                for line in arr {
                    step.transcript.push(want_str(line, "transcript line")?);
                }
            }
            other => return Err(err(format!("unknown step key `{other}`"))),
        }
    }
    let op = step.op.ok_or_else(|| err("step missing `op`"))?;
    let needs_client = matches!(op, Op::Plan | Op::Run | Op::BrokerPlan | Op::BrokerRun);
    if needs_client && step.client.is_none() {
        return Err(err(format!("op `{op}` requires a `client`")));
    }
    if op == Op::Wait && step.services.is_none() {
        return Err(err("op `wait` requires `services`"));
    }
    Ok(step)
}

fn parse_expect(value: &Json) -> Result<Expect, RunFileError> {
    let Json::Obj(fields) = value else {
        return Err(err("`expect` must be an object"));
    };
    let mut expect = Expect::default();
    for (key, v) in fields {
        match key.as_str() {
            "errors" => expect.errors = Some(want_u64(v, key)?),
            "min_errors" => expect.min_errors = Some(want_u64(v, key)?),
            "valid" => expect.valid = Some(want_u64(v, key)?),
            "min_valid" => expect.min_valid = Some(want_u64(v, key)?),
            "secure" => expect.secure = Some(want_bool(v, key)?),
            "unfailing" => expect.unfailing = Some(want_bool(v, key)?),
            "error" => expect.error = Some(want_str(v, key)?),
            other => return Err(err(format!("unknown expect key `{other}`"))),
        }
    }
    Ok(expect)
}

fn serialize_step(out: &mut String, step: &Step) {
    out.push_str("    {\n");
    let mut lines: Vec<String> = vec![format!("\"op\": \"{}\"", step.op())];
    if let Some(c) = &step.client {
        lines.push(format!("\"client\": \"{}\"", escape(c)));
    }
    if let Some(r) = step.runs {
        lines.push(format!("\"runs\": {r}"));
    }
    if let Some(s) = step.seed {
        lines.push(format!("\"seed\": {s}"));
    }
    if let Some(c) = step.committed {
        lines.push(format!("\"committed\": {c}"));
    }
    if let Some(r) = step.recover {
        lines.push(format!("\"recover\": {r}"));
    }
    if let Some(s) = step.services {
        lines.push(format!("\"services\": {s}"));
    }
    if !step.expect.is_empty() {
        lines.push(format!("\"expect\": {}", serialize_expect(&step.expect)));
    }
    if step.transcript.is_empty() {
        lines.push("\"transcript\": []".to_owned());
    } else {
        let mut t = String::from("\"transcript\": [\n");
        for (i, line) in step.transcript.iter().enumerate() {
            t.push_str(&format!("        \"{}\"", escape(line)));
            t.push_str(if i + 1 < step.transcript.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        t.push_str("      ]");
        lines.push(t);
    }
    for (i, line) in lines.iter().enumerate() {
        out.push_str("      ");
        out.push_str(line);
        out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("    }");
}

fn serialize_expect(expect: &Expect) -> String {
    let mut parts = Vec::new();
    if let Some(n) = expect.errors {
        parts.push(format!("\"errors\": {n}"));
    }
    if let Some(n) = expect.min_errors {
        parts.push(format!("\"min_errors\": {n}"));
    }
    if let Some(n) = expect.valid {
        parts.push(format!("\"valid\": {n}"));
    }
    if let Some(n) = expect.min_valid {
        parts.push(format!("\"min_valid\": {n}"));
    }
    if let Some(b) = expect.secure {
        parts.push(format!("\"secure\": {b}"));
    }
    if let Some(b) = expect.unfailing {
        parts.push(format!("\"unfailing\": {b}"));
    }
    if let Some(e) = &expect.error {
        parts.push(format!("\"error\": \"{}\"", escape(e)));
    }
    format!("{{{}}}", parts.join(", "))
}

/// Builds the standard run-file skeleton for a generated scenario: the
/// step sequence every corpus entry is exercised with, expectations
/// filled in from the generator's structural facts and transcripts left
/// empty for `sufs replay --record` to fill.
pub fn skeleton(scenario_rel: &str, gen: &crate::gen::Generated, cmd: &str, seed: u64) -> RunFile {
    let mut steps = Vec::new();
    let mut lint = Step::new(Op::Lint);
    lint.expect.errors = Some(0);
    steps.push(lint);
    for client in &gen.clients {
        let mut plan = Step::new(Op::Plan);
        plan.client = Some(client.clone());
        plan.expect.min_valid = Some(1);
        steps.push(plan);
    }
    for client in &gen.clients {
        let mut run = Step::new(Op::Run);
        run.client = Some(client.clone());
        run.runs = Some(8);
        run.seed = Some(seed);
        run.committed = Some(true);
        run.recover = Some(gen.has_faults);
        run.expect.secure = Some(true);
        if !gen.has_faults {
            run.expect.unfailing = Some(true);
        }
        steps.push(run);
    }
    steps.push(Step::new(Op::BrokerPublish));
    let mut wait = Step::new(Op::Wait);
    wait.services = Some(gen.services as u64);
    steps.push(wait);
    for client in &gen.clients {
        let mut plan = Step::new(Op::BrokerPlan);
        plan.client = Some(client.clone());
        plan.expect.min_valid = Some(1);
        steps.push(plan);
    }
    let mut run = Step::new(Op::BrokerRun);
    run.client = Some(gen.clients[0].clone());
    run.seed = Some(seed);
    run.committed = Some(true);
    steps.push(run);
    RunFile {
        schema_version: SCHEMA_VERSION,
        scenario: scenario_rel.to_owned(),
        generator: Some(cmd.to_owned()),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunFile {
        RunFile {
            schema_version: SCHEMA_VERSION,
            scenario: "mesh_0001.sufs".to_owned(),
            generator: Some("sufs gen --profile mesh --services 4 --seed 1".to_owned()),
            steps: vec![
                {
                    let mut s = Step::new(Op::Lint);
                    s.expect.errors = Some(0);
                    s.transcript = vec!["errors=0 warnings=1 infos=0".to_owned()];
                    s
                },
                {
                    let mut s = Step::new(Op::Plan);
                    s.client = Some("c0".to_owned());
                    s.expect.min_valid = Some(1);
                    s.transcript = vec!["valid=2".to_owned(), "✓ 1->svc1_a".to_owned()];
                    s
                },
            ],
        }
    }

    #[test]
    fn serialize_parse_round_trip() {
        let file = sample();
        let text = file.serialize();
        let back = RunFile::parse(&text).expect("round-trip parse");
        assert_eq!(back.scenario, file.scenario);
        assert_eq!(back.generator, file.generator);
        assert_eq!(back.steps.len(), file.steps.len());
        assert_eq!(back.steps[0].expect, file.steps[0].expect);
        assert_eq!(back.steps[1].transcript, file.steps[1].transcript);
        // Serialization is stable: a second round trip is byte-identical.
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn unknown_keys_rejected() {
        let mut text = sample().serialize();
        text = text.replace("\"scenario\"", "\"scenari0\"");
        let e = RunFile::parse(&text).unwrap_err();
        assert!(e.to_string().contains("unknown run-file key"), "{e}");

        let bad_step = sample().serialize().replace("\"client\"", "\"cilent\"");
        let e = RunFile::parse(&bad_step).unwrap_err();
        assert!(e.to_string().contains("unknown step key"), "{e}");

        let bad_expect = sample()
            .serialize()
            .replace("\"min_valid\"", "\"max_valid\"");
        let e = RunFile::parse(&bad_expect).unwrap_err();
        assert!(e.to_string().contains("unknown expect key"), "{e}");

        let bad_op = sample()
            .serialize()
            .replace("\"op\": \"plan\"", "\"op\": \"pln\"");
        let e = RunFile::parse(&bad_op).unwrap_err();
        assert!(e.to_string().contains("unknown op"), "{e}");
    }

    #[test]
    fn failover_ops_parse_serialize_and_need_a_broker() {
        let text = "{\"schema_version\": 1, \"scenario\": \"x.sufs\", \"steps\": [\
                    {\"op\": \"broker_kill\"}, {\"op\": \"broker_promote\"}]}";
        let file = RunFile::parse(text).expect("failover ops parse");
        assert_eq!(file.steps[0].op(), Op::BrokerKill);
        assert_eq!(file.steps[1].op(), Op::BrokerPromote);
        assert!(file.needs_broker());
        assert!(file.steps.iter().all(|s| s.op().is_failover()));
        let back = RunFile::parse(&file.serialize()).expect("round-trip");
        assert_eq!(back.steps[0].op(), Op::BrokerKill);
        assert_eq!(back.serialize(), file.serialize());
    }

    #[test]
    fn missing_required_fields_rejected() {
        let e = RunFile::parse("{\"schema_version\": 1, \"scenario\": \"x\"}").unwrap_err();
        assert!(e.to_string().contains("steps"), "{e}");
        let e = RunFile::parse(
            "{\"schema_version\": 1, \"scenario\": \"x\", \"steps\": [{\"op\": \"plan\"}]}",
        )
        .unwrap_err();
        assert!(e.to_string().contains("requires a `client`"), "{e}");
        let e = RunFile::parse(
            "{\"schema_version\": 2, \"scenario\": \"x\", \"steps\": [{\"op\": \"lint\"}]}",
        )
        .unwrap_err();
        assert!(e.to_string().contains("schema_version"), "{e}");
    }
}
