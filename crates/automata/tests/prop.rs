//! Randomised tests for the automata substrate: determinisation,
//! minimisation and boolean operations preserve/transform languages as
//! specified. Each property is checked over a family of seeded random
//! automata (deterministic in the seed, so failures replay exactly).

use sufs_automata::{Dfa, Nfa};
use sufs_rng::{Rng, SeedableRng, StdRng};

/// A random NFA over the alphabet {0, 1} with up to 6 states.
fn random_nfa(r: &mut StdRng) -> Nfa<u8> {
    let n = r.gen_range(2usize..=6);
    let mut nfa = Nfa::new();
    for _ in 0..n {
        nfa.add_state();
    }
    nfa.set_start(0);
    for s in 0..n {
        if r.gen_bool(0.4) {
            nfa.set_final(s);
        }
    }
    for _ in 0..r.gen_range(0usize..20) {
        let from = r.gen_range(0..n);
        let sym = r.gen_range(0u8..2);
        let to = r.gen_range(0..n);
        nfa.add_transition(from, sym, to);
    }
    nfa
}

fn random_word(r: &mut StdRng) -> Vec<u8> {
    (0..r.gen_range(0usize..10))
        .map(|_| r.gen_range(0u8..2))
        .collect()
}

const CASES: u64 = 300;

#[test]
fn determinize_preserves_language() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let nfa = random_nfa(&mut r);
        let dfa = nfa.determinize();
        for _ in 0..8 {
            let word = random_word(&mut r);
            assert_eq!(
                nfa.accepts(word.iter().copied()),
                dfa.accepts(word.iter().copied()),
                "seed {seed}, word {word:?}"
            );
        }
    }
}

#[test]
fn minimize_preserves_language() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let dfa = random_nfa(&mut r).determinize();
        let min = dfa.minimize();
        for _ in 0..8 {
            let word = random_word(&mut r);
            assert_eq!(
                dfa.accepts(word.iter().copied()),
                min.accepts(word.iter().copied()),
                "seed {seed}, word {word:?}"
            );
        }
    }
}

#[test]
fn minimize_is_idempotent_in_size() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let min = random_nfa(&mut r).determinize().minimize();
        let min2 = min.minimize();
        assert_eq!(min.len(), min2.len(), "seed {seed}");
        assert!(min.equivalent(&min2), "seed {seed}");
    }
}

#[test]
fn complement_flips_membership() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let dfa = random_nfa(&mut r).determinize();
        let comp = dfa.complement();
        for _ in 0..8 {
            let word = random_word(&mut r);
            // Words over the automaton's own alphabet flip membership;
            // words using symbols outside the alphabet are rejected by
            // both.
            let in_alphabet = word.iter().all(|s| dfa.alphabet().contains(s));
            if in_alphabet && dfa.start().is_some() {
                assert_eq!(
                    dfa.accepts(word.iter().copied()),
                    !comp.accepts(word.iter().copied()),
                    "seed {seed}, word {word:?}"
                );
            }
        }
    }
}

#[test]
fn intersection_is_conjunction() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let da = random_nfa(&mut r).determinize();
        let db = random_nfa(&mut r).determinize();
        let i = da.intersect(&db);
        for _ in 0..8 {
            let word = random_word(&mut r);
            assert_eq!(
                i.accepts(word.iter().copied()),
                da.accepts(word.iter().copied()) && db.accepts(word.iter().copied()),
                "seed {seed}, word {word:?}"
            );
        }
    }
}

#[test]
fn equivalence_is_reflexive_after_transformations() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let dfa = random_nfa(&mut r).determinize();
        assert!(dfa.equivalent(&dfa.minimize()), "seed {seed}");
        assert!(dfa.equivalent(&dfa.complete()), "seed {seed}");
        assert!(
            dfa.equivalent(&dfa.complement().complement()),
            "seed {seed}"
        );
    }
}

#[test]
fn shortest_accepted_is_accepted_and_shortest() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let dfa = random_nfa(&mut r).determinize();
        if let Some(w) = dfa.shortest_accepted() {
            assert!(dfa.accepts(w.iter().copied()), "seed {seed}");
            // No strictly shorter accepted word: check all words up to
            // len-1.
            if w.len() <= 6 && !w.is_empty() {
                for len in 0..w.len() {
                    for mask in 0..(1u32 << len) {
                        let cand: Vec<u8> = (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
                        assert!(!dfa.accepts(cand.iter().copied()), "seed {seed}");
                    }
                }
            }
        } else {
            // Empty language: spot-check a few words.
            for w in [vec![], vec![0], vec![1], vec![0, 1], vec![1, 1, 0]] {
                assert!(!dfa.accepts(w.iter().copied()), "seed {seed}");
            }
        }
    }
}

#[test]
fn dfa_from_scratch_equivalence_regression() {
    // Two syntactically different DFAs for "odd length" words.
    let mut d1: Dfa<u8> = Dfa::new([0, 1]);
    let e = d1.add_state(false);
    let o = d1.add_state(true);
    d1.set_start(e);
    for s in [0u8, 1] {
        d1.add_transition(e, s, o);
        d1.add_transition(o, s, e);
    }
    let mut d2: Dfa<u8> = Dfa::new([0, 1]);
    let a = d2.add_state(false);
    let b = d2.add_state(true);
    let c = d2.add_state(false);
    d2.set_start(a);
    for s in [0u8, 1] {
        d2.add_transition(a, s, b);
        d2.add_transition(b, s, c);
        d2.add_transition(c, s, b);
    }
    assert!(d1.equivalent(&d2));
    assert_eq!(d2.minimize().len(), 2);
}
