//! Property tests for the automata substrate: determinisation,
//! minimisation and boolean operations preserve/transform languages as
//! specified.

use proptest::prelude::*;
use sufs_automata::{Dfa, Nfa};

/// Strategy: a random NFA over the alphabet {0, 1} with up to 6 states.
fn arb_nfa() -> impl Strategy<Value = Nfa<u8>> {
    (2usize..=6).prop_flat_map(|n| {
        let trans = proptest::collection::vec((0..n, 0u8..2, 0..n), 0..20);
        let finals = proptest::collection::btree_set(0..n, 0..=n);
        (Just(n), trans, finals).prop_map(|(n, trans, finals)| {
            let mut nfa = Nfa::new();
            for _ in 0..n {
                nfa.add_state();
            }
            nfa.set_start(0);
            for f in finals {
                nfa.set_final(f);
            }
            for (from, sym, to) in trans {
                nfa.add_transition(from, sym, to);
            }
            nfa
        })
    })
}

fn arb_word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..2, 0..10)
}

proptest! {
    #[test]
    fn determinize_preserves_language(nfa in arb_nfa(), word in arb_word()) {
        let dfa = nfa.determinize();
        prop_assert_eq!(
            nfa.accepts(word.iter().copied()),
            dfa.accepts(word.iter().copied())
        );
    }

    #[test]
    fn minimize_preserves_language(nfa in arb_nfa(), word in arb_word()) {
        let dfa = nfa.determinize();
        let min = dfa.minimize();
        prop_assert_eq!(
            dfa.accepts(word.iter().copied()),
            min.accepts(word.iter().copied())
        );
    }

    #[test]
    fn minimize_is_idempotent_in_size(nfa in arb_nfa()) {
        let min = nfa.determinize().minimize();
        let min2 = min.minimize();
        prop_assert_eq!(min.len(), min2.len());
        prop_assert!(min.equivalent(&min2));
    }

    #[test]
    fn complement_flips_membership(nfa in arb_nfa(), word in arb_word()) {
        let dfa = nfa.determinize();
        let comp = dfa.complement();
        // Words over the automaton's own alphabet flip membership; words
        // using symbols outside the alphabet are rejected by both.
        let in_alphabet = word.iter().all(|s| dfa.alphabet().contains(s));
        if in_alphabet && dfa.start().is_some() {
            prop_assert_eq!(
                dfa.accepts(word.iter().copied()),
                !comp.accepts(word.iter().copied())
            );
        }
    }

    #[test]
    fn intersection_is_conjunction(a in arb_nfa(), b in arb_nfa(), word in arb_word()) {
        let da = a.determinize();
        let db = b.determinize();
        let i = da.intersect(&db);
        prop_assert_eq!(
            i.accepts(word.iter().copied()),
            da.accepts(word.iter().copied()) && db.accepts(word.iter().copied())
        );
    }

    #[test]
    fn equivalence_is_reflexive_after_transformations(nfa in arb_nfa()) {
        let dfa = nfa.determinize();
        prop_assert!(dfa.equivalent(&dfa.minimize()));
        prop_assert!(dfa.equivalent(&dfa.complete()));
        prop_assert!(dfa.equivalent(&dfa.complement().complement()));
    }

    #[test]
    fn shortest_accepted_is_accepted_and_shortest(nfa in arb_nfa()) {
        let dfa = nfa.determinize();
        if let Some(w) = dfa.shortest_accepted() {
            prop_assert!(dfa.accepts(w.iter().copied()));
            // No strictly shorter accepted word: check all words up to len-1.
            if w.len() <= 6 && !w.is_empty() {
                for len in 0..w.len() {
                    for mask in 0..(1u32 << len) {
                        let cand: Vec<u8> =
                            (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
                        prop_assert!(!dfa.accepts(cand.iter().copied()));
                    }
                }
            }
        } else {
            // Empty language: spot-check a few words.
            for w in [vec![], vec![0], vec![1], vec![0, 1], vec![1, 1, 0]] {
                prop_assert!(!dfa.accepts(w.iter().copied()));
            }
        }
    }
}

#[test]
fn dfa_from_scratch_equivalence_regression() {
    // Two syntactically different DFAs for "odd length" words.
    let mut d1: Dfa<u8> = Dfa::new([0, 1]);
    let e = d1.add_state(false);
    let o = d1.add_state(true);
    d1.set_start(e);
    for s in [0u8, 1] {
        d1.add_transition(e, s, o);
        d1.add_transition(o, s, e);
    }
    let mut d2: Dfa<u8> = Dfa::new([0, 1]);
    let a = d2.add_state(false);
    let b = d2.add_state(true);
    let c = d2.add_state(false);
    d2.set_start(a);
    for s in [0u8, 1] {
        d2.add_transition(a, s, b);
        d2.add_transition(b, s, c);
        d2.add_transition(c, s, b);
    }
    assert!(d1.equivalent(&d2));
    assert_eq!(d2.minimize().len(), 2);
}
