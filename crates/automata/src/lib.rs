//! Generic finite automata and transition-system substrate.
//!
//! The static analyses of *Secure and Unfailing Services* reduce both
//! security (§3.1) and compliance (§4, Theorem 1) to reachability/emptiness
//! questions on finite automata. This crate provides the shared machinery:
//!
//! * [`nfa::Nfa`] — nondeterministic finite automata over an arbitrary
//!   symbol type, with subset construction;
//! * [`dfa::Dfa`] — deterministic automata with product, complement,
//!   emptiness (with witness words), Hopcroft minimisation and language
//!   equivalence;
//! * [`lts::Explorer`] — a bounded breadth-first state-space explorer used
//!   to build the transition systems of contracts, sessions and networks
//!   from a successor function;
//! * [`dot`] — Graphviz rendering for debugging and documentation.
//!
//! # Example
//!
//! ```
//! use sufs_automata::nfa::Nfa;
//!
//! // An NFA accepting words containing "ab".
//! let mut n = Nfa::new();
//! let q0 = n.add_state();
//! let q1 = n.add_state();
//! let q2 = n.add_state();
//! n.set_start(q0);
//! n.set_final(q2);
//! n.add_transition(q0, 'a', q0);
//! n.add_transition(q0, 'b', q0);
//! n.add_transition(q0, 'a', q1);
//! n.add_transition(q1, 'b', q2);
//! n.add_transition(q2, 'a', q2);
//! n.add_transition(q2, 'b', q2);
//! assert!(n.accepts("xaby".chars().filter(|c| *c == 'a' || *c == 'b')));
//! let d = n.determinize();
//! assert!(d.accepts("aab".chars()));
//! assert!(!d.accepts("ba".chars()));
//! ```

#![warn(missing_docs)]

pub mod dfa;
pub mod dot;
pub mod lts;
pub mod nfa;

pub use dfa::Dfa;
pub use lts::Explorer;
pub use nfa::Nfa;

/// The trait bound every automaton symbol must satisfy.
///
/// This is a blanket-implemented alias; never implement it manually.
pub trait Symbol: Clone + Eq + std::hash::Hash + Ord {}

impl<T: Clone + Eq + std::hash::Hash + Ord> Symbol for T {}
