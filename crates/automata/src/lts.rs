//! A generic bounded breadth-first state-space explorer.
//!
//! Contracts, sessions and whole network configurations all induce
//! labelled transition systems given by a *successor function*. The
//! [`Explorer`] materialises the reachable fragment with hash-consed
//! states, and offers reachability queries with path witnesses.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// The reachable fragment of a transition system, built by [`Explorer`].
#[derive(Debug, Clone)]
pub struct Lts<K, L> {
    states: Vec<K>,
    edges: Vec<Vec<(L, usize)>>,
}

/// An error signalling that exploration hit the state bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundExceeded {
    /// The configured bound.
    pub bound: usize,
}

impl std::fmt::Display for BoundExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exploration exceeded the bound of {} states", self.bound)
    }
}

impl std::error::Error for BoundExceeded {}

/// A bounded breadth-first explorer over states of type `K` with edge
/// labels of type `L`.
///
/// # Examples
///
/// ```
/// use sufs_automata::Explorer;
///
/// // Collatz-style toy system, bounded.
/// let lts = Explorer::new(10_000)
///     .explore(6u64, |&n| {
///         if n == 1 { vec![] }
///         else if n % 2 == 0 { vec![("half", n / 2)] }
///         else { vec![("triple", 3 * n + 1)] }
///     })
///     .unwrap();
/// assert!(lts.len() >= 8);
/// assert!(lts.find_state(&1).is_some());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    bound: usize,
}

impl Explorer {
    /// Creates an explorer that fails beyond `bound` states.
    pub fn new(bound: usize) -> Self {
        Explorer { bound }
    }

    /// Explores from `initial` using `succ`, breadth first.
    ///
    /// # Errors
    ///
    /// Returns [`BoundExceeded`] if more than `bound` distinct states are
    /// reachable.
    pub fn explore<K, L, F>(&self, initial: K, mut succ: F) -> Result<Lts<K, L>, BoundExceeded>
    where
        K: Clone + Eq + Hash,
        F: FnMut(&K) -> Vec<(L, K)>,
    {
        let mut states = vec![initial.clone()];
        let mut index: HashMap<K, usize> = HashMap::from([(initial, 0)]);
        let mut edges: Vec<Vec<(L, usize)>> = Vec::new();
        let mut next = 0usize;
        while next < states.len() {
            let state = states[next].clone();
            let mut out = Vec::new();
            for (label, s2) in succ(&state) {
                let id = match index.get(&s2) {
                    Some(&id) => id,
                    None => {
                        let id = states.len();
                        if id >= self.bound {
                            return Err(BoundExceeded { bound: self.bound });
                        }
                        index.insert(s2.clone(), id);
                        states.push(s2);
                        id
                    }
                };
                out.push((label, id));
            }
            edges.push(out);
            next += 1;
        }
        Ok(Lts { states, edges })
    }
}

impl Default for Explorer {
    /// An explorer with a generous default bound of 2²⁰ states.
    fn default() -> Self {
        Explorer::new(1 << 20)
    }
}

impl<K: Eq, L> Lts<K, L> {
    /// The number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if there are no states (cannot happen: the initial state is
    /// always present).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The initial state id (always `0`).
    pub fn initial(&self) -> usize {
        0
    }

    /// The state value at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> &K {
        &self.states[id]
    }

    /// Outgoing edges of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edges(&self, id: usize) -> &[(L, usize)] {
        &self.edges[id]
    }

    /// Finds the id of a state equal to `k`.
    pub fn find_state(&self, k: &K) -> Option<usize> {
        self.states.iter().position(|s| s == k)
    }

    /// Iterates over `(source, label, target)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, &L, usize)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(s, out)| out.iter().map(move |(l, t)| (s, l, *t)))
    }

    /// Ids of states with no outgoing edges.
    pub fn sink_states(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, out)| out.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Breadth-first shortest path (as labels) from the initial state to
    /// the first state satisfying `pred`, together with that state's id.
    pub fn find_path<P>(&self, mut pred: P) -> Option<(Vec<&L>, usize)>
    where
        P: FnMut(&K) -> bool,
    {
        let mut prev: Vec<Option<(usize, &L)>> = vec![None; self.states.len()];
        let mut seen = vec![false; self.states.len()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(q) = queue.pop_front() {
            if pred(&self.states[q]) {
                let mut path = Vec::new();
                let mut cur = q;
                while let Some((p, l)) = prev[cur] {
                    path.push(l);
                    cur = p;
                }
                path.reverse();
                return Some((path, q));
            }
            for (l, t) in &self.edges[q] {
                if !seen[*t] {
                    seen[*t] = true;
                    prev[*t] = Some((q, l));
                    queue.push_back(*t);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_lts(max: u32) -> Lts<u32, char> {
        Explorer::new(1000)
            .explore(
                0u32,
                |&n| {
                    if n >= max {
                        vec![]
                    } else {
                        vec![('i', n + 1)]
                    }
                },
            )
            .unwrap()
    }

    #[test]
    fn explores_all_reachable_states() {
        let lts = counter_lts(5);
        assert_eq!(lts.len(), 6);
        assert_eq!(lts.sink_states(), vec![5]);
        assert!(!lts.is_empty());
    }

    #[test]
    fn bound_is_respected() {
        let err = Explorer::new(3)
            .explore(0u32, |&n| vec![('i', n + 1)])
            .unwrap_err();
        assert_eq!(err, BoundExceeded { bound: 3 });
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn find_path_returns_shortest() {
        // Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3, plus a long detour 0 -> 4 -> ... -> 3
        let lts = Explorer::default()
            .explore(0u8, |&n| match n {
                0 => vec![('a', 1), ('b', 2), ('c', 4)],
                1 | 2 => vec![('d', 3)],
                4 => vec![('e', 5)],
                5 => vec![('f', 3)],
                _ => vec![],
            })
            .unwrap();
        let (path, id) = lts.find_path(|&k| k == 3).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(*lts.state(id), 3);
    }

    #[test]
    fn find_path_none_when_unreachable() {
        let lts = counter_lts(2);
        assert!(lts.find_path(|&k| k == 42).is_none());
    }

    #[test]
    fn merges_confluent_states() {
        // 0 -> 1 and 0 -> 1 via two labels: one state, two edges.
        let lts = Explorer::default()
            .explore(0u8, |&n| {
                if n == 0 {
                    vec![('x', 1), ('y', 1)]
                } else {
                    vec![]
                }
            })
            .unwrap();
        assert_eq!(lts.len(), 2);
        assert_eq!(lts.edges(0).len(), 2);
        assert_eq!(lts.iter_edges().count(), 2);
    }
}
