//! Graphviz DOT rendering of automata and transition systems.

use std::fmt::Display;
use std::fmt::Write as _;

use crate::dfa::Dfa;
use crate::lts::Lts;
use crate::nfa::Nfa;
use crate::Symbol;

/// Renders an NFA in DOT format. Final states are double circles; start
/// states get an incoming arrow from a point node.
pub fn nfa_to_dot<S: Symbol + Display>(nfa: &Nfa<S>) -> String {
    let mut out = String::from("digraph nfa {\n  rankdir=LR;\n  init [shape=point];\n");
    for q in 0..nfa.len() {
        let shape = if nfa.is_final(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{q} [shape={shape}];");
    }
    for q in nfa.starts() {
        let _ = writeln!(out, "  init -> q{q};");
    }
    for q in 0..nfa.len() {
        for (s, t) in nfa.transitions_from(q) {
            let _ = writeln!(out, "  q{q} -> q{t} [label=\"{s}\"];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a DFA in DOT format.
pub fn dfa_to_dot<S: Symbol + Display>(dfa: &Dfa<S>) -> String {
    let mut out = String::from("digraph dfa {\n  rankdir=LR;\n  init [shape=point];\n");
    for q in 0..dfa.len() {
        let shape = if dfa.is_final(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{q} [shape={shape}];");
    }
    if let Some(s) = dfa.start() {
        let _ = writeln!(out, "  init -> q{s};");
    }
    for q in 0..dfa.len() {
        for sym in dfa.alphabet().clone() {
            if let Some(t) = dfa.step(q, &sym) {
                let _ = writeln!(out, "  q{q} -> q{t} [label=\"{sym}\"];");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an explored LTS in DOT format; sink states are double circles.
pub fn lts_to_dot<K: Eq, L: Display>(lts: &Lts<K, L>) -> String {
    let mut out = String::from("digraph lts {\n  rankdir=LR;\n");
    let sinks = lts.sink_states();
    for q in 0..lts.len() {
        let shape = if sinks.contains(&q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{q} [shape={shape}];");
    }
    for (s, l, t) in lts.iter_edges() {
        let _ = writeln!(out, "  q{s} -> q{t} [label=\"{l}\"];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::Explorer;

    #[test]
    fn nfa_dot_structure() {
        let mut n: Nfa<char> = Nfa::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_start(q0);
        n.set_final(q1);
        n.add_transition(q0, 'a', q1);
        let dot = nfa_to_dot(&n);
        assert!(dot.contains("q0 -> q1 [label=\"a\"]"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("init -> q0"));
    }

    #[test]
    fn dfa_dot_structure() {
        let mut d: Dfa<char> = Dfa::new(['a']);
        let q0 = d.add_state(false);
        let q1 = d.add_state(true);
        d.set_start(q0);
        d.add_transition(q0, 'a', q1);
        let dot = dfa_to_dot(&d);
        assert!(dot.contains("q0 -> q1 [label=\"a\"]"));
    }

    #[test]
    fn lts_dot_structure() {
        let lts = Explorer::default()
            .explore(0u8, |&n| if n == 0 { vec![("go", 1)] } else { vec![] })
            .unwrap();
        let dot = lts_to_dot(&lts);
        assert!(dot.contains("q0 -> q1 [label=\"go\"]"));
        assert!(dot.contains("q1 [shape=doublecircle]"));
    }
}
