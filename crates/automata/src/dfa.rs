//! Deterministic finite automata: product, complement, emptiness,
//! minimisation and language equivalence.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::Symbol;

/// A deterministic finite automaton over an explicit alphabet.
///
/// The transition function is *total over the alphabet*: symbols with no
/// explicit transition go to an implicit non-final sink, and symbols
/// outside the alphabet are rejected outright. This matches how the
/// analyses use DFAs (policy automata determinised over the ground events
/// of a system).
#[derive(Debug, Clone)]
pub struct Dfa<S> {
    alphabet: BTreeSet<S>,
    num_states: usize,
    start: Option<usize>,
    finals: BTreeSet<usize>,
    trans: HashMap<(usize, S), usize>,
}

impl<S: Symbol> Dfa<S> {
    /// Creates an automaton with the given alphabet and no states.
    pub fn new<I>(alphabet: I) -> Self
    where
        I: IntoIterator<Item = S>,
    {
        Dfa {
            alphabet: alphabet.into_iter().collect(),
            num_states: 0,
            start: None,
            finals: BTreeSet::new(),
            trans: HashMap::new(),
        }
    }

    /// Adds a fresh state, final iff `is_final`, returning its index.
    pub fn add_state(&mut self, is_final: bool) -> usize {
        let id = self.num_states;
        self.num_states += 1;
        if is_final {
            self.finals.insert(id);
        }
        id
    }

    /// Sets the start state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_start(&mut self, q: usize) {
        assert!(q < self.num_states, "state {q} out of range");
        self.start = Some(q);
    }

    /// Adds (or overwrites) the transition `from ──sym──▸ to`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range or `sym` is not in the alphabet.
    pub fn add_transition(&mut self, from: usize, sym: S, to: usize) {
        assert!(from < self.num_states, "state {from} out of range");
        assert!(to < self.num_states, "state {to} out of range");
        assert!(self.alphabet.contains(&sym), "symbol not in alphabet");
        self.trans.insert((from, sym), to);
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &BTreeSet<S> {
        &self.alphabet
    }

    /// The number of states (not counting the implicit sink).
    pub fn len(&self) -> usize {
        self.num_states
    }

    /// Returns `true` if the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.num_states == 0
    }

    /// The start state, if set.
    pub fn start(&self) -> Option<usize> {
        self.start
    }

    /// Returns `true` if `q` is final.
    pub fn is_final(&self, q: usize) -> bool {
        self.finals.contains(&q)
    }

    /// One step; `None` means the implicit sink (or an unknown symbol).
    pub fn step(&self, from: usize, sym: &S) -> Option<usize> {
        self.trans.get(&(from, sym.clone())).copied()
    }

    /// Runs the automaton from the start state; `None` means the run fell
    /// into the sink or no start state is set.
    pub fn run<I>(&self, word: I) -> Option<usize>
    where
        I: IntoIterator<Item = S>,
    {
        let mut q = self.start?;
        for sym in word {
            q = self.step(q, &sym)?;
        }
        Some(q)
    }

    /// Returns `true` if the automaton accepts the word.
    pub fn accepts<I>(&self, word: I) -> bool
    where
        I: IntoIterator<Item = S>,
    {
        self.run(word).is_some_and(|q| self.is_final(q))
    }

    /// Completes the transition function by materialising the sink state,
    /// so every state has a transition on every alphabet symbol.
    /// Needed before [`Dfa::complement`].
    pub fn complete(&self) -> Dfa<S> {
        let mut out = self.clone();
        let needs_sink = out.num_states == 0
            || (0..out.num_states).any(|q| {
                out.alphabet
                    .iter()
                    .any(|s| !out.trans.contains_key(&(q, s.clone())))
            });
        if !needs_sink {
            return out;
        }
        let sink = out.add_state(false);
        let alphabet: Vec<S> = out.alphabet.iter().cloned().collect();
        for q in 0..out.num_states {
            for s in &alphabet {
                out.trans.entry((q, s.clone())).or_insert(sink);
            }
        }
        if out.start.is_none() {
            out.start = Some(sink);
        }
        out
    }

    /// The complement automaton (over the same alphabet).
    pub fn complement(&self) -> Dfa<S> {
        let mut c = self.complete();
        let all: BTreeSet<usize> = (0..c.num_states).collect();
        c.finals = all.difference(&c.finals).copied().collect();
        c
    }

    /// The product automaton with finals chosen by `combine` from the two
    /// component acceptance bits. `combine = &|a, b| a && b` gives the
    /// intersection, `&|a, b| a != b` the symmetric difference.
    ///
    /// Both automata are completed first; the product alphabet is the
    /// union of the two alphabets.
    pub fn product(&self, other: &Dfa<S>, combine: &dyn Fn(bool, bool) -> bool) -> Dfa<S> {
        let alphabet: BTreeSet<S> = self.alphabet.union(&other.alphabet).cloned().collect();
        let mut a = self.clone();
        a.alphabet = alphabet.clone();
        let mut b = other.clone();
        b.alphabet = alphabet.clone();
        let a = a.complete();
        let b = b.complete();

        let mut out = Dfa::new(alphabet.iter().cloned());
        let (sa, sb) = match (a.start, b.start) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return out,
        };
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut queue = VecDeque::new();
        let s0 = out.add_state(combine(a.is_final(sa), b.is_final(sb)));
        out.set_start(s0);
        index.insert((sa, sb), s0);
        queue.push_back((sa, sb));
        while let Some((qa, qb)) = queue.pop_front() {
            let from = index[&(qa, qb)];
            for sym in &alphabet {
                let (na, nb) = match (a.step(qa, sym), b.step(qb, sym)) {
                    (Some(na), Some(nb)) => (na, nb),
                    _ => continue, // both complete: unreachable
                };
                let to = match index.get(&(na, nb)) {
                    Some(&id) => id,
                    None => {
                        let id = out.add_state(combine(a.is_final(na), b.is_final(nb)));
                        index.insert((na, nb), id);
                        queue.push_back((na, nb));
                        id
                    }
                };
                out.add_transition(from, sym.clone(), to);
            }
        }
        out
    }

    /// The intersection `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Dfa<S>) -> Dfa<S> {
        self.product(other, &|a, b| a && b)
    }

    /// Emptiness check with witness: a shortest accepted word, or `None`
    /// if the language is empty.
    pub fn shortest_accepted(&self) -> Option<Vec<S>> {
        let start = self.start?;
        let mut seen = vec![false; self.num_states];
        let mut queue: VecDeque<(usize, Vec<S>)> = VecDeque::new();
        seen[start] = true;
        queue.push_back((start, Vec::new()));
        while let Some((q, word)) = queue.pop_front() {
            if self.is_final(q) {
                return Some(word);
            }
            for sym in &self.alphabet {
                if let Some(n) = self.step(q, sym) {
                    if !seen[n] {
                        seen[n] = true;
                        let mut w = word.clone();
                        w.push(sym.clone());
                        queue.push_back((n, w));
                    }
                }
            }
        }
        None
    }

    /// Returns `true` if the language is empty.
    pub fn language_is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// Returns `true` if the two automata accept the same language,
    /// decided via the symmetric-difference product.
    pub fn equivalent(&self, other: &Dfa<S>) -> bool {
        self.product(other, &|a, b| a != b).language_is_empty()
    }

    /// Moore/Hopcroft-style minimisation: removes unreachable states and
    /// merges language-equivalent ones. The result is complete.
    pub fn minimize(&self) -> Dfa<S> {
        let c = self.complete();
        let start = match c.start {
            Some(s) => s,
            None => return c,
        };
        // 1. Keep only reachable states.
        let mut reach = vec![false; c.num_states];
        let mut queue = VecDeque::from([start]);
        reach[start] = true;
        while let Some(q) = queue.pop_front() {
            for sym in &c.alphabet {
                if let Some(n) = c.step(q, sym) {
                    if !reach[n] {
                        reach[n] = true;
                        queue.push_back(n);
                    }
                }
            }
        }
        let reachable: Vec<usize> = (0..c.num_states).filter(|q| reach[*q]).collect();
        // 2. Partition refinement.
        let mut class: Vec<usize> = (0..c.num_states)
            .map(|q| usize::from(c.is_final(q)))
            .collect();
        loop {
            // signature: (class, [class of successor per symbol])
            let mut sig_index: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut next_class = vec![0usize; c.num_states];
            for &q in &reachable {
                let sig: Vec<usize> = c
                    .alphabet
                    .iter()
                    .map(|s| class[c.step(q, s).expect("complete")])
                    .collect();
                let key = (class[q], sig);
                let n = sig_index.len();
                let id = *sig_index.entry(key).or_insert(n);
                next_class[q] = id;
            }
            if reachable.iter().all(|&q| next_class[q] == class[q])
                && sig_index.len()
                    == reachable
                        .iter()
                        .map(|&q| class[q])
                        .collect::<BTreeSet<_>>()
                        .len()
            {
                break;
            }
            class = next_class;
        }
        // 3. Build the quotient.
        let classes: BTreeSet<usize> = reachable.iter().map(|&q| class[q]).collect();
        let remap: HashMap<usize, usize> =
            classes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut out = Dfa::new(c.alphabet.iter().cloned());
        // representative per class
        let mut rep: HashMap<usize, usize> = HashMap::new();
        for &q in &reachable {
            rep.entry(class[q]).or_insert(q);
        }
        for _ in 0..classes.len() {
            out.add_state(false);
        }
        for (&cls, &r) in &rep {
            if c.is_final(r) {
                out.finals.insert(remap[&cls]);
            }
        }
        out.start = Some(remap[&class[start]]);
        for (&cls, &r) in &rep {
            for sym in &c.alphabet {
                let n = c.step(r, sym).expect("complete");
                out.add_transition(remap[&cls], sym.clone(), remap[&class[n]]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA over {a,b} accepting words with an even number of 'a'.
    fn even_a() -> Dfa<char> {
        let mut d = Dfa::new(['a', 'b']);
        let e = d.add_state(true);
        let o = d.add_state(false);
        d.set_start(e);
        d.add_transition(e, 'a', o);
        d.add_transition(o, 'a', e);
        d.add_transition(e, 'b', e);
        d.add_transition(o, 'b', o);
        d
    }

    /// DFA accepting words ending in 'b'.
    fn ends_b() -> Dfa<char> {
        let mut d = Dfa::new(['a', 'b']);
        let q0 = d.add_state(false);
        let q1 = d.add_state(true);
        d.set_start(q0);
        d.add_transition(q0, 'a', q0);
        d.add_transition(q0, 'b', q1);
        d.add_transition(q1, 'a', q0);
        d.add_transition(q1, 'b', q1);
        d
    }

    #[test]
    fn run_and_accept() {
        let d = even_a();
        assert!(d.accepts("".chars()));
        assert!(d.accepts("aab".chars()));
        assert!(d.accepts("aba".chars()));
        assert!(!d.accepts("ab".chars()));
    }

    #[test]
    fn missing_transition_rejects() {
        let mut d = Dfa::new(['a', 'b']);
        let q0 = d.add_state(false);
        let q1 = d.add_state(true);
        d.set_start(q0);
        d.add_transition(q0, 'a', q1);
        assert!(d.accepts("a".chars()));
        assert!(!d.accepts("ab".chars())); // q1 has no 'b': sink
        assert!(!d.accepts("c".chars())); // not in alphabet
    }

    #[test]
    fn complete_adds_sink() {
        let mut d = Dfa::new(['a']);
        let q0 = d.add_state(true);
        d.set_start(q0);
        let c = d.complete();
        assert_eq!(c.len(), 2);
        assert!(c.accepts("".chars()));
        assert!(!c.accepts("a".chars()));
    }

    #[test]
    fn complement_flips_acceptance() {
        let d = even_a();
        let c = d.complement();
        for w in ["", "a", "aa", "ab", "ba", "bab"] {
            assert_eq!(d.accepts(w.chars()), !c.accepts(w.chars()), "word {w:?}");
        }
    }

    #[test]
    fn intersection_semantics() {
        let d = even_a().intersect(&ends_b());
        assert!(d.accepts("b".chars()));
        assert!(d.accepts("aab".chars()));
        assert!(!d.accepts("ab".chars())); // odd a
        assert!(!d.accepts("aa".chars())); // not ending in b
    }

    #[test]
    fn emptiness_and_witness() {
        let d = even_a().intersect(&even_a().complement());
        assert!(d.language_is_empty());
        let w = ends_b().shortest_accepted().unwrap();
        assert_eq!(w, vec!['b']);
    }

    #[test]
    fn equivalence() {
        let d1 = even_a();
        let d2 = even_a().minimize();
        assert!(d1.equivalent(&d2));
        assert!(!d1.equivalent(&ends_b()));
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        // Build even_a with redundant duplicated states.
        let mut d = Dfa::new(['a', 'b']);
        let e1 = d.add_state(true);
        let o1 = d.add_state(false);
        let e2 = d.add_state(true);
        let o2 = d.add_state(false);
        d.set_start(e1);
        d.add_transition(e1, 'a', o1);
        d.add_transition(o1, 'a', e2);
        d.add_transition(e2, 'a', o2);
        d.add_transition(o2, 'a', e1);
        for (q, _) in [(e1, 0), (o1, 0), (e2, 0), (o2, 0)] {
            d.add_transition(q, 'b', q);
        }
        let m = d.minimize();
        assert_eq!(m.len(), 2);
        assert!(m.equivalent(&even_a()));
    }

    #[test]
    fn minimize_drops_unreachable_states() {
        let mut d = even_a();
        let junk = d.add_state(true);
        d.add_transition(junk, 'a', junk);
        let m = d.minimize();
        assert_eq!(m.len(), 2);
        assert!(m.equivalent(&even_a()));
    }

    #[test]
    fn product_with_different_alphabets() {
        let mut d1 = Dfa::new(['a']);
        let p = d1.add_state(false);
        let q = d1.add_state(true);
        d1.set_start(p);
        d1.add_transition(p, 'a', q);
        let mut d2 = Dfa::new(['b']);
        let r = d2.add_state(true);
        d2.set_start(r);
        d2.add_transition(r, 'b', r);
        // L1 = {a}, L2 = {b}* — intersection over union alphabet = ∅
        // (any 'a' kills d2, any 'b' kills d1 except staying non-final).
        let i = d1.intersect(&d2);
        assert!(i.language_is_empty());
    }
}
