//! Nondeterministic finite automata over arbitrary symbol types.

use std::collections::{BTreeSet, HashMap};

use crate::dfa::Dfa;
use crate::Symbol;

/// A nondeterministic finite automaton.
///
/// States are dense `usize` indices. There are no ε-transitions: the
/// analyses of this workspace never need them, and their absence keeps
/// subset construction and stepping simple and fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa<S> {
    num_states: usize,
    starts: BTreeSet<usize>,
    finals: BTreeSet<usize>,
    trans: HashMap<usize, Vec<(S, usize)>>,
}

impl<S: Symbol> Nfa<S> {
    /// Creates an empty automaton with no states.
    pub fn new() -> Self {
        Nfa {
            num_states: 0,
            starts: BTreeSet::new(),
            finals: BTreeSet::new(),
            trans: HashMap::new(),
        }
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        let id = self.num_states;
        self.num_states += 1;
        id
    }

    /// Marks `q` as a start state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a state of the automaton.
    pub fn set_start(&mut self, q: usize) {
        assert!(q < self.num_states, "state {q} out of range");
        self.starts.insert(q);
    }

    /// Marks `q` as a final (accepting) state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a state of the automaton.
    pub fn set_final(&mut self, q: usize) {
        assert!(q < self.num_states, "state {q} out of range");
        self.finals.insert(q);
    }

    /// Adds the transition `from ──sym──▸ to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, from: usize, sym: S, to: usize) {
        assert!(from < self.num_states, "state {from} out of range");
        assert!(to < self.num_states, "state {to} out of range");
        self.trans.entry(from).or_default().push((sym, to));
    }

    /// The number of states.
    pub fn len(&self) -> usize {
        self.num_states
    }

    /// Returns `true` if the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.num_states == 0
    }

    /// The start states.
    pub fn starts(&self) -> &BTreeSet<usize> {
        &self.starts
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<usize> {
        &self.finals
    }

    /// Returns `true` if `q` is final.
    pub fn is_final(&self, q: usize) -> bool {
        self.finals.contains(&q)
    }

    /// The outgoing transitions of `q`.
    pub fn transitions_from(&self, q: usize) -> &[(S, usize)] {
        self.trans.get(&q).map_or(&[], Vec::as_slice)
    }

    /// All distinct symbols appearing on transitions.
    pub fn alphabet(&self) -> BTreeSet<S> {
        self.trans
            .values()
            .flat_map(|v| v.iter().map(|(s, _)| s.clone()))
            .collect()
    }

    /// One simultaneous step of the state set `from` on `sym`.
    pub fn step(&self, from: &BTreeSet<usize>, sym: &S) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for q in from {
            for (s, to) in self.transitions_from(*q) {
                if s == sym {
                    out.insert(*to);
                }
            }
        }
        out
    }

    /// Runs the automaton on a word, returning the final state set.
    pub fn run<I>(&self, word: I) -> BTreeSet<usize>
    where
        I: IntoIterator<Item = S>,
    {
        let mut set = self.starts.clone();
        for sym in word {
            set = self.step(&set, &sym);
        }
        set
    }

    /// Returns `true` if the automaton accepts the word.
    pub fn accepts<I>(&self, word: I) -> bool
    where
        I: IntoIterator<Item = S>,
    {
        self.run(word).iter().any(|q| self.is_final(*q))
    }

    /// Subset construction: the equivalent deterministic automaton over
    /// the alphabet of this automaton. Symbols outside the alphabet lead
    /// to the (implicit) empty state set, which the resulting [`Dfa`]
    /// models with a non-final sink.
    pub fn determinize(&self) -> Dfa<S> {
        let alphabet: Vec<S> = self.alphabet().into_iter().collect();
        let mut dfa = Dfa::new(alphabet.iter().cloned());
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut queue: Vec<BTreeSet<usize>> = Vec::new();

        let start_set = self.starts.clone();
        let d0 = dfa.add_state(start_set.iter().any(|q| self.is_final(*q)));
        dfa.set_start(d0);
        index.insert(start_set.clone(), d0);
        queue.push(start_set);

        while let Some(set) = queue.pop() {
            let from = index[&set];
            for sym in &alphabet {
                let next = self.step(&set, sym);
                let to = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.add_state(next.iter().any(|q| self.is_final(*q)));
                        index.insert(next.clone(), id);
                        queue.push(next.clone());
                        id
                    }
                };
                dfa.add_transition(from, sym.clone(), to);
            }
        }
        dfa
    }

    /// Breadth-first search for a shortest accepted word.
    ///
    /// Returns `None` if the language is empty.
    pub fn shortest_accepted(&self) -> Option<Vec<S>> {
        use std::collections::VecDeque;
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        let mut queue: VecDeque<(BTreeSet<usize>, Vec<S>)> = VecDeque::new();
        queue.push_back((self.starts.clone(), Vec::new()));
        seen.insert(self.starts.clone());
        let alphabet = self.alphabet();
        while let Some((set, word)) = queue.pop_front() {
            if set.iter().any(|q| self.is_final(*q)) {
                return Some(word);
            }
            for sym in &alphabet {
                let next = self.step(&set, sym);
                if next.is_empty() || seen.contains(&next) {
                    continue;
                }
                seen.insert(next.clone());
                let mut w = word.clone();
                w.push(sym.clone());
                queue.push_back((next, w));
            }
        }
        None
    }
}

impl<S: Symbol> Default for Nfa<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for "words over {a,b} ending in ab".
    fn ends_in_ab() -> Nfa<char> {
        let mut n = Nfa::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.set_start(q0);
        n.set_final(q2);
        n.add_transition(q0, 'a', q0);
        n.add_transition(q0, 'b', q0);
        n.add_transition(q0, 'a', q1);
        n.add_transition(q1, 'b', q2);
        n
    }

    #[test]
    fn accepts_and_rejects() {
        let n = ends_in_ab();
        assert!(n.accepts("ab".chars()));
        assert!(n.accepts("babab".chars()));
        assert!(!n.accepts("ba".chars()));
        assert!(!n.accepts("".chars()));
    }

    #[test]
    fn step_is_simultaneous() {
        let n = ends_in_ab();
        let after_a = n.step(&n.starts().clone(), &'a');
        assert_eq!(after_a, BTreeSet::from([0, 1]));
    }

    #[test]
    fn determinize_preserves_language() {
        let n = ends_in_ab();
        let d = n.determinize();
        for w in ["", "a", "b", "ab", "ba", "aab", "abab", "abba", "bbab"] {
            assert_eq!(
                n.accepts(w.chars()),
                d.accepts(w.chars()),
                "disagreement on {w:?}"
            );
        }
    }

    #[test]
    fn shortest_accepted_finds_minimum() {
        let n = ends_in_ab();
        assert_eq!(n.shortest_accepted(), Some(vec!['a', 'b']));
    }

    #[test]
    fn empty_language_has_no_witness() {
        let mut n: Nfa<char> = Nfa::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_start(q0);
        n.set_final(q1); // unreachable: no transitions
        assert_eq!(n.shortest_accepted(), None);
    }

    #[test]
    fn alphabet_collects_symbols() {
        let n = ends_in_ab();
        assert_eq!(n.alphabet(), BTreeSet::from(['a', 'b']));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_to_unknown_state_panics() {
        let mut n: Nfa<char> = Nfa::new();
        let q0 = n.add_state();
        n.add_transition(q0, 'a', 5);
    }

    #[test]
    fn works_with_string_symbols() {
        let mut n: Nfa<String> = Nfa::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_start(q0);
        n.set_final(q1);
        n.add_transition(q0, "hello".to_owned(), q1);
        assert!(n.accepts(["hello".to_owned()]));
        assert!(!n.accepts(["world".to_owned()]));
    }
}
