//! Randomised tests for compliance (experiment E6): the
//! product-automaton decision procedure of Theorem 1 agrees with the
//! direct coinductive reading of Definition 4 on randomly generated
//! contracts, and duality always yields a compliant partner. Every case
//! is deterministic in its seed.

use sufs_contract::{compliance, contract::Contract, duality};
use sufs_hexpr::{Channel, Hist};
use sufs_rng::{Rng, SeedableRng, StdRng};

const CHANNELS: [&str; 4] = ["a", "b", "c", "d"];

/// A random loop-free behaviour of bounded depth: nested internal and
/// external choices with distinct guards, well-formed by construction.
fn random_behaviour(depth: usize, r: &mut StdRng) -> Hist {
    if depth == 0 || r.gen_bool(0.25) {
        return Hist::Eps;
    }
    let chans = r.subsequence(&CHANNELS, 1, 3);
    let branches: Vec<(Channel, Hist)> = chans
        .into_iter()
        .map(|c| (Channel::new(c), random_behaviour(depth - 1, r)))
        .collect();
    if r.gen_bool(0.5) {
        Hist::Int(branches)
    } else {
        Hist::Ext(branches)
    }
}

fn random_contract(r: &mut StdRng) -> Contract {
    Contract::new(random_behaviour(4, r)).expect("generated contracts are well-formed")
}

/// A random *recursive* contract: `μh. ⊕/Σ [ cᵢ → bodyᵢ · h | stop → ε ]`.
fn random_rec_contract(r: &mut StdRng) -> Contract {
    let chans = r.subsequence(&CHANNELS, 1, 2);
    let mut branches: Vec<(Channel, Hist)> = chans
        .into_iter()
        .map(|c| {
            let body = random_behaviour(3, r);
            (Channel::new(c), Hist::seq(body, Hist::var("h")))
        })
        .collect();
    branches.push((Channel::new("stop"), Hist::Eps));
    let body = if r.gen_bool(0.5) {
        Hist::Int(branches)
    } else {
        Hist::Ext(branches)
    };
    Contract::new(Hist::mu("h", body)).expect("recursive contract is well-formed")
}

const CASES: u64 = 250;

/// Theorem 1, empirically: product emptiness ⟺ Definition 4.
#[test]
fn thm1_product_agrees_with_coinductive() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c1 = random_contract(&mut r);
        let c2 = random_contract(&mut r);
        let by_product = compliance::compliant(&c1, &c2).holds();
        let by_def4 = compliance::compliant_coinductive(&c1, &c2);
        assert_eq!(by_product, by_def4, "seed {seed}: {c1:?} vs {c2:?}");
    }
}

#[test]
fn thm1_with_recursion() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c1 = random_rec_contract(&mut r);
        let c2 = random_rec_contract(&mut r);
        let by_product = compliance::compliant(&c1, &c2).holds();
        let by_def4 = compliance::compliant_coinductive(&c1, &c2);
        assert_eq!(by_product, by_def4, "seed {seed}");
    }
}

/// Every contract is compliant with its dual.
#[test]
fn dual_is_compliant() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c = random_contract(&mut r);
        let d = duality::dual(&c);
        assert!(compliance::compliant(&c, &d).holds(), "seed {seed}");
    }
}

#[test]
fn dual_of_recursive_is_compliant() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c = random_rec_contract(&mut r);
        let d = duality::dual(&c);
        assert!(compliance::compliant(&c, &d).holds(), "seed {seed}");
    }
}

/// Duality is an involution.
#[test]
fn dual_involution() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c = random_contract(&mut r);
        assert_eq!(duality::dual(&duality::dual(&c)), c, "seed {seed}");
    }
}

/// A non-compliance verdict always carries a witness whose path can be
/// replayed: following the synchronised actions from the initial pair
/// really reaches a stuck pair.
#[test]
fn witnesses_replay() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c1 = random_contract(&mut r);
        let c2 = random_contract(&mut r);
        let result = compliance::compliant(&c1, &c2);
        if let Some(w) = result.witness() {
            let (mut a, mut b) = (c1.clone(), c2.clone());
            for (chan, dir) in &w.path {
                let na = a
                    .steps()
                    .into_iter()
                    .find(|((c, d), _)| c == chan && d == dir)
                    .map(|(_, n)| n);
                let nb = b
                    .steps()
                    .into_iter()
                    .find(|((c, d), _)| c == chan && *d == dir.co())
                    .map(|(_, n)| n);
                assert!(
                    na.is_some() && nb.is_some(),
                    "seed {seed}: witness step not replayable"
                );
                a = na.unwrap();
                b = nb.unwrap();
            }
            assert_eq!(&a, &w.client, "seed {seed}");
            assert_eq!(&b, &w.server, "seed {seed}");
            // The reached pair violates Definition 4's ready condition
            // (with the client not yet terminated).
            assert!(!a.is_eps(), "seed {seed}");
            assert!(!compliance::ready_condition(&a, &b), "seed {seed}");
        }
    }
}

/// ε is compliant with everything (the client may always stop).
#[test]
fn eps_complies_with_all() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let c = random_contract(&mut r);
        assert!(
            compliance::compliant(&Contract::eps(), &c).holds(),
            "seed {seed}"
        );
    }
}
