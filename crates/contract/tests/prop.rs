//! Property tests for compliance (experiment E6): the product-automaton
//! decision procedure of Theorem 1 agrees with the direct coinductive
//! reading of Definition 4 on randomly generated contracts, and duality
//! always yields a compliant partner.

use proptest::prelude::*;
use sufs_contract::{compliance, contract::Contract, duality};
use sufs_hexpr::{Channel, Hist};

const CHANNELS: [&str; 4] = ["a", "b", "c", "d"];

/// A random loop-free contract of bounded depth: nested internal and
/// external choices with distinct guards, well-formed by construction.
fn arb_contract() -> impl Strategy<Value = Contract> {
    let leaf = Just(Hist::Eps);
    leaf.prop_recursive(4, 32, 3, |inner| {
        (
            any::<bool>(),
            proptest::sample::subsequence(CHANNELS.to_vec(), 1..=3),
            proptest::collection::vec(inner, 3),
        )
            .prop_map(|(internal, chans, conts)| {
                let branches: Vec<(Channel, Hist)> = chans
                    .into_iter()
                    .zip(conts)
                    .map(|(c, h)| (Channel::new(c), h))
                    .collect();
                if internal {
                    Hist::Int(branches)
                } else {
                    Hist::Ext(branches)
                }
            })
    })
    .prop_map(|h| Contract::new(h).expect("generated contracts are well-formed"))
}

/// A random *recursive* contract: `μh. ⊕/Σ [ cᵢ → bodyᵢ · h | stop → ε ]`.
fn arb_rec_contract() -> impl Strategy<Value = Contract> {
    (
        any::<bool>(),
        proptest::sample::subsequence(CHANNELS.to_vec(), 1..=2),
        proptest::collection::vec(arb_contract(), 2),
    )
        .prop_map(|(internal, chans, bodies)| {
            let mut branches: Vec<(Channel, Hist)> = chans
                .into_iter()
                .zip(bodies)
                .map(|(c, b)| (Channel::new(c), Hist::seq(b.into_hist(), Hist::var("h"))))
                .collect();
            branches.push((Channel::new("stop"), Hist::Eps));
            let body = if internal {
                Hist::Int(branches)
            } else {
                Hist::Ext(branches)
            };
            Contract::new(Hist::mu("h", body)).expect("recursive contract is well-formed")
        })
}

proptest! {
    /// Theorem 1, empirically: product emptiness ⟺ Definition 4.
    #[test]
    fn thm1_product_agrees_with_coinductive(c1 in arb_contract(), c2 in arb_contract()) {
        let by_product = compliance::compliant(&c1, &c2).holds();
        let by_def4 = compliance::compliant_coinductive(&c1, &c2);
        prop_assert_eq!(by_product, by_def4);
    }

    #[test]
    fn thm1_with_recursion(c1 in arb_rec_contract(), c2 in arb_rec_contract()) {
        let by_product = compliance::compliant(&c1, &c2).holds();
        let by_def4 = compliance::compliant_coinductive(&c1, &c2);
        prop_assert_eq!(by_product, by_def4);
    }

    /// Every contract is compliant with its dual.
    #[test]
    fn dual_is_compliant(c in arb_contract()) {
        let d = duality::dual(&c);
        prop_assert!(compliance::compliant(&c, &d).holds());
    }

    #[test]
    fn dual_of_recursive_is_compliant(c in arb_rec_contract()) {
        let d = duality::dual(&c);
        prop_assert!(compliance::compliant(&c, &d).holds());
    }

    /// Duality is an involution.
    #[test]
    fn dual_involution(c in arb_contract()) {
        prop_assert_eq!(duality::dual(&duality::dual(&c)), c);
    }

    /// A non-compliance verdict always carries a witness whose path can
    /// be replayed: following the synchronised actions from the initial
    /// pair really reaches a stuck pair.
    #[test]
    fn witnesses_replay(c1 in arb_contract(), c2 in arb_contract()) {
        let r = compliance::compliant(&c1, &c2);
        if let Some(w) = r.witness() {
            let (mut a, mut b) = (c1.clone(), c2.clone());
            for (chan, dir) in &w.path {
                let na = a.steps().into_iter()
                    .find(|((c, d), _)| c == chan && d == dir)
                    .map(|(_, n)| n);
                let nb = b.steps().into_iter()
                    .find(|((c, d), _)| c == chan && *d == dir.co())
                    .map(|(_, n)| n);
                prop_assert!(na.is_some() && nb.is_some(), "witness step not replayable");
                a = na.unwrap();
                b = nb.unwrap();
            }
            prop_assert_eq!(&a, &w.client);
            prop_assert_eq!(&b, &w.server);
            // The reached pair violates Definition 4's ready condition
            // (with the client not yet terminated).
            prop_assert!(!a.is_eps());
            prop_assert!(!compliance::ready_condition(&a, &b));
        }
    }

    /// ε is compliant with everything (the client may always stop).
    #[test]
    fn eps_complies_with_all(c in arb_contract()) {
        prop_assert!(compliance::compliant(&Contract::eps(), &c).holds());
    }
}
