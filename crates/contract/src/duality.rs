//! Contract duality: the canonical compliant partner.
//!
//! The dual of a contract swaps inputs and outputs (external choices
//! become internal ones and vice versa). A contract is always compliant
//! with its dual — a useful sanity theorem and workload generator.

use crate::contract::Contract;
use sufs_hexpr::Hist;

/// The dual of a contract: every `Σᵢ aᵢ.Hᵢ` becomes `⊕ᵢ āᵢ.H̃ᵢ` and vice
/// versa.
pub fn dual(c: &Contract) -> Contract {
    Contract::new(dual_hist(c.hist())).expect("dual of a contract is a contract")
}

fn dual_hist(h: &Hist) -> Hist {
    match h {
        Hist::Eps | Hist::Var(_) => h.clone(),
        Hist::Mu(v, body) => Hist::Mu(v.clone(), Box::new(dual_hist(body))),
        Hist::Ext(bs) => Hist::Int(bs.iter().map(|(c, k)| (c.clone(), dual_hist(k))).collect()),
        Hist::Int(bs) => Hist::Ext(bs.iter().map(|(c, k)| (c.clone(), dual_hist(k))).collect()),
        Hist::Seq(a, b) => Hist::seq(dual_hist(a), dual_hist(b)),
        // Unreachable in validated contracts (comm-only):
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compliance::{compliant, compliant_coinductive};
    use sufs_hexpr::parse_hist;

    fn c(src: &str) -> Contract {
        Contract::new(parse_hist(src).unwrap()).unwrap()
    }

    #[test]
    fn dual_swaps_choices() {
        let orig = c("int[a -> ext[b -> eps]]");
        let d = dual(&orig);
        assert_eq!(d, c("ext[a -> int[b -> eps]]"));
    }

    #[test]
    fn dual_is_involutive() {
        for src in [
            "eps",
            "int[a -> eps | b -> eps]",
            "mu h. int[go -> ext[ack -> h] | quit -> eps]",
            "ext[x -> eps]; int[y -> eps]",
        ] {
            let orig = c(src);
            assert_eq!(dual(&dual(&orig)), orig, "involution failed on {src}");
        }
    }

    #[test]
    fn contract_complies_with_its_dual() {
        for src in [
            "eps",
            "int[a -> eps | b -> eps]",
            "ext[a -> eps | b -> eps]",
            "mu h. int[go -> ext[ack -> h] | quit -> eps]",
            "int[req -> ext[ok -> int[pay -> eps] | no -> eps]]",
        ] {
            let client = c(src);
            let server = dual(&client);
            assert!(
                compliant(&client, &server).holds(),
                "dual compliance failed for {src}"
            );
            assert!(compliant_coinductive(&client, &server));
        }
    }
}
