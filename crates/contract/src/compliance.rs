//! Compliance of contracts (Definition 4) and its two decision
//! procedures: the product-automaton emptiness check of Theorem 1, and a
//! direct greatest-fixpoint computation of Definition 4 used to
//! cross-validate the theorem (experiment E6).

use std::collections::{HashSet, VecDeque};
use std::fmt;

use crate::contract::Contract;
use crate::product::{ProductAutomaton, StuckWitness};
use sufs_hexpr::ready::has_handshake;

/// The outcome of a compliance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplianceResult {
    witness: Option<StuckWitness>,
    product_states: usize,
}

impl ComplianceResult {
    /// Returns `true` if the contracts are compliant (`H₁ ⊢ H₂`).
    pub fn holds(&self) -> bool {
        self.witness.is_none()
    }

    /// The counterexample path to a stuck configuration, if any.
    pub fn witness(&self) -> Option<&StuckWitness> {
        self.witness.as_ref()
    }

    /// The number of reachable product states explored by the check.
    pub fn product_states(&self) -> usize {
        self.product_states
    }
}

impl fmt::Display for ComplianceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.witness {
            None => write!(f, "compliant"),
            Some(w) => write!(f, "NOT compliant: {w}"),
        }
    }
}

/// Decides `client ⊢ server` via the product automaton (Theorem 1):
/// the contracts are compliant iff `L(client ⊗ server) = ∅`.
///
/// # Examples
///
/// ```
/// use sufs_contract::compliance::compliant;
/// use sufs_contract::contract::Contract;
/// use sufs_hexpr::parse_hist;
///
/// // The broker accepts bok/una; hotel S1 sends one of those: compliant.
/// let broker = Contract::new(parse_hist("ext[bok -> eps | una -> eps]").unwrap()).unwrap();
/// let s1 = Contract::new(parse_hist("int[bok -> eps | una -> eps]").unwrap()).unwrap();
/// assert!(compliant(&broker, &s1).holds());
///
/// // Hotel S2 may also send `del`, which the broker cannot handle.
/// let s2 = Contract::new(
///     parse_hist("int[bok -> eps | una -> eps | del -> eps]").unwrap(),
/// ).unwrap();
/// let r = compliant(&broker, &s2);
/// assert!(!r.holds());
/// ```
pub fn compliant(client: &Contract, server: &Contract) -> ComplianceResult {
    let product = ProductAutomaton::build(client, server);
    ComplianceResult {
        witness: product.stuck_witness(),
        product_states: product.len(),
    }
}

/// Decides compliance directly from Definition 4, as the greatest
/// relation `R` such that for every `(H₁, H₂) ∈ R`:
///
/// 1. `H₁ ⇓ C` and `H₂ ⇓ S` imply `C = ∅` or `C ∩ S̄ ≠ ∅`, and
/// 2. every synchronised step leads to a pair again in `R`.
///
/// Since the reachable pair space is finite, the largest such relation
/// contains `(client, server)` iff every reachable pair satisfies (1) —
/// which is what this function checks. It is deliberately *independent*
/// of [`ProductAutomaton`] so the two can be compared (Theorem 1).
pub fn compliant_coinductive(client: &Contract, server: &Contract) -> bool {
    let mut seen: HashSet<(Contract, Contract)> = HashSet::new();
    let mut queue = VecDeque::from([(client.clone(), server.clone())]);
    seen.insert((client.clone(), server.clone()));
    while let Some((c1, c2)) = queue.pop_front() {
        if !ready_condition(&c1, &c2) {
            return false;
        }
        for ((chan1, dir1), n1) in c1.steps() {
            for ((chan2, dir2), n2) in c2.steps() {
                if chan1 == chan2 && dir1 == dir2.co() {
                    let pair = (n1.clone(), n2.clone());
                    if seen.insert(pair.clone()) {
                        queue.push_back(pair);
                    }
                }
            }
        }
    }
    true
}

/// Condition (1) of Definition 4 on a single pair of contract states:
/// for all ready sets `C` of the client and `S` of the server,
/// `C = ∅` or `C ∩ S̄ ≠ ∅`.
pub fn ready_condition(client: &Contract, server: &Contract) -> bool {
    let cs = client.ready_sets();
    let ss = server.ready_sets();
    for c in &cs {
        if c.is_empty() {
            continue;
        }
        for s in &ss {
            if !has_handshake(c, s) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    fn c(src: &str) -> Contract {
        Contract::new(parse_hist(src).unwrap()).unwrap()
    }

    #[test]
    fn product_and_coinductive_agree_on_paper_examples() {
        let broker = c("ext[bok -> eps | una -> eps]");
        let s1 = c("int[bok -> eps | una -> eps]");
        let s2 = c("int[bok -> eps | una -> eps | del -> eps]");
        assert!(compliant(&broker, &s1).holds());
        assert!(compliant_coinductive(&broker, &s1));
        assert!(!compliant(&broker, &s2).holds());
        assert!(!compliant_coinductive(&broker, &s2));
    }

    #[test]
    fn ready_condition_examples() {
        // client a+b vs server b̄: handshake on b.
        assert!(ready_condition(
            &c("ext[a -> eps | b -> eps]"),
            &c("int[b -> eps]")
        ));
        // client ā vs server b: no handshake.
        assert!(!ready_condition(&c("int[a -> eps]"), &c("ext[b -> eps]")));
        // client ε: C = ∅, fine whatever the server.
        assert!(ready_condition(&Contract::eps(), &c("int[x -> eps]")));
        // server ε while the client waits: stuck.
        assert!(!ready_condition(&c("ext[a -> eps]"), &Contract::eps()));
    }

    #[test]
    fn compliance_result_reports() {
        let r = compliant(&c("ext[a -> eps]"), &c("ext[b -> eps]"));
        assert!(!r.holds());
        assert!(r.witness().is_some());
        assert!(r.product_states() >= 1);
        assert!(r.to_string().contains("NOT compliant"));
        let ok = compliant(&c("int[a -> eps]"), &c("ext[a -> eps]"));
        assert_eq!(ok.to_string(), "compliant");
    }

    #[test]
    fn recursion_agreement() {
        let client = c("mu h. int[ping -> ext[pong -> h]]");
        let server = c("mu k. ext[ping -> int[pong -> k]]");
        assert!(compliant(&client, &server).holds());
        assert!(compliant_coinductive(&client, &server));
        // Break the loop: the server eventually sends `bye` instead.
        let server2 = c("ext[ping -> int[bye -> eps]]");
        assert!(!compliant(&client, &server2).holds());
        assert!(!compliant_coinductive(&client, &server2));
    }

    #[test]
    fn compliance_is_order_sensitive() {
        // Client termination is allowed, server termination is not: the
        // relation is not symmetric.
        let finisher = c("int[msg -> eps]");
        let waiter = c("ext[msg -> ext[more -> eps]]");
        assert!(compliant(&finisher, &waiter).holds());
        assert!(!compliant(&waiter, &finisher).holds());
    }

    #[test]
    fn sequenced_contracts() {
        let client = c("int[a -> eps]; ext[r -> eps]");
        let server = c("ext[a -> eps]; int[r -> eps]");
        assert!(compliant(&client, &server).holds());
        assert!(compliant_coinductive(&client, &server));
    }
}
