//! The product automaton `H₁! ⊗ H₂!` of Definition 5.
//!
//! States are pairs of contract states; the alphabet is `{τ}` (every
//! transition is a synchronisation); **final states are the stuck
//! configurations**, reached exactly when the two contracts are not
//! compliant. Theorem 1: `H₁ ⊢ H₂` iff the product's language is empty,
//! i.e. no final state is reachable.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::contract::Contract;
use sufs_hexpr::{Channel, Dir, Hist};

/// Why a product state is stuck (final).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StuckReason {
    /// Condition (i) fails: neither party offers an output — both are
    /// waiting on inputs (or the server terminated while the client did
    /// not).
    BothAwaitingInput,
    /// Condition (ii) fails: a party is ready to send an output that the
    /// other cannot receive.
    UnmatchedOutput {
        /// The channels offered as outputs with no matching input.
        channels: Vec<Channel>,
    },
}

impl fmt::Display for StuckReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckReason::BothAwaitingInput => {
                write!(f, "no party can send: all are waiting on inputs")
            }
            StuckReason::UnmatchedOutput { channels } => {
                write!(f, "unmatched output(s):")?;
                for c in channels {
                    write!(f, " {c}!")?;
                }
                Ok(())
            }
        }
    }
}

/// A witness that two contracts are not compliant: a path of
/// synchronisations from the initial pair to a stuck pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckWitness {
    /// The synchronised actions along the path, from the **client's**
    /// perspective (`Dir::Out` = the client sent).
    pub path: Vec<(Channel, Dir)>,
    /// The client's residual contract at the stuck pair.
    pub client: Contract,
    /// The server's residual contract at the stuck pair.
    pub server: Contract,
    /// Why the pair is stuck.
    pub reason: StuckReason,
}

impl fmt::Display for StuckWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "after [")?;
        for (i, (c, d)) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match d {
                Dir::Out => write!(f, "{c}!")?,
                Dir::In => write!(f, "{c}?")?,
            }
        }
        write!(
            f,
            "] client `{}` and server `{}` are stuck: {}",
            self.client, self.server, self.reason
        )
    }
}

/// The product automaton of two contracts (Definition 5).
#[derive(Debug, Clone)]
pub struct ProductAutomaton {
    states: Vec<(Hist, Hist)>,
    /// τ-edges annotated with the synchronised channel and the direction
    /// from the client's perspective.
    edges: Vec<Vec<(Channel, Dir, usize)>>,
    finals: Vec<Option<StuckReason>>,
}

impl ProductAutomaton {
    /// Builds the reachable part of `client ⊗ server`.
    ///
    /// The product of two finite-state contracts has at most `n·m`
    /// states, so construction always terminates.
    pub fn build(client: &Contract, server: &Contract) -> ProductAutomaton {
        let start = (client.hist().clone(), server.hist().clone());
        let mut index: HashMap<(Hist, Hist), usize> = HashMap::new();
        let mut states = vec![start.clone()];
        let mut edges: Vec<Vec<(Channel, Dir, usize)>> = Vec::new();
        let mut finals: Vec<Option<StuckReason>> = Vec::new();
        index.insert(start, 0);
        let mut queue = VecDeque::from([0usize]);
        while let Some(id) = queue.pop_front() {
            let (h1, h2) = states[id].clone();
            let reason = stuck_reason(&h1, &h2);
            let mut out = Vec::new();
            if reason.is_none() {
                // δ is only defined from non-final states.
                let c1 = Contract::wrap(h1);
                let c2 = Contract::wrap(h2);
                for ((chan1, dir1), next1) in c1.steps() {
                    for ((chan2, dir2), next2) in c2.steps() {
                        if chan1 == chan2 && dir1 == dir2.co() {
                            let key = (next1.hist().clone(), next2.hist().clone());
                            let to = match index.get(&key) {
                                Some(&to) => to,
                                None => {
                                    let to = states.len();
                                    index.insert(key.clone(), to);
                                    states.push(key);
                                    queue.push_back(to);
                                    to
                                }
                            };
                            out.push((chan1.clone(), dir1, to));
                        }
                    }
                }
            }
            while edges.len() <= id {
                edges.push(Vec::new());
                finals.push(None);
            }
            edges[id] = out;
            finals[id] = reason;
        }
        ProductAutomaton {
            states,
            edges,
            finals,
        }
    }

    /// The number of reachable product states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the product has no states (never happens).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The initial state id (always `0`).
    pub fn initial(&self) -> usize {
        0
    }

    /// The pair of residual contracts at state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> (Contract, Contract) {
        let (h1, h2) = &self.states[id];
        (Contract::wrap(h1.clone()), Contract::wrap(h2.clone()))
    }

    /// Returns `true` if state `id` is final (stuck).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn is_final(&self, id: usize) -> bool {
        self.finals[id].is_some()
    }

    /// The τ-edges out of `id`, annotated with the synchronised channel.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edges(&self, id: usize) -> &[(Channel, Dir, usize)] {
        &self.edges[id]
    }

    /// The ids of all final (stuck) states.
    pub fn final_states(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_final(i)).collect()
    }

    /// Theorem 1's check: the language is empty iff no final state is
    /// reachable (all states here are reachable by construction).
    pub fn language_is_empty(&self) -> bool {
        self.finals.iter().all(Option::is_none)
    }

    /// A shortest path to a stuck state, or `None` if the contracts are
    /// compliant.
    pub fn stuck_witness(&self) -> Option<StuckWitness> {
        // BFS over the product for a shortest path to any final state.
        let mut prev: Vec<Option<(usize, Channel, Dir)>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(id) = queue.pop_front() {
            if let Some(reason) = &self.finals[id] {
                let mut path = Vec::new();
                let mut cur = id;
                while let Some((p, c, d)) = &prev[cur] {
                    path.push((c.clone(), *d));
                    cur = *p;
                }
                path.reverse();
                let (client, server) = self.state(id);
                return Some(StuckWitness {
                    path,
                    client,
                    server,
                    reason: reason.clone(),
                });
            }
            for (c, d, to) in &self.edges[id] {
                if !seen[*to] {
                    seen[*to] = true;
                    prev[*to] = Some((id, c.clone(), *d));
                    queue.push_back(*to);
                }
            }
        }
        None
    }

    /// Renders the product in Graphviz DOT format; stuck states are
    /// double circles.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph product {\n  rankdir=LR;\n");
        for i in 0..self.len() {
            let shape = if self.is_final(i) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(s, "  q{i} [shape={shape}];");
        }
        for i in 0..self.len() {
            for (c, d, t) in &self.edges[i] {
                let arrow = match d {
                    Dir::Out => "!",
                    Dir::In => "?",
                };
                let _ = writeln!(s, "  q{i} -> q{t} [label=\"τ({c}{arrow})\"];");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Classifies a pair of contract states per Definition 5's final-state
/// conditions; `None` means not stuck.
fn stuck_reason(h1: &Hist, h2: &Hist) -> Option<StuckReason> {
    if h1.is_eps() {
        return None; // the client terminated: success, never final
    }
    let c1 = Contract::wrap(h1.clone());
    let c2 = Contract::wrap(h2.clone());
    let steps1 = c1.steps();
    let steps2 = c2.steps();
    let outs1: Vec<&Channel> = steps1
        .iter()
        .filter(|((_, d), _)| *d == Dir::Out)
        .map(|((c, _), _)| c)
        .collect();
    let outs2: Vec<&Channel> = steps2
        .iter()
        .filter(|((_, d), _)| *d == Dir::Out)
        .map(|((c, _), _)| c)
        .collect();
    // Condition (i): some party offers an output.
    if outs1.is_empty() && outs2.is_empty() {
        return Some(StuckReason::BothAwaitingInput);
    }
    // Condition (ii): every offered output has a matching input.
    let ins1: Vec<&Channel> = steps1
        .iter()
        .filter(|((_, d), _)| *d == Dir::In)
        .map(|((c, _), _)| c)
        .collect();
    let ins2: Vec<&Channel> = steps2
        .iter()
        .filter(|((_, d), _)| *d == Dir::In)
        .map(|((c, _), _)| c)
        .collect();
    let mut unmatched: Vec<Channel> = Vec::new();
    for o in outs1 {
        if !ins2.contains(&o) {
            unmatched.push(o.clone());
        }
    }
    for o in outs2 {
        if !ins1.contains(&o) {
            unmatched.push(o.clone());
        }
    }
    if unmatched.is_empty() {
        None
    } else {
        unmatched.sort_unstable();
        unmatched.dedup();
        Some(StuckReason::UnmatchedOutput {
            channels: unmatched,
        })
    }
}

impl Contract {
    /// Internal: wraps a contract state reached by stepping a validated
    /// contract, skipping re-validation (the fragment is closed under
    /// transitions).
    pub(crate) fn wrap(h: Hist) -> Contract {
        // SAFETY of the invariant: only called on states produced by
        // stepping validated contracts.
        Contract::new_unchecked(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    fn c(src: &str) -> Contract {
        Contract::new(parse_hist(src).unwrap()).unwrap()
    }

    #[test]
    fn matching_send_receive_is_compliant() {
        let client = c("int[req -> ext[ok -> eps]]");
        let server = c("ext[req -> int[ok -> eps]]");
        let p = ProductAutomaton::build(&client, &server);
        assert!(p.language_is_empty());
        assert!(p.stuck_witness().is_none());
        assert_eq!(p.len(), 3); // (start, after req, after ok)
        assert!(!p.is_empty());
    }

    #[test]
    fn unmatched_output_is_stuck() {
        // Server may send `del`, client cannot receive it — the paper's
        // S2-vs-broker scenario in miniature.
        let client = c("int[req -> ext[ok -> eps | no -> eps]]");
        let server = c("ext[req -> int[ok -> eps | no -> eps | del -> eps]]");
        let p = ProductAutomaton::build(&client, &server);
        assert!(!p.language_is_empty());
        let w = p.stuck_witness().unwrap();
        assert_eq!(w.path, vec![(Channel::new("req"), Dir::Out)]);
        assert_eq!(
            w.reason,
            StuckReason::UnmatchedOutput {
                channels: vec![Channel::new("del")]
            }
        );
        assert!(w.to_string().contains("del!"));
    }

    #[test]
    fn both_waiting_is_stuck() {
        let client = c("ext[a -> eps]");
        let server = c("ext[b -> eps]");
        let p = ProductAutomaton::build(&client, &server);
        let w = p.stuck_witness().unwrap();
        assert_eq!(w.reason, StuckReason::BothAwaitingInput);
        assert!(w.path.is_empty());
    }

    #[test]
    fn client_termination_is_success() {
        // Client finishes while the server still waits: fine.
        let client = c("int[msg -> eps]");
        let server = c("ext[msg -> ext[more -> eps]]");
        let p = ProductAutomaton::build(&client, &server);
        assert!(p.language_is_empty());
    }

    #[test]
    fn server_unmatched_output_after_client_done_is_fine() {
        // ⟨ε, ā⟩ is not final per Definition 5 (H1 = ε).
        let client = c("int[msg -> eps]");
        let server = c("ext[msg -> int[bye -> eps]]");
        let p = ProductAutomaton::build(&client, &server);
        assert!(p.language_is_empty());
    }

    #[test]
    fn recursion_loops_forever_compliantly() {
        let client = c("mu h. int[ping -> ext[pong -> h]]");
        let server = c("mu k. ext[ping -> int[pong -> k]]");
        let p = ProductAutomaton::build(&client, &server);
        assert!(p.language_is_empty());
        assert_eq!(p.len(), 2);
        // The product cycles: every state has an outgoing edge.
        for i in 0..p.len() {
            assert!(!p.edges(i).is_empty());
        }
    }

    #[test]
    fn deep_stuck_state_found_with_shortest_path() {
        // Compliant for two rounds, then the server wants `del`.
        let client = c("int[a -> ext[b -> int[a -> ext[b -> eps]]]]");
        let server = c("ext[a -> int[b -> ext[a -> int[del -> eps]]]]");
        let p = ProductAutomaton::build(&client, &server);
        let w = p.stuck_witness().unwrap();
        assert_eq!(w.path.len(), 3);
        assert!(matches!(w.reason, StuckReason::UnmatchedOutput { .. }));
    }

    #[test]
    fn internal_choice_requires_all_branches_received() {
        // Server picks freely between ok/no; client handles both: fine.
        let client = c("ext[ok -> eps | no -> eps]");
        let server = c("int[ok -> eps | no -> eps]");
        assert!(ProductAutomaton::build(&client, &server).language_is_empty());
        // Client handles only ok: the `no` branch has no receiver.
        let client2 = c("ext[ok -> eps]");
        let p = ProductAutomaton::build(&client2, &server);
        let w = p.stuck_witness().unwrap();
        assert_eq!(
            w.reason,
            StuckReason::UnmatchedOutput {
                channels: vec![Channel::new("no")]
            }
        );
    }

    #[test]
    fn external_choice_needs_only_one_branch_served() {
        // Client offers a+b, server sends b̄ only: fine (external choice
        // is driven by the message received).
        let client = c("ext[a -> eps | b -> eps]");
        let server = c("int[b -> eps]");
        assert!(ProductAutomaton::build(&client, &server).language_is_empty());
    }

    #[test]
    fn dot_rendering_marks_stuck_states() {
        let p = ProductAutomaton::build(&c("ext[a -> eps]"), &c("ext[b -> eps]"));
        let dot = p.to_dot();
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn final_states_listed() {
        let p = ProductAutomaton::build(&c("ext[a -> eps]"), &c("ext[b -> eps]"));
        assert_eq!(p.final_states(), vec![0]);
        assert!(p.is_final(0));
        let (cl, sv) = p.state(0);
        assert!(!cl.is_eps());
        assert!(!sv.is_eps());
    }
}
