//! Behavioural contracts: the image of the projection `H!`.
//!
//! A [`Contract`] is a history expression containing only communication
//! structure — `ε`, guarded choices, sequencing and guarded tail
//! recursion. The projection function of §4 produces exactly this subset
//! of the contracts of Castagna–Gesbert–Padovani \[12\]: internal choices
//! are output-guarded, external choices input-guarded, and recursion is
//! guarded tail recursion, which makes every contract finite state.

use std::fmt;

use sufs_hexpr::projection::{is_comm_only, project};
use sufs_hexpr::ready::{ready_sets, ReadySet};
use sufs_hexpr::semantics::successors;
use sufs_hexpr::wf::{self, WfError};
use sufs_hexpr::{Channel, Dir, Hist, Label};

use std::collections::BTreeSet;

/// An error raised when a history expression is not a valid contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// The expression contains events, requests or framings.
    NotCommOnly,
    /// The expression violates the well-formedness discipline.
    IllFormed(WfError),
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::NotCommOnly => {
                write!(f, "expression contains non-communication constructs")
            }
            ContractError::IllFormed(e) => write!(f, "ill-formed contract: {e}"),
        }
    }
}

impl std::error::Error for ContractError {}

impl From<WfError> for ContractError {
    fn from(e: WfError) -> Self {
        ContractError::IllFormed(e)
    }
}

/// A behavioural contract (C-NEWTYPE over comm-only [`Hist`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Contract(Hist);

impl Contract {
    /// Wraps a communication-only, well-formed history expression.
    ///
    /// # Errors
    ///
    /// [`ContractError::NotCommOnly`] if the expression mentions events,
    /// requests or framings; [`ContractError::IllFormed`] if it violates
    /// well-formedness (e.g. unguarded or non-tail recursion).
    pub fn new(h: Hist) -> Result<Contract, ContractError> {
        if !is_comm_only(&h) {
            return Err(ContractError::NotCommOnly);
        }
        wf::check(&h)?;
        Ok(Contract(h))
    }

    /// Projects a full service behaviour onto its contract: `H!` (§4).
    ///
    /// # Errors
    ///
    /// [`ContractError::IllFormed`] if the projection is ill-formed,
    /// which can only happen if `service` itself was (e.g. a loop with no
    /// communication guard).
    pub fn from_service(service: &Hist) -> Result<Contract, ContractError> {
        Contract::new(project(service))
    }

    /// The empty contract `ε`.
    pub fn eps() -> Contract {
        Contract(Hist::Eps)
    }

    /// Wraps without validating; for states produced by stepping a
    /// validated contract (the fragment is closed under transitions).
    pub(crate) fn new_unchecked(h: Hist) -> Contract {
        Contract(h)
    }

    /// A view of the underlying history expression.
    pub fn hist(&self) -> &Hist {
        &self.0
    }

    /// Consumes the contract, returning the underlying expression.
    pub fn into_hist(self) -> Hist {
        self.0
    }

    /// Returns `true` for the terminated contract `ε`.
    pub fn is_eps(&self) -> bool {
        self.0.is_eps()
    }

    /// A stable structural fingerprint of the contract (the fingerprint
    /// of the underlying expression), for deterministic
    /// verification-cache keys.
    pub fn structural_hash(&self) -> u64 {
        self.0.structural_hash()
    }

    /// The communication transitions of the contract: pairs of a directed
    /// channel action and the successor contract.
    ///
    /// Contract states reached by stepping stay within the contract
    /// fragment, so the wrapper is rebuilt without re-validation.
    pub fn steps(&self) -> Vec<((Channel, Dir), Contract)> {
        successors(&self.0)
            .into_iter()
            .filter_map(|(l, h)| match l {
                Label::Chan(c, d) => Some(((c, d), Contract(h))),
                _ => None,
            })
            .collect()
    }

    /// The observable ready sets `{S | self ⇓ S}` (Definition 3).
    pub fn ready_sets(&self) -> BTreeSet<ReadySet> {
        ready_sets(&self.0)
    }

    /// The number of distinct states reachable from this contract.
    ///
    /// # Panics
    ///
    /// Panics if the state space exceeds the default bound, which cannot
    /// happen for validated contracts (guarded tail recursion).
    pub fn state_count(&self) -> usize {
        sufs_hexpr::HistLts::build(&self.0)
            .expect("validated contracts are finite state")
            .len()
    }
}

impl fmt::Display for Contract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<Hist> for Contract {
    type Error = ContractError;

    fn try_from(h: Hist) -> Result<Self, Self::Error> {
        Contract::new(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::parse_hist;

    #[test]
    fn accepts_comm_only_expressions() {
        let c = Contract::new(parse_hist("ext[a -> int[b -> eps]]").unwrap()).unwrap();
        assert_eq!(c.steps().len(), 1);
        assert!(!c.is_eps());
        assert_eq!(c.to_string(), "ext[a -> int[b -> eps]]");
    }

    #[test]
    fn rejects_events_and_frames() {
        assert_eq!(
            Contract::new(parse_hist("#a").unwrap()),
            Err(ContractError::NotCommOnly)
        );
        assert_eq!(
            Contract::new(parse_hist("frame p [ ext[a -> eps] ]").unwrap()),
            Err(ContractError::NotCommOnly)
        );
        assert_eq!(
            Contract::new(parse_hist("open 1 { eps }").unwrap()),
            Err(ContractError::NotCommOnly)
        );
    }

    #[test]
    fn rejects_ill_formed() {
        let err = Contract::new(parse_hist("mu h. h").unwrap()).unwrap_err();
        assert!(matches!(err, ContractError::IllFormed(_)));
        assert!(err.to_string().contains("ill-formed"));
    }

    #[test]
    fn from_service_projects() {
        let s1 = seq([
            ev("sgn", [1]),
            ev("p", [45]),
            recv("idc", choose([("bok", eps()), ("una", eps())])),
        ]);
        let c = Contract::from_service(&s1).unwrap();
        assert_eq!(
            c.hist(),
            &recv("idc", choose([("bok", eps()), ("una", eps())]))
        );
    }

    #[test]
    fn steps_follow_semantics() {
        let c = Contract::new(parse_hist("int[a -> eps | b -> ext[c -> eps]]").unwrap()).unwrap();
        let steps = c.steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].0, (Channel::new("a"), Dir::Out));
        assert!(steps[0].1.is_eps());
        assert_eq!(steps[1].0, (Channel::new("b"), Dir::Out));
    }

    #[test]
    fn state_count_of_recursion() {
        let c = Contract::new(parse_hist("mu h. int[a -> h | stop -> eps]").unwrap()).unwrap();
        assert_eq!(c.state_count(), 2);
    }

    #[test]
    fn try_from_works() {
        let c: Contract = parse_hist("ext[a -> eps]").unwrap().try_into().unwrap();
        assert_eq!(c.ready_sets().len(), 1);
    }
}
