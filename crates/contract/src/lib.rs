//! Behavioural contracts and service compliance (§4 of *Secure and
//! Unfailing Services*).
//!
//! A *contract* is the projection `H!` of a service's history expression
//! on its communication actions. Two contracts are *compliant*
//! (`H₁ ⊢ H₂`, Definition 4) when every internal choice of one party can
//! be received by the other, so their conversation never gets stuck; the
//! client (left component) is additionally allowed to terminate early.
//!
//! The crate provides:
//!
//! * [`contract::Contract`] — validated communication-only expressions;
//! * [`product::ProductAutomaton`] — Definition 5's product `H₁! ⊗ H₂!`,
//!   whose **final states are the stuck configurations**;
//! * [`compliance::compliant`] — Theorem 1: compliance iff the product's
//!   language is empty, with shortest-path counterexamples;
//! * [`compliance::compliant_coinductive`] — an independent decision
//!   procedure computing the largest relation of Definition 4 directly,
//!   used to cross-validate Theorem 1;
//! * [`duality::dual`] — the canonical compliant partner.
//!
//! Compliance is an *invariant* property (Theorem 2): the final-state
//! conditions of Definition 5 inspect one product state at a time, never
//! the past — hence a safety property (Corollary 1), model-checkable by
//! plain reachability.
//!
//! # Example: the paper's broker and hotels
//!
//! ```
//! use sufs_contract::{compliance::compliant, contract::Contract};
//! use sufs_hexpr::parse_hist;
//!
//! // Broker-side conversation with a hotel: send the client data, then
//! // wait for either a booking or an unavailability message.
//! let broker = Contract::new(
//!     parse_hist("int[idc -> ext[bok -> eps | una -> eps]]").unwrap(),
//! ).unwrap();
//! // S3 receives the data and internally decides bok or una: compliant.
//! let s3 = Contract::new(
//!     parse_hist("ext[idc -> int[bok -> eps | una -> eps]]").unwrap(),
//! ).unwrap();
//! assert!(compliant(&broker, &s3).holds());
//!
//! // S2 may send `del`, which the broker cannot handle: not compliant.
//! let s2 = Contract::new(
//!     parse_hist("ext[idc -> int[bok -> eps | una -> eps | del -> eps]]").unwrap(),
//! ).unwrap();
//! let verdict = compliant(&broker, &s2);
//! assert!(!verdict.holds());
//! println!("{}", verdict.witness().unwrap()); // …unmatched output(s): del!
//! ```

#![warn(missing_docs)]

pub mod compliance;
pub mod contract;
pub mod duality;
pub mod product;

pub use compliance::{compliant, compliant_coinductive, ComplianceResult};
pub use contract::{Contract, ContractError};
pub use duality::dual;
pub use product::{ProductAutomaton, StuckReason, StuckWitness};
