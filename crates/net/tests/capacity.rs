//! The §5 bounded-availability extension: capacity-limited services.

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs_hexpr::builder::*;
use sufs_hexpr::Location;
use sufs_net::semantics::{active_services, sess_steps};
use sufs_net::{
    ChoiceMode, FaultInjector, FaultKind, FaultPlan, MonitorMode, Network, Outcome, Plan,
    RepoEvent, Repository, Scheduler, Sess, StepAction,
};
use sufs_policy::PolicyRegistry;

fn client() -> sufs_hexpr::Hist {
    request(1, None, seq([send("q", eps()), offer([("a", eps())])]))
}

fn service() -> sufs_hexpr::Hist {
    recv("q", choose([("a", eps())]))
}

#[test]
fn capacity_metadata() {
    let mut repo = Repository::new();
    repo.publish("free", service());
    repo.publish_bounded("scarce", service(), 1);
    assert_eq!(repo.capacity(&Location::new("free")), Some(None));
    assert_eq!(repo.capacity(&Location::new("scarce")), Some(Some(1)));
    assert_eq!(repo.capacity(&Location::new("ghost")), None);
    let shown = repo.to_string();
    assert!(shown.contains("scarce (×1)"));
}

#[test]
fn active_instances_are_counted() {
    let mut repo = Repository::new();
    repo.publish("srv", service());
    // A client in session with srv, which is itself in session with srv
    // again (hypothetically): two active instances.
    let tree = Sess::pair(
        Sess::leaf("c", eps()),
        Sess::pair(Sess::leaf("srv", eps()), Sess::leaf("srv", eps())),
    );
    let counts = active_services(&tree, &repo);
    assert_eq!(counts[&Location::new("srv")], 2);
    // A top-level client leaf counts for nothing.
    let counts = active_services(&Sess::leaf("srv", eps()), &repo);
    assert!(counts.is_empty());
}

#[test]
fn saturated_service_disables_open() {
    let mut repo = Repository::new();
    repo.publish_bounded("srv", service(), 1);
    let plan = Plan::new().with(1u32, "srv");
    // A tree where srv is already busy and the client wants to open a
    // second session with it (nested).
    let busy = Sess::pair(Sess::leaf("c", client()), Sess::leaf("srv", service()));
    let steps = sess_steps(&busy, &plan, &repo);
    assert!(
        !steps
            .iter()
            .any(|s| matches!(s.action, StepAction::Open { .. })),
        "open must be disabled while the service is saturated"
    );
}

#[test]
fn two_clients_share_one_replica() {
    // With capacity 1, both clients still finish (one waits), and the
    // service never serves two sessions at once.
    let mut repo = Repository::new();
    repo.publish_bounded("srv", service(), 1);
    let reg = PolicyRegistry::new();
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let mut network = Network::new();
        network.add_client("c1", client(), Plan::new().with(1u32, "srv"));
        network.add_client("c2", client(), Plan::new().with(1u32, "srv"));
        let r = scheduler.run(network, &mut rng, 10_000).unwrap();
        assert_eq!(r.outcome, Outcome::Completed);
        // Replay and assert the load invariant after every step.
        let mut net = Network::new();
        net.add_client("c1", client(), Plan::new().with(1u32, "srv"));
        net.add_client("c2", client(), Plan::new().with(1u32, "srv"));
        for step in &r.trace {
            let comp = &net.components()[step.component];
            let (_, next) = sufs_net::component_steps(comp, &repo)
                .into_iter()
                .find(|(a, _)| a == &step.action)
                .expect("trace replays");
            *net.component_mut(step.component) = next;
            let total: usize = net
                .components()
                .iter()
                .map(|c| {
                    active_services(&c.sess, &repo)
                        .get(&Location::new("srv"))
                        .copied()
                        .unwrap_or(0)
                })
                .sum();
            assert!(total <= 1, "capacity exceeded: {total}");
        }
    }
}

#[test]
fn with_capacity_two_both_clients_may_overlap() {
    let mut repo = Repository::new();
    repo.publish_bounded("srv", service(), 2);
    let reg = PolicyRegistry::new();
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(6);
    let mut overlapped = false;
    for _ in 0..50 {
        let mut network = Network::new();
        network.add_client("c1", client(), Plan::new().with(1u32, "srv"));
        network.add_client("c2", client(), Plan::new().with(1u32, "srv"));
        let r = scheduler.run(network, &mut rng, 10_000).unwrap();
        assert_eq!(r.outcome, Outcome::Completed);
        // Overlap = both components opened before either closed.
        let mut open_before_close = 0;
        let mut active = 0;
        for step in &r.trace {
            match step.action {
                StepAction::Open { .. } => {
                    active += 1;
                    open_before_close = open_before_close.max(active);
                }
                StepAction::Close { .. } => active -= 1,
                _ => {}
            }
        }
        if open_before_close == 2 {
            overlapped = true;
        }
    }
    assert!(overlapped, "capacity 2 never produced concurrent sessions");
}

#[test]
fn republish_leaves_live_sessions_on_the_old_behaviour() {
    let mut repo = Repository::new();
    repo.publish("srv", service());
    let plan = Plan::new().with(1u32, "srv");
    // A session already open: each leaf owns a copy of its behaviour.
    let live = Sess::pair(
        Sess::leaf("c", seq([send("q", eps()), offer([("a", eps())])])),
        Sess::leaf("srv", service()),
    );
    // Hot-swap the published behaviour for a `q`-less variant.
    let swapped = recv("other", choose([("b", eps())]));
    let ev = repo.try_publish("srv", swapped.clone()).unwrap();
    assert_eq!(ev, RepoEvent::Updated(Location::new("srv")));
    // The live replica still synchronises on the old channel…
    let steps = sess_steps(&live, &plan, &repo);
    assert!(
        steps
            .iter()
            .any(|s| matches!(&s.action, StepAction::Synch { chan, .. } if chan.as_str() == "q")),
        "a live session must keep its copied behaviour across a republish"
    );
    // …while the repository hands the new behaviour to future opens.
    assert_eq!(repo.get(&Location::new("srv")), Some(&swapped));
}

#[test]
fn capacity_downgrade_saturates_against_live_sessions() {
    let mut repo = Repository::new();
    repo.publish("srv", service());
    let plan = Plan::new().with(1u32, "srv");
    let busy = Sess::pair(Sess::leaf("c2", client()), Sess::leaf("srv", service()));
    // Unbounded: a second client may open alongside the live session.
    assert!(sess_steps(&busy, &plan, &repo)
        .iter()
        .any(|s| matches!(s.action, StepAction::Open { .. })));
    // Republishing with capacity 1 counts the session that is already
    // live: the downgrade saturates the service immediately.
    repo.try_publish_bounded("srv", service(), 1).unwrap();
    assert!(!sess_steps(&busy, &plan, &repo)
        .iter()
        .any(|s| matches!(s.action, StepAction::Open { .. })));
}

#[test]
fn revocation_outlives_freed_capacity() {
    let mut repo = Repository::new();
    repo.publish_bounded("srv", service(), 1);
    let plan = Plan::new().with(1u32, "srv");
    let mut inj = FaultInjector::new(FaultPlan::default().with_revoke(1.0));
    let mut log = Vec::new();
    inj.begin_step(&[], &[Location::new("srv")], 0, &mut log);
    assert!(matches!(&log[0].kind, FaultKind::Revoke(l) if l.as_str() == "srv"));
    // While a session is live, open is already disabled by saturation.
    let busy = Sess::pair(Sess::leaf("c2", client()), Sess::leaf("srv", service()));
    assert!(!sess_steps(&busy, &plan, &repo)
        .iter()
        .any(|s| matches!(s.action, StepAction::Open { .. })));
    // Once the session closes, capacity frees up and the semantics
    // re-enable the open — but the revocation still vetoes it: fault
    // state outlives session churn.
    let idle = Sess::leaf("c2", client());
    let reopened = sess_steps(&idle, &plan, &repo);
    let open = reopened
        .iter()
        .find(|s| matches!(s.action, StepAction::Open { .. }))
        .expect("freed capacity must re-enable the open in the semantics");
    assert!(
        inj.blocks(&open.action),
        "a revoked location must stay closed to new sessions"
    );
}

#[test]
fn zero_capacity_service_deadlocks_clients() {
    let mut repo = Repository::new();
    repo.publish_bounded("srv", service(), 0);
    let reg = PolicyRegistry::new();
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(7);
    let mut network = Network::new();
    network.add_client("c1", client(), Plan::new().with(1u32, "srv"));
    let r = scheduler.run(network, &mut rng, 1000).unwrap();
    assert!(matches!(r.outcome, Outcome::Deadlock { .. }));
}
