//! Semantic laws of the network semantics: session commutativity
//! (`[S, S'] ≡ [S', S]`), and the balanced-prefix invariant of histories
//! ("we shall only deal with histories that are prefixes of a balanced
//! history, because such are those that show up when executing a
//! network", §3.1).

use std::collections::BTreeSet;

use sufs_hexpr::builder::*;
use sufs_hexpr::{Channel, Hist, PolicyRef};
use sufs_net::semantics::sess_steps;
use sufs_net::{ChoiceMode, MonitorMode, Network, Plan, Repository, Scheduler, Sess, StepAction};
use sufs_policy::PolicyRegistry;
use sufs_rng::{Rng, SeedableRng, StdRng};

/// Random communication behaviours over a tiny channel pool.
fn random_behaviour(depth: usize, r: &mut StdRng) -> Hist {
    if depth == 0 || r.gen_bool(0.25) {
        return Hist::Eps;
    }
    match r.gen_range(0u8..3) {
        0 => {
            let chans = r.subsequence(&["x", "y"], 1, 2);
            let bs: Vec<(Channel, Hist)> = chans
                .into_iter()
                .map(|c| (Channel::new(c), random_behaviour(depth - 1, r)))
                .collect();
            if r.gen_bool(0.5) {
                Hist::Int(bs)
            } else {
                Hist::Ext(bs)
            }
        }
        1 => Hist::framed(PolicyRef::nullary("p"), random_behaviour(depth - 1, r)),
        _ => Hist::seq(
            Hist::seq(ev0("e"), random_behaviour(depth - 1, r)),
            random_behaviour(depth - 1, r),
        ),
    }
}

/// Erases the structural successor, keeping the observable action and
/// history delta, for comparing mirrored sessions.
fn observations(
    steps: Vec<sufs_net::SessStep>,
) -> BTreeSet<(StepAction, Vec<sufs_policy::HistoryItem>)> {
    steps.into_iter().map(|s| (s.action, s.delta)).collect()
}

/// `[S, S'] ≡ [S', S]`: mirrored sessions offer the same actions with
/// the same history deltas.
#[test]
fn session_pairs_commute() {
    for seed in 0..300u64 {
        let mut r = StdRng::seed_from_u64(seed);
        let a = random_behaviour(3, &mut r);
        let b = random_behaviour(3, &mut r);
        let plan = Plan::new();
        let repo = Repository::new();
        let left = Sess::pair(Sess::leaf("l", a.clone()), Sess::leaf("r", b.clone()));
        let right = Sess::pair(Sess::leaf("r", b), Sess::leaf("l", a));
        assert_eq!(
            observations(sess_steps(&left, &plan, &repo)),
            observations(sess_steps(&right, &plan, &repo)),
            "seed {seed}"
        );
    }
}

#[test]
fn close_always_flushes_server_frames() {
    // A server that never leaves its framing: whatever the schedule, the
    // client's history balances at close (Φ at work).
    let phi = PolicyRef::nullary("srv_pol");
    let mut repo = Repository::new();
    repo.publish("srv", Hist::framed(phi, recv("q", choose([("a", eps())]))));
    let client = request(1, None, seq([send("q", eps()), offer([("a", eps())])]));
    let reg = PolicyRegistry::new();
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..50 {
        let mut net = Network::new();
        net.add_client("c", client.clone(), Plan::new().with(1u32, "srv"));
        let r = scheduler.run(net, &mut rng, 10_000).unwrap();
        assert!(r.outcome.is_success());
        let h = &r.network.components()[0].history;
        assert!(h.is_balanced(), "history {h} not balanced");
    }
}
