//! Rendering executions in the style of the paper's Fig. 3: a sequence
//! of configurations `η, S ∥ …` separated by labelled transitions.

use std::fmt::Write as _;

use crate::network::Network;
use crate::repository::Repository;
use crate::scheduler::TraceStep;
use crate::semantics::component_steps;

/// Replays a trace from an initial network and renders every
/// intermediate configuration, Fig. 3 style.
///
/// Returns `None` if the trace does not replay (a step's action does not
/// match any transition of the current configuration) — which indicates
/// the trace and network do not belong together.
pub fn render_trace(initial: &Network, trace: &[TraceStep], repo: &Repository) -> Option<String> {
    let mut out = String::new();
    let mut net = initial.clone();
    let _ = writeln!(out, "{net}");
    for step in trace {
        let comp = &net.components()[step.component];
        let (action, next) = component_steps(comp, repo)
            .into_iter()
            .find(|(a, _)| a == &step.action)?;
        let _ = writeln!(out, "  ──{action}──▸");
        *net.component_mut(step.component) = next;
        let _ = writeln!(out, "{net}");
    }
    Some(out)
}

/// Renders a trace as a Mermaid sequence diagram (`sequenceDiagram`),
/// ready to paste into any Mermaid renderer: communications become
/// arrows between locations, session openings dashed arrows, and
/// events/framings notes over their location.
pub fn render_mermaid(trace: &[TraceStep]) -> String {
    use crate::semantics::StepAction;
    let mut out = String::from("sequenceDiagram\n");
    for step in trace {
        match &step.action {
            StepAction::Synch {
                chan,
                sender,
                receiver,
            } => {
                let _ = writeln!(out, "  {sender}->>{receiver}: {chan}");
            }
            StepAction::Open {
                request,
                policy,
                client,
                server,
            } => {
                let ann = match policy {
                    Some(p) => format!("open {request} [{p}]"),
                    None => format!("open {request}"),
                };
                let _ = writeln!(out, "  {client}-->>{server}: {ann}");
            }
            StepAction::Close {
                request, client, ..
            } => {
                let _ = writeln!(out, "  Note over {client}: close {request}");
            }
            StepAction::Event { loc, event } => {
                let _ = writeln!(out, "  Note over {loc}: {event}");
            }
            StepAction::FrameOpen { loc, policy } => {
                let _ = writeln!(out, "  Note over {loc}: enter {policy}");
            }
            StepAction::FrameClose { loc, policy } => {
                let _ = writeln!(out, "  Note over {loc}: leave {policy}");
            }
        }
    }
    out
}

/// A compact one-line-per-step rendering of a trace.
pub fn render_actions(trace: &[TraceStep]) -> String {
    let mut out = String::new();
    for (i, step) in trace.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:3}. [component {}] {}",
            i + 1,
            step.component,
            step.action
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorMode;
    use crate::plan::Plan;
    use crate::scheduler::{ChoiceMode, Scheduler};
    use sufs_hexpr::builder::*;
    use sufs_hexpr::parse_hist;
    use sufs_policy::PolicyRegistry;
    use sufs_rng::SeedableRng;
    use sufs_rng::StdRng;

    #[test]
    fn replay_matches_run() {
        let mut repo = Repository::new();
        repo.publish("srv", parse_hist("ext[req -> int[ok -> eps]]").unwrap());
        let client = request(1, None, seq([send("req", eps()), offer([("ok", eps())])]));
        let mut net = Network::new();
        net.add_client("c1", client, Plan::new().with(1u32, "srv"));
        let reg = PolicyRegistry::new();
        let result = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run(net.clone(), &mut StdRng::seed_from_u64(7), 100)
            .unwrap();
        let rendered = render_trace(&net, &result.trace, &repo).expect("trace must replay");
        assert!(rendered.contains("open r1"));
        assert!(rendered.contains("τ"));
        assert!(rendered.contains("close r1"));
        // Final line shows the terminated client.
        assert!(rendered.trim_end().ends_with("c1: ε"));
        let compact = render_actions(&result.trace);
        assert_eq!(compact.lines().count(), result.trace.len());
    }

    #[test]
    fn mermaid_rendering() {
        let mut repo = Repository::new();
        repo.publish(
            "srv",
            parse_hist("ext[req -> #log(1); int[ok -> eps]]").unwrap(),
        );
        let client = request(1, None, seq([send("req", eps()), offer([("ok", eps())])]));
        let mut net = Network::new();
        net.add_client("c1", client, Plan::new().with(1u32, "srv"));
        let reg = PolicyRegistry::new();
        let result = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run(net, &mut StdRng::seed_from_u64(7), 100)
            .unwrap();
        let msc = render_mermaid(&result.trace);
        assert!(msc.starts_with("sequenceDiagram"));
        assert!(msc.contains("c1-->>srv: open r1"));
        assert!(msc.contains("c1->>srv: req"));
        assert!(msc.contains("Note over srv: #log(1)"));
        assert!(msc.contains("srv->>c1: ok"));
        assert!(msc.contains("Note over c1: close r1"));
    }

    #[test]
    fn mismatched_trace_returns_none() {
        let repo = Repository::new();
        let mut net = Network::new();
        net.add_client("c1", ev0("a"), Plan::new());
        let bogus = TraceStep {
            component: 0,
            action: crate::semantics::StepAction::Event {
                loc: "c1".into(),
                event: sufs_hexpr::Event::nullary("zzz"),
            },
        };
        assert!(render_trace(&net, &[bogus], &repo).is_none());
    }
}
