//! The operational semantics of networks (§3): rules *Open*, *Close*
//! (with `Φ`), *Session*, *Net*, *Access* and *Synch*.
//!
//! [`sess_steps`] enumerates the raw transitions of one session tree
//! under a plan and a repository; [`component_steps`] lifts them to a
//! component, producing the history items each transition appends; the
//! scheduler (or the symbolic explorer) then applies the monitor's
//! validity premise `⊨ η` on top.

use std::fmt;

use crate::network::Component;
use crate::plan::Plan;
use crate::repository::Repository;
use crate::session::{pending_frame_closes, Sess};
use sufs_hexpr::semantics::successors;
use sufs_hexpr::{Channel, Dir, Event, Hist, Label, Location, PolicyRef, RequestId};
use sufs_policy::HistoryItem;

/// What a network transition did, for traces and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StepAction {
    /// Rule *Access* on an event `α`.
    Event {
        /// Where the event fired.
        loc: Location,
        /// The event.
        event: Event,
    },
    /// Rule *Access* on an opening framing `⌞φ`.
    FrameOpen {
        /// Where the framing was entered.
        loc: Location,
        /// The policy.
        policy: PolicyRef,
    },
    /// Rule *Access* on a closing framing `⌟φ`.
    FrameClose {
        /// Where the framing was left.
        loc: Location,
        /// The policy.
        policy: PolicyRef,
    },
    /// Rule *Open*: a new session between `client` and `server`.
    Open {
        /// The request being served.
        request: RequestId,
        /// The policy imposed on the session, if any.
        policy: Option<PolicyRef>,
        /// The requesting party.
        client: Location,
        /// The selected service.
        server: Location,
    },
    /// Rule *Close*: the session for `request` ended; the server side is
    /// discarded.
    Close {
        /// The request whose session closed.
        request: RequestId,
        /// The policy that was imposed on the session, if any.
        policy: Option<PolicyRef>,
        /// The party that closed (the requester).
        client: Location,
    },
    /// Rule *Synch*: a communication `τ` between the two parties of a
    /// session.
    Synch {
        /// The channel.
        chan: Channel,
        /// The sending party.
        sender: Location,
        /// The receiving party.
        receiver: Location,
    },
}

impl fmt::Display for StepAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepAction::Event { loc, event } => write!(f, "{loc}: {event}"),
            StepAction::FrameOpen { loc, policy } => write!(f, "{loc}: ⌞{policy}"),
            StepAction::FrameClose { loc, policy } => write!(f, "{loc}: ⌟{policy}"),
            StepAction::Open {
                request,
                policy,
                client,
                server,
            } => match policy {
                Some(p) => write!(f, "open {request},{p}: {client} ⇄ {server}"),
                None => write!(f, "open {request},∅: {client} ⇄ {server}"),
            },
            StepAction::Close {
                request, client, ..
            } => write!(f, "close {request} by {client}"),
            StepAction::Synch {
                chan,
                sender,
                receiver,
            } => write!(f, "τ: {sender} ─{chan}→ {receiver}"),
        }
    }
}

/// One raw transition of a session tree: the action, the history items
/// it appends to the component's history, and the successor tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessStep {
    /// What happened.
    pub action: StepAction,
    /// Items appended to the component history `η` (rule premises write
    /// `ηγ`, `η⌞φ`, or `η·Φ(H″)⌟φ`).
    pub delta: Vec<HistoryItem>,
    /// The successor session tree.
    pub next: Sess,
}

/// Enumerates every transition of a session tree (rules *Open*, *Close*,
/// *Session*, *Access*, *Synch*), without the monitor premise: validity
/// filtering is layered on top by the caller.
///
/// Requests that the plan leaves unbound, or bound to a location absent
/// from the repository, simply produce no transition — the configuration
/// is stuck there, which the plan verifier reports as incompleteness.
/// Openings of capacity-bounded services already at their bound within
/// this tree are likewise disabled (they become enabled again when a
/// session with that service closes).
pub fn sess_steps(sess: &Sess, plan: &Plan, repo: &Repository) -> Vec<SessStep> {
    let load = active_services(sess, repo);
    sess_steps_with_load(sess, plan, repo, &load)
}

/// The number of active instances of each *repository* location inside
/// a session tree: the per-service load used by the §5
/// bounded-availability extension. Client locations (absent from the
/// repository) are not counted, so clients must not reuse service
/// location names.
pub fn active_services(
    sess: &Sess,
    repo: &Repository,
) -> std::collections::BTreeMap<Location, usize> {
    let mut counts = std::collections::BTreeMap::new();
    count_leaves(sess, repo, false, &mut counts);
    counts
}

fn count_leaves(
    sess: &Sess,
    repo: &Repository,
    inside_session: bool,
    counts: &mut std::collections::BTreeMap<Location, usize>,
) {
    match sess {
        Sess::Leaf(loc, _) => {
            // A top-level leaf is a client, not a service instance.
            if inside_session && repo.get(loc).is_some() {
                *counts.entry(loc.clone()).or_insert(0) += 1;
            }
        }
        Sess::Pair(a, b) => {
            count_leaves(a, repo, true, counts);
            count_leaves(b, repo, true, counts);
        }
    }
}

/// [`sess_steps`] against an explicit per-service load (the scheduler
/// passes network-wide counts so capacities are shared across
/// components).
pub fn sess_steps_with_load(
    sess: &Sess,
    plan: &Plan,
    repo: &Repository,
    load: &std::collections::BTreeMap<Location, usize>,
) -> Vec<SessStep> {
    let mut out = Vec::new();
    match sess {
        Sess::Leaf(loc, h) => leaf_steps(loc, h, plan, repo, load, &mut out),
        Sess::Pair(s1, s2) => {
            // Rule Session: either element evolves on its own.
            for step in sess_steps_with_load(s1, plan, repo, load) {
                out.push(SessStep {
                    action: step.action,
                    delta: step.delta,
                    next: Sess::pair(step.next, (**s2).clone()),
                });
            }
            for step in sess_steps_with_load(s2, plan, repo, load) {
                out.push(SessStep {
                    action: step.action,
                    delta: step.delta,
                    next: Sess::pair((**s1).clone(), step.next),
                });
            }
            // Rules Synch and Close need both parties at top level.
            if let (Sess::Leaf(l1, h1), Sess::Leaf(l2, h2)) = (&**s1, &**s2) {
                synch_steps(l1, h1, l2, h2, &mut out);
                close_steps(l1, h1, l2, h2, false, &mut out);
                // [S, S'] ≡ [S', S]: the closer may be the right element.
                close_steps(l2, h2, l1, h1, true, &mut out);
            }
        }
    }
    out
}

fn leaf_steps(
    loc: &Location,
    h: &Hist,
    plan: &Plan,
    repo: &Repository,
    load: &std::collections::BTreeMap<Location, usize>,
    out: &mut Vec<SessStep>,
) {
    for (label, h2) in successors(h) {
        match label {
            Label::Ev(e) => out.push(SessStep {
                action: StepAction::Event {
                    loc: loc.clone(),
                    event: e.clone(),
                },
                delta: vec![HistoryItem::Ev(e)],
                next: Sess::leaf(loc.clone(), h2),
            }),
            Label::FrameOpen(p) => out.push(SessStep {
                action: StepAction::FrameOpen {
                    loc: loc.clone(),
                    policy: p.clone(),
                },
                delta: vec![HistoryItem::Open(p)],
                next: Sess::leaf(loc.clone(), h2),
            }),
            Label::FrameClose(p) => out.push(SessStep {
                action: StepAction::FrameClose {
                    loc: loc.clone(),
                    policy: p.clone(),
                },
                delta: vec![HistoryItem::Close(p)],
                next: Sess::leaf(loc.clone(), h2),
            }),
            Label::Open(r, policy) => {
                // Rule Open: the plan selects the service, the repository
                // provides a fresh copy of its behaviour.
                let Some(server_loc) = plan.service_for(r) else {
                    continue;
                };
                let Some(server) = repo.get(server_loc) else {
                    continue;
                };
                // Bounded availability (§5 extension): a saturated
                // service cannot join another session right now.
                if let Some(Some(cap)) = repo.capacity(server_loc) {
                    if load.get(server_loc).copied().unwrap_or(0) >= cap {
                        continue;
                    }
                }
                let delta = policy
                    .iter()
                    .map(|p| HistoryItem::Open(p.clone()))
                    .collect();
                out.push(SessStep {
                    action: StepAction::Open {
                        request: r,
                        policy: policy.clone(),
                        client: loc.clone(),
                        server: server_loc.clone(),
                    },
                    delta,
                    next: Sess::pair(
                        Sess::leaf(loc.clone(), h2),
                        Sess::leaf(server_loc.clone(), server.clone()),
                    ),
                });
            }
            // A bare leaf can neither communicate (Synch needs the
            // enclosing session) nor close (Close needs the session pair).
            Label::Chan(..) | Label::Close(..) | Label::Tau => {}
        }
    }
}

fn synch_steps(l1: &Location, h1: &Hist, l2: &Location, h2: &Hist, out: &mut Vec<SessStep>) {
    for (lab1, n1) in successors(h1) {
        let Label::Chan(c1, d1) = &lab1 else { continue };
        for (lab2, n2) in successors(h2) {
            let Label::Chan(c2, d2) = &lab2 else { continue };
            if c1 == c2 && *d1 == d2.co() {
                let (sender, receiver) = if *d1 == Dir::Out {
                    (l1.clone(), l2.clone())
                } else {
                    (l2.clone(), l1.clone())
                };
                out.push(SessStep {
                    action: StepAction::Synch {
                        chan: c1.clone(),
                        sender,
                        receiver,
                    },
                    delta: Vec::new(),
                    next: Sess::pair(
                        Sess::leaf(l1.clone(), n1.clone()),
                        Sess::leaf(l2.clone(), n2.clone()),
                    ),
                });
            }
        }
    }
}

/// Rule Close with `closer` firing `close_{r,φ}` and `other` being the
/// discarded server. `swapped` only affects nothing semantically — the
/// session is commutative — but keeps the successor deterministic.
fn close_steps(
    closer_loc: &Location,
    closer: &Hist,
    other_loc: &Location,
    other: &Hist,
    _swapped: bool,
    out: &mut Vec<SessStep>,
) {
    let _ = other_loc;
    for (label, h2) in successors(closer) {
        let Label::Close(r, policy) = label else {
            continue;
        };
        // η′ = Φ(H″)⌟φ: close the server's dangling frames, then the
        // session's own policy frame.
        let mut delta: Vec<HistoryItem> = pending_frame_closes(other)
            .into_iter()
            .map(HistoryItem::Close)
            .collect();
        if let Some(p) = &policy {
            delta.push(HistoryItem::Close(p.clone()));
        }
        out.push(SessStep {
            action: StepAction::Close {
                request: r,
                policy,
                client: closer_loc.clone(),
            },
            delta,
            next: Sess::leaf(closer_loc.clone(), h2),
        });
    }
}

/// Lifts [`sess_steps`] to a component: the successor carries the
/// extended history. Validity (`⊨ η`) is *not* checked here; see the
/// monitor and the schedulers.
pub fn component_steps(c: &Component, repo: &Repository) -> Vec<(StepAction, Component)> {
    sess_steps(&c.sess, &c.plan, repo)
        .into_iter()
        .map(|step| {
            let mut history = c.history.clone();
            history.extend(step.delta);
            (
                step.action,
                Component {
                    history,
                    sess: step.next,
                    plan: c.plan.clone(),
                    origin_loc: c.origin_loc.clone(),
                    origin_client: c.origin_client.clone(),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::parse_hist;

    fn repo_one(loc: &str, src: &str) -> Repository {
        let mut r = Repository::new();
        r.publish(loc, parse_hist(src).unwrap());
        r
    }

    #[test]
    fn access_event_appends_history() {
        let c = Component::new("c1", parse_hist("#a; #b").unwrap(), Plan::new());
        let steps = component_steps(&c, &Repository::new());
        assert_eq!(steps.len(), 1);
        let (action, next) = &steps[0];
        assert!(matches!(action, StepAction::Event { .. }));
        assert_eq!(next.history.len(), 1);
        assert_eq!(next.history.to_string(), "#a");
    }

    #[test]
    fn open_requires_plan_and_repo() {
        let client = request(1, None, seq([send("x", eps())]));
        // No plan: stuck.
        let c = Component::new("c1", client.clone(), Plan::new());
        assert!(component_steps(&c, &repo_one("s", "ext[x -> eps]")).is_empty());
        // Plan points at a missing location: stuck.
        let c = Component::new("c1", client.clone(), Plan::new().with(1u32, "ghost"));
        assert!(component_steps(&c, &repo_one("s", "ext[x -> eps]")).is_empty());
        // Proper plan: the session opens.
        let c = Component::new("c1", client, Plan::new().with(1u32, "s"));
        let steps = component_steps(&c, &repo_one("s", "ext[x -> eps]"));
        assert_eq!(steps.len(), 1);
        assert!(matches!(steps[0].0, StepAction::Open { .. }));
        assert_eq!(steps[0].1.sess.open_sessions(), 1);
    }

    #[test]
    fn open_with_policy_logs_frame() {
        let phi = PolicyRef::nullary("phi");
        let client = request(1, Some(phi.clone()), send("x", eps()));
        let c = Component::new("c1", client, Plan::new().with(1u32, "s"));
        let steps = component_steps(&c, &repo_one("s", "ext[x -> eps]"));
        assert_eq!(steps[0].1.history.to_string(), "⌞phi");
    }

    #[test]
    fn synch_within_session() {
        let client = request(1, None, send("x", eps()));
        let c = Component::new("c1", client, Plan::new().with(1u32, "s"));
        let repo = repo_one("s", "ext[x -> eps]");
        let after_open = component_steps(&c, &repo).remove(0).1;
        let steps = component_steps(&after_open, &repo);
        // Only the communication is possible (the close is not yet
        // reachable: the client body must finish first).
        assert_eq!(steps.len(), 1);
        match &steps[0].0 {
            StepAction::Synch {
                chan,
                sender,
                receiver,
            } => {
                assert_eq!(chan, &Channel::new("x"));
                assert_eq!(sender.as_str(), "c1");
                assert_eq!(receiver.as_str(), "s");
            }
            other => panic!("expected Synch, got {other}"),
        }
        // Synchronisation appends nothing to the history.
        assert_eq!(steps[0].1.history.len(), 0);
    }

    #[test]
    fn close_discards_server_and_closes_frames() {
        // The server enters a framing and never leaves it; the client
        // closes the session: Φ emits the dangling ⌟φs.
        let phi = PolicyRef::nullary("sess_pol");
        let client = request(1, Some(phi.clone()), send("x", eps()));
        let c = Component::new("c1", client, Plan::new().with(1u32, "s"));
        let repo = repo_one("s", "frame srv_pol [ ext[x -> ext[never -> eps]] ]");
        // open
        let c1 = component_steps(&c, &repo).remove(0).1;
        // the server enters its framing
        let c2 = component_steps(&c1, &repo)
            .into_iter()
            .find(|(a, _)| matches!(a, StepAction::FrameOpen { .. }))
            .unwrap()
            .1;
        // synch on x
        let c3 = component_steps(&c2, &repo)
            .into_iter()
            .find(|(a, _)| matches!(a, StepAction::Synch { .. }))
            .unwrap()
            .1;
        // close: the server still waits on `never` inside its framing
        let (action, c4) = component_steps(&c3, &repo)
            .into_iter()
            .find(|(a, _)| matches!(a, StepAction::Close { .. }))
            .unwrap();
        assert!(matches!(action, StepAction::Close { .. }));
        assert!(c4.is_terminated());
        // History: ⌞sess_pol ⌞srv_pol ⌟srv_pol ⌟sess_pol — balanced.
        assert!(c4.history.is_balanced());
        assert_eq!(
            c4.history.to_string(),
            "⌞sess_pol ⌞srv_pol ⌟srv_pol ⌟sess_pol"
        );
    }

    #[test]
    fn nested_sessions_close_inside_out() {
        // client → broker → inner service; the inner session must close
        // before the outer one can.
        let client = request(1, None, send("q", recv("a", eps())));
        let broker = recv(
            "q",
            Hist::seq(request(3, None, send("w", eps())), send("a", eps())),
        );
        let inner = recv("w", eps());
        let mut repo = Repository::new();
        repo.publish("br", broker);
        repo.publish("in", inner);
        let plan = Plan::new().with(1u32, "br").with(3u32, "in");
        let mut comp = Component::new("c1", client, plan);
        // Drive to completion deterministically, preferring any step.
        let mut max_sessions = 0;
        for _ in 0..40 {
            let steps = component_steps(&comp, &repo);
            if steps.is_empty() {
                break;
            }
            max_sessions = max_sessions.max(comp.sess.open_sessions());
            comp = steps.into_iter().next().unwrap().1;
        }
        assert!(comp.is_terminated(), "stuck at: {}", comp.sess);
        assert_eq!(max_sessions, 2, "the sessions really nested");
    }

    #[test]
    fn commutative_close_from_right_element() {
        // Construct a pair whose *right* element holds the close token:
        // the pair [server, client] with client = x̄ · close-token.
        let client_body = Hist::seq(send("x", eps()), Hist::CloseTok(RequestId::new(1), None));
        let pair = Sess::pair(
            Sess::leaf("s", parse_hist("ext[x -> eps]").unwrap()),
            Sess::leaf("c", client_body),
        );
        let plan = Plan::new();
        let repo = Repository::new();
        // After the synch, the right element can close.
        let steps = sess_steps(&pair, &plan, &repo);
        let synch = steps
            .iter()
            .find(|s| matches!(s.action, StepAction::Synch { .. }))
            .unwrap();
        let after = &synch.next;
        let steps2 = sess_steps(after, &plan, &repo);
        let close = steps2
            .iter()
            .find(|s| matches!(s.action, StepAction::Close { .. }))
            .unwrap();
        assert!(matches!(
            &close.next,
            Sess::Leaf(l, h) if l.as_str() == "c" && h.is_eps()
        ));
    }

    #[test]
    fn no_cross_session_communication() {
        // c1 wants to send x to the *outer* partner while the partner is
        // inside a nested session: no synch possible.
        let outer_client = Sess::leaf("c", send("x", eps()));
        let busy_server = Sess::pair(
            Sess::leaf("br", send("w", eps())),
            Sess::leaf("in", recv("w", eps())),
        );
        let pair = Sess::pair(outer_client, busy_server);
        let steps = sess_steps(&pair, &Plan::new(), &Repository::new());
        // The only step is the inner synch on w.
        assert_eq!(steps.len(), 1);
        assert!(
            matches!(&steps[0].action, StepAction::Synch { chan, .. } if chan == &Channel::new("w"))
        );
    }
}
