//! Deterministic fault injection for the network runtime.
//!
//! The paper proves that statically valid plans are *secure and
//! unfailing* under the ideal semantics of §3; this module stresses the
//! claim under an adversarial environment. A [`FaultPlan`] configures a
//! seed-driven [`FaultInjector`] that can, mid-run:
//!
//! * **crash** a service engaged in a session (its leaves become inert);
//! * **drop** a synchronisation (a picked *Synch* step is silently not
//!   applied — the message is lost and both parties stay put, so the
//!   communication is naturally retransmitted on a later pick);
//! * **revoke** a published location (no new session may open there);
//! * **stall** a service for a bounded number of scheduler steps.
//!
//! Everything is a deterministic function of the fault seed: the
//! injector owns its own [`StdRng`] stream, independent of the
//! scheduler's, so enabling a fault plan never perturbs the scheduling
//! decisions themselves and the *same seed yields the same fault
//! schedule and hence the same trace*. When no fault plan is installed
//! the scheduler never touches this module and the zero-fault execution
//! path is byte-identical to the faultless semantics.
//!
//! [`RecoveryTable`] is the mechanism half of plan failover: an ordered
//! chain of fallback plans per component, consulted by the scheduler
//! when a timed-out component escalates to recovery. The *policy* half —
//! building chains out of statically verified plans — lives in
//! `sufs-core::recovery`, which depends on the verifier.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::plan::Plan;
use crate::semantics::StepAction;
use sufs_hexpr::{Channel, Location};
use sufs_rng::{Rng, SeedableRng, StdRng};

/// Configuration of the fault injector: per-step fault probabilities,
/// the timeout/retry policy, and the seed of the injector's private
/// random stream.
///
/// All rates are per scheduler step and default to `0.0`; a default
/// plan injects nothing (but still arms the timeout machinery).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's own random stream.
    pub seed: u64,
    /// Per-step probability of crashing one active service.
    pub crash_rate: f64,
    /// Probability that a picked synchronisation is dropped.
    pub drop_rate: f64,
    /// Per-step probability of revoking one published location.
    pub revoke_rate: f64,
    /// Per-step probability of stalling one active service.
    pub stall_rate: f64,
    /// How many scheduler steps a stalled service stays frozen.
    pub stall_steps: usize,
    /// Upper bound on the number of crashes injected per run.
    pub max_crashes: usize,
    /// Base step budget before a blocked component times out.
    pub timeout_steps: usize,
    /// Retries (with exponential backoff) before escalating to
    /// recovery.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crash_rate: 0.0,
            drop_rate: 0.0,
            revoke_rate: 0.0,
            stall_rate: 0.0,
            stall_steps: 4,
            max_crashes: usize::MAX,
            timeout_steps: 16,
            max_retries: 3,
        }
    }
}

impl FaultPlan {
    /// A plan injecting nothing, with the default timeout policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the injector seed (used by batch runs to derive a
    /// distinct fault schedule per run).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-step crash probability.
    pub fn with_crash(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Sets the synchronisation drop probability.
    pub fn with_drop(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the per-step revocation probability.
    pub fn with_revoke(mut self, rate: f64) -> Self {
        self.revoke_rate = rate;
        self
    }

    /// Sets the per-step stall probability.
    pub fn with_stall(mut self, rate: f64) -> Self {
        self.stall_rate = rate;
        self
    }

    /// Caps the number of crashes injected per run.
    pub fn with_max_crashes(mut self, n: usize) -> Self {
        self.max_crashes = n;
        self
    }

    /// Sets the timeout/retry policy.
    pub fn with_timeout(mut self, timeout_steps: usize, max_retries: u32) -> Self {
        self.timeout_steps = timeout_steps;
        self.max_retries = max_retries;
        self
    }

    /// The step budget a component may stay blocked at retry number
    /// `retries`: deterministic exponential backoff doubling the base
    /// budget per retry.
    pub fn budget(&self, retries: u32) -> usize {
        self.timeout_steps
            .saturating_mul(1usize << retries.min(32) as usize)
    }

    /// Parses a compact fault specification, e.g.
    /// `"crash=0.01,drop=0.05,seed=7,timeout=20,retries=2"`.
    ///
    /// Recognised keys: `crash`, `drop`, `revoke`, `stall` (rates in
    /// `[0,1]`), `stall_steps`, `max_crashes`, `seed`, `timeout`,
    /// `retries`. Unmentioned keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys or malformed
    /// values.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad fault setting `{pair}` (want key=value)"))?;
            let key = key.trim();
            let value = value.trim();
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("bad rate `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("rate `{v}` for `{key}` is outside [0, 1]"));
                }
                Ok(r)
            };
            let nat = |v: &str| -> Result<usize, String> {
                v.parse()
                    .map_err(|_| format!("bad number `{v}` for `{key}`"))
            };
            match key {
                "crash" => plan.crash_rate = rate(value)?,
                "drop" => plan.drop_rate = rate(value)?,
                "revoke" => plan.revoke_rate = rate(value)?,
                "stall" => plan.stall_rate = rate(value)?,
                "stall_steps" => plan.stall_steps = nat(value)?,
                "max_crashes" => plan.max_crashes = nat(value)?,
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "timeout" => plan.timeout_steps = nat(value)?,
                "retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| format!("bad retries `{value}`"))?;
                }
                other => return Err(format!("unknown fault setting `{other}`")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crash={},drop={},revoke={},stall={},stall_steps={},timeout={},retries={},seed={}",
            self.crash_rate,
            self.drop_rate,
            self.revoke_rate,
            self.stall_rate,
            self.stall_steps,
            self.timeout_steps,
            self.max_retries,
            self.seed
        )?;
        if self.max_crashes != usize::MAX {
            write!(f, ",max_crashes={}", self.max_crashes)?;
        }
        Ok(())
    }
}

/// One injected fault (or fault-handling action), for run logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A service engaged in a session crashed.
    Crash(Location),
    /// A published location was revoked: no new sessions may open there.
    Revoke(Location),
    /// A service froze for the given number of steps.
    Stall(Location, usize),
    /// A picked synchronisation was dropped (message lost).
    DropSynch {
        /// The channel of the lost message.
        chan: Channel,
        /// The sender.
        sender: Location,
        /// The intended receiver.
        receiver: Location,
    },
    /// A blocked component timed out and entered retry number `retry`.
    Timeout {
        /// The blocked component.
        component: usize,
        /// The retry this timeout starts (1-based).
        retry: u32,
    },
    /// A component failed over to a fallback plan.
    Failover {
        /// The recovered component.
        component: usize,
        /// The plan it re-bound to.
        plan: Plan,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash(l) => write!(f, "crash {l}"),
            FaultKind::Revoke(l) => write!(f, "revoke {l}"),
            FaultKind::Stall(l, n) => write!(f, "stall {l} for {n}"),
            FaultKind::DropSynch {
                chan,
                sender,
                receiver,
            } => write!(f, "drop {sender} ─{chan}→ {receiver}"),
            FaultKind::Timeout { component, retry } => {
                write!(f, "component {component} timed out (retry {retry})")
            }
            FaultKind::Failover { component, plan } => {
                write!(f, "component {component} failed over to {plan}")
            }
        }
    }
}

/// A timestamped fault event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The scheduler step (fuel tick) at which the event happened.
    pub step: usize,
    /// What happened.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.step, self.kind)
    }
}

/// The seed-driven fault injector: decides, step by step, which faults
/// to inject, and answers whether a given transition is blocked by an
/// already injected fault.
///
/// All randomness comes from the injector's private [`StdRng`]; fault
/// decisions are drawn in a fixed order each step (stall expiry, crash,
/// revoke, stall), so the schedule is a pure function of the seed and
/// the evolving set of fault candidates.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    crashed: BTreeSet<Location>,
    revoked: BTreeSet<Location>,
    stalled: BTreeMap<Location, usize>,
    crashes: usize,
}

impl FaultInjector {
    /// An injector for `plan`, seeding the private stream from
    /// `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            crashed: BTreeSet::new(),
            revoked: BTreeSet::new(),
            stalled: BTreeMap::new(),
            crashes: 0,
        }
    }

    /// The fault plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Locations crashed so far.
    pub fn crashed(&self) -> &BTreeSet<Location> {
        &self.crashed
    }

    /// Locations revoked so far.
    pub fn revoked(&self) -> &BTreeSet<Location> {
        &self.revoked
    }

    /// Returns `true` if `loc` is crashed or revoked — a failover plan
    /// must not bind such a location.
    pub fn is_dead(&self, loc: &Location) -> bool {
        self.crashed.contains(loc) || self.revoked.contains(loc)
    }

    /// Advances the fault schedule by one scheduler step: expires
    /// stalls, then draws crash/revoke/stall decisions against the
    /// currently `active` services (in sessions) and the `published`
    /// locations. Injected faults are appended to `log`.
    pub fn begin_step(
        &mut self,
        active: &[Location],
        published: &[Location],
        step: usize,
        log: &mut Vec<FaultEvent>,
    ) {
        // Stalls expire first, so a 1-step stall blocks exactly one step.
        self.stalled.retain(|_, left| {
            *left -= 1;
            *left > 0
        });
        if self.rng.gen_bool(self.plan.crash_rate) && self.crashes < self.plan.max_crashes {
            let victims: Vec<&Location> = active
                .iter()
                .filter(|l| !self.crashed.contains(*l))
                .collect();
            if !victims.is_empty() {
                let victim = victims[self.rng.gen_range(0..victims.len())].clone();
                self.crashed.insert(victim.clone());
                self.crashes += 1;
                log.push(FaultEvent {
                    step,
                    kind: FaultKind::Crash(victim),
                });
            }
        }
        if self.rng.gen_bool(self.plan.revoke_rate) {
            let victims: Vec<&Location> = published
                .iter()
                .filter(|l| !self.revoked.contains(*l) && !self.crashed.contains(*l))
                .collect();
            if !victims.is_empty() {
                let victim = victims[self.rng.gen_range(0..victims.len())].clone();
                self.revoked.insert(victim.clone());
                log.push(FaultEvent {
                    step,
                    kind: FaultKind::Revoke(victim),
                });
            }
        }
        if self.rng.gen_bool(self.plan.stall_rate) && self.plan.stall_steps > 0 {
            let victims: Vec<&Location> = active
                .iter()
                .filter(|l| !self.crashed.contains(*l) && !self.stalled.contains_key(*l))
                .collect();
            if !victims.is_empty() {
                let victim = victims[self.rng.gen_range(0..victims.len())].clone();
                self.stalled.insert(victim.clone(), self.plan.stall_steps);
                log.push(FaultEvent {
                    step,
                    kind: FaultKind::Stall(victim, self.plan.stall_steps),
                });
            }
        }
    }

    /// Decides whether the synchronisation the scheduler just picked is
    /// dropped (message lost, step not applied).
    pub fn drop_synch(&mut self) -> bool {
        self.rng.gen_bool(self.plan.drop_rate)
    }

    /// Returns `true` if an injected fault disables this transition:
    /// crashed or stalled parties cannot act or communicate, and
    /// crashed/revoked/stalled locations cannot join new sessions.
    /// *Close* is never blocked — a client may always tear down a
    /// session with a dead partner (Φ flushes the partner's frames).
    pub fn blocks(&self, action: &StepAction) -> bool {
        let down = |l: &Location| self.crashed.contains(l) || self.stalled.contains_key(l);
        match action {
            StepAction::Event { loc, .. }
            | StepAction::FrameOpen { loc, .. }
            | StepAction::FrameClose { loc, .. } => down(loc),
            StepAction::Synch {
                sender, receiver, ..
            } => down(sender) || down(receiver),
            StepAction::Open { server, .. } => down(server) || self.revoked.contains(server),
            StepAction::Close { .. } => false,
        }
    }
}

/// Ordered fallback plans per component: the scheduler consults the
/// chain when a component escalates from timeout to recovery, skipping
/// entries that bind crashed or revoked locations.
///
/// This is pure mechanism; build chains from statically verified plans
/// with `sufs-core`'s `recovery` module so the §5 guarantee extends to
/// every plan a run can fail over to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryTable {
    chains: Vec<Vec<Plan>>,
}

impl RecoveryTable {
    /// An empty table (no component can fail over).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the fallback chain for the next component index.
    pub fn push_chain(&mut self, chain: Vec<Plan>) {
        self.chains.push(chain);
    }

    /// Builder-style [`RecoveryTable::push_chain`].
    pub fn with_chain(mut self, chain: Vec<Plan>) -> Self {
        self.push_chain(chain);
        self
    }

    /// The fallback chain of component `i` (empty if none registered).
    pub fn chain(&self, i: usize) -> &[Plan] {
        self.chains.get(i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The number of registered chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Returns `true` if no chain is registered.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::Event;

    #[test]
    fn parse_roundtrip_and_defaults() {
        let p = FaultPlan::parse("crash=0.25,drop=0.5,seed=7,timeout=20,retries=2").unwrap();
        assert_eq!(p.crash_rate, 0.25);
        assert_eq!(p.drop_rate, 0.5);
        assert_eq!(p.revoke_rate, 0.0);
        assert_eq!(p.seed, 7);
        assert_eq!(p.timeout_steps, 20);
        assert_eq!(p.max_retries, 2);
        // Display output parses back to the same plan.
        let q = FaultPlan::parse(&p.to_string()).unwrap();
        assert_eq!(p, q);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("crash").unwrap_err().contains("key=value"));
        assert!(FaultPlan::parse("crash=2.0")
            .unwrap_err()
            .contains("outside"));
        assert!(FaultPlan::parse("warp=0.1")
            .unwrap_err()
            .contains("unknown fault setting"));
        assert!(FaultPlan::parse("seed=abc")
            .unwrap_err()
            .contains("bad seed"));
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let p = FaultPlan::default().with_timeout(10, 5);
        assert_eq!(p.budget(0), 10);
        assert_eq!(p.budget(1), 20);
        assert_eq!(p.budget(3), 80);
    }

    #[test]
    fn injector_is_deterministic_in_its_seed() {
        let active = [Location::new("a"), Location::new("b")];
        let published = [Location::new("a"), Location::new("b"), Location::new("c")];
        let schedule = |seed: u64| {
            let plan = FaultPlan::default()
                .with_seed(seed)
                .with_crash(0.3)
                .with_revoke(0.2)
                .with_stall(0.2);
            let mut inj = FaultInjector::new(plan);
            let mut log = Vec::new();
            for step in 0..200 {
                inj.begin_step(&active, &published, step, &mut log);
            }
            log
        };
        assert_eq!(schedule(11), schedule(11));
        assert_ne!(schedule(11), schedule(12));
        assert!(!schedule(11).is_empty());
    }

    #[test]
    fn crashed_services_block_their_steps_but_not_close() {
        let mut inj = FaultInjector::new(FaultPlan::default().with_crash(1.0));
        let mut log = Vec::new();
        inj.begin_step(&[Location::new("s")], &[Location::new("s")], 0, &mut log);
        assert_eq!(log.len(), 1);
        assert!(inj.is_dead(&Location::new("s")));
        assert!(inj.blocks(&StepAction::Event {
            loc: Location::new("s"),
            event: Event::nullary("e"),
        }));
        assert!(inj.blocks(&StepAction::Synch {
            chan: Channel::new("x"),
            sender: Location::new("c"),
            receiver: Location::new("s"),
        }));
        assert!(inj.blocks(&StepAction::Open {
            request: sufs_hexpr::RequestId::new(1),
            policy: None,
            client: Location::new("c"),
            server: Location::new("s"),
        }));
        assert!(!inj.blocks(&StepAction::Close {
            request: sufs_hexpr::RequestId::new(1),
            policy: None,
            client: Location::new("c"),
        }));
        // The healthy client is unaffected.
        assert!(!inj.blocks(&StepAction::Event {
            loc: Location::new("c"),
            event: Event::nullary("e"),
        }));
    }

    #[test]
    fn stalls_expire() {
        let plan = FaultPlan::default().with_stall(1.0);
        let mut inj = FaultInjector::new(plan);
        let mut log = Vec::new();
        let s = Location::new("s");
        inj.begin_step(std::slice::from_ref(&s), &[], 0, &mut log);
        assert!(matches!(log[0].kind, FaultKind::Stall(_, 4)));
        let ev = StepAction::Event {
            loc: s.clone(),
            event: Event::nullary("e"),
        };
        assert!(inj.blocks(&ev));
        // The stall re-arms each step here (rate 1.0 on a still-active
        // service is skipped while stalled), so expire it manually.
        for step in 1..=4 {
            inj.begin_step(&[], &[], step, &mut log);
        }
        assert!(!inj.blocks(&ev));
        assert!(!inj.is_dead(&s), "a stall is transient");
    }

    #[test]
    fn revocation_only_blocks_new_sessions() {
        let mut inj = FaultInjector::new(FaultPlan::default().with_revoke(1.0));
        let mut log = Vec::new();
        inj.begin_step(&[], &[Location::new("s")], 0, &mut log);
        assert!(matches!(&log[0].kind, FaultKind::Revoke(l) if l.as_str() == "s"));
        assert!(inj.blocks(&StepAction::Open {
            request: sufs_hexpr::RequestId::new(1),
            policy: None,
            client: Location::new("c"),
            server: Location::new("s"),
        }));
        // An ongoing conversation is unaffected.
        assert!(!inj.blocks(&StepAction::Synch {
            chan: Channel::new("x"),
            sender: Location::new("c"),
            receiver: Location::new("s"),
        }));
    }

    #[test]
    fn max_crashes_caps_the_damage() {
        let plan = FaultPlan::default().with_crash(1.0).with_max_crashes(1);
        let mut inj = FaultInjector::new(plan);
        let mut log = Vec::new();
        let locs = [Location::new("a"), Location::new("b")];
        for step in 0..10 {
            inj.begin_step(&locs, &[], step, &mut log);
        }
        assert_eq!(inj.crashed().len(), 1);
    }

    #[test]
    fn recovery_table_chains() {
        let p1 = Plan::new().with(1u32, "a");
        let p2 = Plan::new().with(1u32, "b");
        let t = RecoveryTable::new().with_chain(vec![p1.clone(), p2.clone()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.chain(0), &[p1, p2]);
        assert!(t.chain(7).is_empty());
        assert!(RecoveryTable::new().is_empty());
    }
}
