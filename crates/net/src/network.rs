//! Network configurations: parallel components, each with its own
//! execution history.

use std::fmt;

use crate::plan::Plan;
use crate::session::Sess;
use sufs_hexpr::{Hist, Location};
use sufs_policy::History;

/// One top-level component of a network: a client (or the session tree
/// it evolved into) together with its execution history `η`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Component {
    /// The execution history `η` of this component.
    pub history: History,
    /// The session tree.
    pub sess: Sess,
    /// The plan `π` orchestrating this component's requests.
    pub plan: Plan,
    /// The client's location, as initially added to the network.
    pub origin_loc: Location,
    /// The client's initial behaviour — the recovery point fault
    /// failover restarts from (the history is kept and Φ-closed, the
    /// session tree is reset to this fresh leaf).
    pub origin_client: Hist,
}

impl Component {
    /// A fresh component: empty history, a located client behaviour and
    /// its plan.
    pub fn new(loc: impl Into<Location>, client: Hist, plan: Plan) -> Self {
        let loc = loc.into();
        Component {
            history: History::new(),
            sess: Sess::leaf(loc.clone(), client.clone()),
            plan,
            origin_loc: loc,
            origin_client: client,
        }
    }

    /// Returns `true` if the component terminated successfully.
    pub fn is_terminated(&self) -> bool {
        self.sess.is_terminated()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.history, self.sess)
    }
}

/// A network `N`: the parallel composition of components, evaluated in an
/// interleaving fashion (rule *Net*).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Network {
    components: Vec<Component>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a client with its plan; returns the component index.
    pub fn add_client(&mut self, loc: impl Into<Location>, client: Hist, plan: Plan) -> usize {
        self.components.push(Component::new(loc, client, plan));
        self.components.len() - 1
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Mutable access to one component.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn component_mut(&mut self, idx: usize) -> &mut Component {
        &mut self.components[idx]
    }

    /// The number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the network has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns `true` if every component terminated successfully.
    pub fn is_terminated(&self) -> bool {
        self.components.iter().all(Component::is_terminated)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, " ∥ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Component> for Network {
    fn from_iter<T: IntoIterator<Item = Component>>(iter: T) -> Self {
        Network {
            components: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    #[test]
    fn build_and_inspect() {
        let mut net = Network::new();
        assert!(net.is_empty());
        let i = net.add_client("c1", parse_hist("#a").unwrap(), Plan::new());
        assert_eq!(i, 0);
        assert_eq!(net.len(), 1);
        assert!(!net.is_terminated());
        assert!(!net.components()[0].is_terminated());
    }

    #[test]
    fn termination() {
        let mut net = Network::new();
        net.add_client("c1", Hist::Eps, Plan::new());
        net.add_client("c2", Hist::Eps, Plan::new());
        assert!(net.is_terminated());
    }

    #[test]
    fn display_parallel() {
        let mut net = Network::new();
        net.add_client("c1", Hist::Eps, Plan::new());
        net.add_client("c2", parse_hist("#x").unwrap(), Plan::new());
        let s = net.to_string();
        assert!(s.contains("∥"));
        assert!(s.contains("c1: ε"));
        assert!(s.contains("c2: #x"));
    }

    #[test]
    fn from_iterator() {
        let net: Network = [Component::new("c", Hist::Eps, Plan::new())]
            .into_iter()
            .collect();
        assert_eq!(net.len(), 1);
        assert!(net.components()[0].history.is_empty());
    }
}
