//! Schedulers executing networks of services.
//!
//! Two orthogonal switches reproduce the paper's discussion:
//!
//! * [`MonitorMode`] — whether the validity premise `⊨ η` is *enforced*
//!   at run time (the paper's semantics), merely *audited* after the run
//!   (the observation mode of the experiments), or fully *off* (§5:
//!   verified plans make any monitoring unnecessary);
//! * [`ChoiceMode`] — *angelic* (the paper's operational semantics: a
//!   transition exists only if both parties agree, so an unreceivable
//!   output is silently avoided) or *committed* (the realistic reading
//!   the paper appeals to when it calls plan `π₂` invalid: "the service
//!   can decide what to send on its own"; a committed unreceivable send
//!   deadlocks the session).
//!
//! The unfailing-services experiment (E8) runs verified plans with the
//! monitor off and committed choices, and checks that no run aborts or
//! deadlocks.

use sufs_rng::Rng;

use crate::faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan, RecoveryTable};
use crate::monitor::{MonitorMode, ValidityMonitor};
use crate::network::Network;
use crate::plan::Plan;
use crate::repository::Repository;
use crate::semantics::{active_services, sess_steps_with_load, SessStep, StepAction};
use crate::session::Sess;
use sufs_hexpr::semantics::successors;
use sufs_hexpr::{Channel, Dir, Label, Location, PolicyRef};
use sufs_policy::{HistoryItem, PolicyError, PolicyRegistry};

/// How internal choices are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceMode {
    /// The paper's angelic semantics: only mutually agreeable
    /// communications are enabled.
    Angelic,
    /// Senders commit to an output regardless of the partner's ability
    /// to receive it; an unreceivable committed send deadlocks.
    Committed,
}

/// Why a component could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockReason {
    /// No rule applies: typically two parties waiting on each other.
    NoTransitions,
    /// A committed send found no receiver (non-compliance made visible).
    UnmatchedSend {
        /// The channel the sender committed to.
        chan: Channel,
        /// The committed sender.
        sender: Location,
    },
}

/// The terminal status of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every component terminated successfully.
    Completed,
    /// The enforcing monitor blocked every transition of a component:
    /// the execution aborts on a security violation.
    SecurityAbort {
        /// The blocked component.
        component: usize,
        /// The policy whose violation blocked it.
        policy: PolicyRef,
    },
    /// A component is stuck with no applicable transition.
    Deadlock {
        /// The stuck component.
        component: usize,
        /// Why it is stuck.
        reason: DeadlockReason,
    },
    /// The step budget ran out (e.g. a compliant infinite conversation).
    OutOfFuel,
    /// A blocked component exhausted its retries and no fallback plan
    /// could revive it: an injected fault killed the run.
    FaultAbort {
        /// The component that could not be recovered.
        component: usize,
    },
    /// A blocked component exhausted its retries with no recovery
    /// configured.
    TimedOut {
        /// The component that timed out.
        component: usize,
    },
    /// Every component terminated, but only after at least one plan
    /// failover: the run succeeded *via* recovery.
    RecoveredVia {
        /// The (last) recovered component.
        component: usize,
        /// The fallback plan it completed under.
        plan: Plan,
    },
}

impl Outcome {
    /// Returns `true` when every component terminated —
    /// [`Outcome::Completed`], or [`Outcome::RecoveredVia`] when
    /// termination needed a plan failover.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Completed | Outcome::RecoveredVia { .. })
    }
}

/// One scheduled step, for traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The component that moved.
    pub component: usize,
    /// What it did.
    pub action: StepAction,
}

/// The result of running a network.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// The scheduled steps, in order.
    pub trace: Vec<TraceStep>,
    /// The final network configuration.
    pub network: Network,
    /// With the monitor off: policies whose violation the run *would*
    /// have incurred, detected post hoc per component.
    pub violations: Vec<(usize, PolicyRef)>,
    /// Faults injected (and recovery actions taken) during the run, in
    /// order; empty when no fault plan is installed.
    pub faults: Vec<FaultEvent>,
}

/// A scheduler configuration.
#[derive(Debug, Clone)]
pub struct Scheduler<'a> {
    repo: &'a Repository,
    registry: &'a PolicyRegistry,
    monitor: MonitorMode,
    choice: ChoiceMode,
    faults: Option<FaultPlan>,
    recovery: Option<RecoveryTable>,
}

/// Per-run fault-handling state: the injector plus the timeout/retry
/// and failover bookkeeping of each component.
struct FaultState {
    injector: FaultInjector,
    /// Consecutive steps each component spent with no enabled
    /// transition.
    blocked: Vec<usize>,
    /// Retries burnt so far per component (backoff doubles the budget).
    retries: Vec<u32>,
    /// Next untried entry in each component's fallback chain.
    chain_pos: Vec<usize>,
    /// Failovers performed: `(component, plan)` in order.
    recovered: Vec<(usize, Plan)>,
}

impl FaultState {
    fn new(plan: FaultPlan, components: usize) -> Self {
        FaultState {
            injector: FaultInjector::new(plan),
            blocked: vec![0; components],
            retries: vec![0; components],
            chain_pos: vec![0; components],
            recovered: vec![],
        }
    }
}

enum Candidate {
    Step {
        component: usize,
        step: SessStep,
        /// The advanced monitor; `None` when the monitor is off (nothing
        /// is tracked at all — the §5 point).
        monitor: Option<ValidityMonitor>,
    },
    /// Committed choice: a sender inside a session commits to one of its
    /// outputs "regardless of the environment"; the leaf is rewritten to
    /// the single chosen branch. The rewrite is silent (no trace entry)
    /// and may subsequently deadlock the session.
    Commit { component: usize, next_sess: Sess },
}

impl<'a> Scheduler<'a> {
    /// A scheduler over the given repository and policy registry.
    pub fn new(
        repo: &'a Repository,
        registry: &'a PolicyRegistry,
        monitor: MonitorMode,
        choice: ChoiceMode,
    ) -> Self {
        Scheduler {
            repo,
            registry,
            monitor,
            choice,
            faults: None,
            recovery: None,
        }
    }

    /// Installs a fault plan: every run injects the deterministic fault
    /// schedule drawn from `faults.seed` (batch runs derive one seed per
    /// run) and arms the timeout/retry machinery. Without this, the
    /// execution path is byte-identical to the faultless semantics.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs fallback chains: a component whose retries are
    /// exhausted fails over to the next chain entry that binds no
    /// crashed or revoked location, restarting its client from scratch
    /// with its history Φ-closed.
    pub fn with_recovery(mut self, recovery: RecoveryTable) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Runs the network under a uniformly random scheduler for at most
    /// `fuel` steps.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if a policy mentioned by the network
    /// cannot be resolved.
    pub fn run<R: Rng>(
        &self,
        network: Network,
        rng: &mut R,
        fuel: usize,
    ) -> Result<RunResult, PolicyError> {
        self.run_inner(network, rng, fuel, self.faults.clone())
    }

    fn run_inner<R: Rng>(
        &self,
        mut network: Network,
        rng: &mut R,
        fuel: usize,
        faults: Option<FaultPlan>,
    ) -> Result<RunResult, PolicyError> {
        let mut monitors: Vec<ValidityMonitor> = vec![ValidityMonitor::new(); network.len()];
        let mut trace = Vec::new();
        let mut fault_log: Vec<FaultEvent> = Vec::new();
        let mut fstate = faults.map(|fp| FaultState::new(fp, network.len()));
        for tick in 0..fuel {
            if network.is_terminated() {
                let outcome = match fstate.as_ref().and_then(|fs| fs.recovered.last()) {
                    Some((component, plan)) => Outcome::RecoveredVia {
                        component: *component,
                        plan: plan.clone(),
                    },
                    None => Outcome::Completed,
                };
                return self.finish(outcome, trace, network, fault_log);
            }
            let mut candidates = Vec::new();
            let mut aborted: Option<(usize, PolicyRef)> = None;
            // Network-wide per-service load: capacities of bounded
            // services are shared across components.
            let mut total_load = std::collections::BTreeMap::new();
            for comp in network.components() {
                for (loc, n) in active_services(&comp.sess, self.repo) {
                    *total_load.entry(loc).or_insert(0) += n;
                }
            }
            // Fault injection draws happen before candidate collection,
            // on this step's set of engaged services.
            if let Some(fs) = &mut fstate {
                let active: Vec<Location> = total_load.keys().cloned().collect();
                let published: Vec<Location> = self.repo.locations().cloned().collect();
                fs.injector
                    .begin_step(&active, &published, tick, &mut fault_log);
            }
            let mut enabled = vec![false; network.len()];
            for (i, comp) in network.components().iter().enumerate() {
                if comp.is_terminated() {
                    continue;
                }
                let raw = sess_steps_with_load(&comp.sess, &comp.plan, self.repo, &total_load);
                for step in raw {
                    if let Some(fs) = &fstate {
                        if fs.injector.blocks(&step.action) {
                            continue;
                        }
                    }
                    match self.monitor {
                        MonitorMode::Enforcing => {
                            let mut m = monitors[i].clone();
                            let violation = m.observe_all(&step.delta, self.registry)?;
                            if let Some(p) = violation {
                                // Pruned by the monitor; remember the
                                // policy for the abort diagnosis.
                                if aborted.is_none() {
                                    aborted = Some((i, p));
                                }
                            } else {
                                enabled[i] = true;
                                candidates.push(Candidate::Step {
                                    component: i,
                                    step,
                                    monitor: Some(m),
                                });
                            }
                        }
                        MonitorMode::Audit | MonitorMode::Off => {
                            // §5: nothing is observed, nothing is checked
                            // during the run.
                            enabled[i] = true;
                            candidates.push(Candidate::Step {
                                component: i,
                                step,
                                monitor: None,
                            });
                        }
                    }
                }
                if self.choice == ChoiceMode::Committed {
                    for next_sess in commitments(&comp.sess) {
                        enabled[i] = true;
                        candidates.push(Candidate::Commit {
                            component: i,
                            next_sess,
                        });
                    }
                }
            }
            // Timeout/retry/failover: with faults armed, a blocked
            // component waits with exponential backoff instead of
            // deadlocking the run immediately.
            if let Some(fs) = &mut fstate {
                for (i, &live) in enabled.iter().enumerate() {
                    if network.components()[i].is_terminated() || live {
                        fs.blocked[i] = 0;
                        continue;
                    }
                    fs.blocked[i] += 1;
                    if fs.blocked[i] <= fs.injector.plan().budget(fs.retries[i]) {
                        continue;
                    }
                    if fs.retries[i] < fs.injector.plan().max_retries {
                        fs.retries[i] += 1;
                        fs.blocked[i] = 0;
                        fault_log.push(FaultEvent {
                            step: tick,
                            kind: FaultKind::Timeout {
                                component: i,
                                retry: fs.retries[i],
                            },
                        });
                        continue;
                    }
                    // Retries exhausted: escalate to plan failover.
                    if self.try_failover(
                        i,
                        &mut network,
                        fs,
                        &mut monitors,
                        &mut fault_log,
                        tick,
                    )? {
                        continue;
                    }
                    let outcome = if self.recovery.is_some() {
                        Outcome::FaultAbort { component: i }
                    } else {
                        Outcome::TimedOut { component: i }
                    };
                    return self.finish(outcome, trace, network, fault_log);
                }
                if candidates.is_empty() {
                    // Everyone is blocked: let the timeout clocks tick.
                    continue;
                }
            } else if candidates.is_empty() {
                let outcome = match aborted {
                    Some((component, policy)) => Outcome::SecurityAbort { component, policy },
                    None => {
                        let component = network
                            .components()
                            .iter()
                            .position(|c| !c.is_terminated())
                            .unwrap_or(0);
                        let reason = diagnose_deadlock(&network.components()[component].sess);
                        Outcome::Deadlock { component, reason }
                    }
                };
                return self.finish(outcome, trace, network, fault_log);
            }
            let pick = rng.gen_range(0..candidates.len());
            match candidates.swap_remove(pick) {
                Candidate::Step {
                    component,
                    step,
                    monitor,
                } => {
                    if let StepAction::Synch {
                        chan,
                        sender,
                        receiver,
                    } = &step.action
                    {
                        if let Some(fs) = &mut fstate {
                            if fs.injector.drop_synch() {
                                // Message lost: neither party advances;
                                // the synch stays enabled and will be
                                // retransmitted on a later pick.
                                fault_log.push(FaultEvent {
                                    step: tick,
                                    kind: FaultKind::DropSynch {
                                        chan: chan.clone(),
                                        sender: sender.clone(),
                                        receiver: receiver.clone(),
                                    },
                                });
                                continue;
                            }
                        }
                    }
                    trace.push(TraceStep {
                        component,
                        action: step.action.clone(),
                    });
                    let comp = network.component_mut(component);
                    comp.history.extend(step.delta);
                    comp.sess = step.next;
                    if let Some(m) = monitor {
                        monitors[component] = m;
                    }
                }
                Candidate::Commit {
                    component,
                    next_sess,
                } => {
                    network.component_mut(component).sess = next_sess;
                }
            }
        }
        self.finish(Outcome::OutOfFuel, trace, network, fault_log)
    }

    /// Fails component `i` over to the next usable fallback plan, if
    /// any: the chain entry must differ from the current plan and bind
    /// no crashed, revoked or unpublished location. On success the
    /// component's history is Φ-closed (every dangling frame gets its
    /// `⌟φ`, so each policy window is checked separately and the restart
    /// cannot create cross-window violations), its session tree resets
    /// to the original client leaf, and the timeout clock restarts.
    fn try_failover(
        &self,
        i: usize,
        network: &mut Network,
        fs: &mut FaultState,
        monitors: &mut [ValidityMonitor],
        fault_log: &mut Vec<FaultEvent>,
        tick: usize,
    ) -> Result<bool, PolicyError> {
        let Some(table) = &self.recovery else {
            return Ok(false);
        };
        let chain = table.chain(i);
        let current = network.components()[i].plan.clone();
        while fs.chain_pos[i] < chain.len() {
            let candidate = chain[fs.chain_pos[i]].clone();
            fs.chain_pos[i] += 1;
            if candidate == current {
                continue;
            }
            let usable = candidate
                .iter()
                .all(|(_, loc)| !fs.injector.is_dead(loc) && self.repo.get(loc).is_some());
            if !usable {
                continue;
            }
            let comp = network.component_mut(i);
            let closes: Vec<HistoryItem> = comp
                .history
                .pending_opens()
                .into_iter()
                .rev()
                .map(HistoryItem::Close)
                .collect();
            if self.monitor == MonitorMode::Enforcing {
                // Keep the incremental monitor in sync with the Φ-closed
                // history (closings cannot introduce a violation).
                monitors[i].observe_all(&closes, self.registry)?;
            }
            comp.history.extend(closes);
            comp.sess = Sess::leaf(comp.origin_loc.clone(), comp.origin_client.clone());
            comp.plan = candidate.clone();
            fs.blocked[i] = 0;
            fs.retries[i] = 0;
            fs.recovered.push((i, candidate.clone()));
            fault_log.push(FaultEvent {
                step: tick,
                kind: FaultKind::Failover {
                    component: i,
                    plan: candidate,
                },
            });
            return Ok(true);
        }
        Ok(false)
    }

    fn finish(
        &self,
        outcome: Outcome,
        trace: Vec<TraceStep>,
        network: Network,
        faults: Vec<FaultEvent>,
    ) -> Result<RunResult, PolicyError> {
        let mut violations = Vec::new();
        if self.monitor == MonitorMode::Audit {
            for (i, comp) in network.components().iter().enumerate() {
                if let Some((_, p)) = comp.history.first_violation(self.registry)? {
                    violations.push((i, p));
                }
            }
        }
        Ok(RunResult {
            outcome,
            trace,
            network,
            violations,
            faults,
        })
    }
}

/// Aggregate statistics over repeated runs of the same network: the
/// empirical counterpart of the §5 guarantee ("how often did anything
/// bad happen?").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Number of runs performed.
    pub runs: usize,
    /// Runs in which every component terminated.
    pub completed: usize,
    /// Runs ending in a deadlock.
    pub deadlocks: usize,
    /// Runs aborted by the enforcing monitor.
    pub aborts: usize,
    /// Runs that exhausted their step budget.
    pub out_of_fuel: usize,
    /// Runs that (with the monitor off) incurred at least one policy
    /// violation.
    pub violating_runs: usize,
    /// Total scheduled steps across all runs.
    pub total_steps: usize,
    /// Runs ending with a component out of retries and no recovery
    /// configured.
    pub timed_out: usize,
    /// Runs ending with a component out of retries and its fallback
    /// chain exhausted.
    pub fault_aborts: usize,
    /// Runs that completed only after at least one plan failover.
    pub recovered: usize,
    /// Total injected fault events across all runs.
    pub faults_injected: usize,
}

impl BatchSummary {
    /// Returns `true` if no run failed in any way: the §5 prediction for
    /// a verified plan. Runs that completed via failover count as
    /// successes — unfailing means the service was always delivered, not
    /// that nothing ever broke.
    pub fn is_unfailing(&self) -> bool {
        self.deadlocks == 0
            && self.aborts == 0
            && self.violating_runs == 0
            && self.timed_out == 0
            && self.fault_aborts == 0
    }

    /// Returns `true` if no run violated a policy — monitor aborts and
    /// audited violations both count against it, liveness failures
    /// (deadlock, timeout, fuel) do not. Faults may stop a statically
    /// valid plan from finishing; they must never make it misbehave.
    pub fn is_secure(&self) -> bool {
        self.aborts == 0 && self.violating_runs == 0
    }
}

impl std::fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} runs: {} completed, {} deadlocked, {} aborted, {} out of fuel, {} violating ({} steps total)",
            self.runs,
            self.completed,
            self.deadlocks,
            self.aborts,
            self.out_of_fuel,
            self.violating_runs,
            self.total_steps
        )?;
        if self.timed_out + self.fault_aborts + self.recovered + self.faults_injected > 0 {
            write!(
                f,
                "; faults: {} injected, {} recovered, {} timed out, {} fault-aborted",
                self.faults_injected, self.recovered, self.timed_out, self.fault_aborts
            )?;
        }
        Ok(())
    }
}

impl<'a> Scheduler<'a> {
    /// Runs fresh copies of `network` `runs` times and aggregates the
    /// outcomes.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if a policy cannot be resolved.
    pub fn run_batch<R: Rng>(
        &self,
        network: &Network,
        runs: usize,
        rng: &mut R,
        fuel: usize,
    ) -> Result<BatchSummary, PolicyError> {
        let mut summary = BatchSummary {
            runs,
            ..BatchSummary::default()
        };
        for i in 0..runs {
            // Each batch run gets its own derived fault seed, so the
            // whole batch stays a pure function of the plan seed.
            let faults = self.faults.clone().map(|f| {
                let seed = f.seed.wrapping_add(i as u64);
                f.with_seed(seed)
            });
            let result = self.run_inner(network.clone(), rng, fuel, faults)?;
            match result.outcome {
                Outcome::Completed => summary.completed += 1,
                Outcome::Deadlock { .. } => summary.deadlocks += 1,
                Outcome::SecurityAbort { .. } => summary.aborts += 1,
                Outcome::OutOfFuel => summary.out_of_fuel += 1,
                Outcome::TimedOut { .. } => summary.timed_out += 1,
                Outcome::FaultAbort { .. } => summary.fault_aborts += 1,
                Outcome::RecoveredVia { .. } => {
                    summary.completed += 1;
                    summary.recovered += 1;
                }
            }
            if !result.violations.is_empty() {
                summary.violating_runs += 1;
            }
            summary.total_steps += result.trace.len();
            summary.faults_injected += result.faults.len();
        }
        Ok(summary)
    }
}

/// All single-branch commitments available in a session tree: for every
/// leaf *inside a session* whose enabled actions are two or more
/// outputs, one rewritten tree per output the sender could commit to.
fn commitments(sess: &Sess) -> Vec<Sess> {
    let mut out = Vec::new();
    collect_commitments(sess, false, &mut out);
    out
}

fn collect_commitments(sess: &Sess, in_session: bool, out: &mut Vec<Sess>) {
    match sess {
        Sess::Leaf(loc, h) => {
            if !in_session {
                return; // a top-level leaf has no partner to send to
            }
            let outputs: Vec<(Channel, sufs_hexpr::Hist)> = successors(h)
                .into_iter()
                .filter_map(|(l, cont)| match l {
                    Label::Chan(c, Dir::Out) => Some((c, cont)),
                    _ => None,
                })
                .collect();
            if outputs.len() < 2 {
                return; // nothing to decide
            }
            for (c, cont) in outputs {
                let committed = sufs_hexpr::Hist::int_([(c, cont)]);
                out.push(Sess::leaf(loc.clone(), committed));
            }
        }
        Sess::Pair(s1, s2) => {
            let mut left = Vec::new();
            collect_commitments(s1, true, &mut left);
            for l in left {
                out.push(Sess::pair(l, (**s2).clone()));
            }
            let mut right = Vec::new();
            collect_commitments(s2, true, &mut right);
            for r in right {
                out.push(Sess::pair((**s1).clone(), r));
            }
        }
    }
}

/// Classifies a deadlocked session tree: if some innermost pair has a
/// sender whose enabled output the partner can never receive (no
/// matching input anywhere in the partner's own reachable behaviour),
/// the deadlock is an unmatched send; otherwise it is a generic
/// circular/missing-transition deadlock.
fn diagnose_deadlock(sess: &Sess) -> DeadlockReason {
    if let Some((chan, sender)) = find_unmatched_send(sess) {
        DeadlockReason::UnmatchedSend { chan, sender }
    } else {
        DeadlockReason::NoTransitions
    }
}

fn find_unmatched_send(sess: &Sess) -> Option<(Channel, Location)> {
    let Sess::Pair(s1, s2) = sess else {
        return None;
    };
    if let Some(found) = find_unmatched_send(s1) {
        return Some(found);
    }
    if let Some(found) = find_unmatched_send(s2) {
        return Some(found);
    }
    let (Sess::Leaf(l1, h1), Sess::Leaf(l2, h2)) = (&**s1, &**s2) else {
        return None;
    };
    for (loc, h, partner) in [(l1, h1, h2), (l2, h2, h1)] {
        for (label, _) in successors(h) {
            if let Label::Chan(c, Dir::Out) = &label {
                if !can_ever_receive(partner, c) {
                    return Some((c.clone(), loc.clone()));
                }
            }
        }
    }
    None
}

/// Breadth-first search of the partner's stand-alone behaviour for a
/// state offering the input `chan`.
fn can_ever_receive(h: &sufs_hexpr::Hist, chan: &Channel) -> bool {
    use std::collections::{HashSet, VecDeque};
    let mut seen: HashSet<sufs_hexpr::Hist> = HashSet::from([h.clone()]);
    let mut queue = VecDeque::from([h.clone()]);
    while let Some(state) = queue.pop_front() {
        for (label, next) in successors(&state) {
            if matches!(&label, Label::Chan(c, Dir::In) if c == chan) {
                return true;
            }
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    false
}

/// Convenience: builds a single-client network and runs it.
///
/// # Errors
///
/// Returns a [`PolicyError`] if a policy cannot be resolved.
#[allow(clippy::too_many_arguments)]
pub fn run_client<R: Rng>(
    loc: impl Into<Location>,
    client: sufs_hexpr::Hist,
    plan: Plan,
    repo: &Repository,
    registry: &PolicyRegistry,
    monitor: MonitorMode,
    choice: ChoiceMode,
    rng: &mut R,
) -> Result<RunResult, PolicyError> {
    let mut network = Network::new();
    network.add_client(loc, client, plan);
    Scheduler::new(repo, registry, monitor, choice).run(network, rng, 10_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::parse_hist;
    use sufs_policy::catalog;
    use sufs_rng::SeedableRng;
    use sufs_rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn simple_repo() -> Repository {
        let mut repo = Repository::new();
        repo.publish(
            "ok_srv",
            parse_hist("ext[req -> int[ok -> eps | no -> eps]]").unwrap(),
        );
        repo.publish(
            "flaky_srv",
            parse_hist("ext[req -> int[ok -> eps | no -> eps | del -> eps]]").unwrap(),
        );
        repo
    }

    fn simple_client() -> sufs_hexpr::Hist {
        request(
            1,
            None,
            seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
        )
    }

    #[test]
    fn compliant_plan_completes() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let r = run_client(
            "c1",
            simple_client(),
            Plan::new().with(1u32, "ok_srv"),
            &repo,
            &reg,
            MonitorMode::Off,
            ChoiceMode::Committed,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.violations.is_empty());
        assert!(r.network.is_terminated());
        // open, synch req, synch answer, close = 4 steps
        assert_eq!(r.trace.len(), 4);
    }

    #[test]
    fn non_compliant_plan_deadlocks_under_committed_choice() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        // Run many times: the flaky service eventually commits to `del`.
        let mut saw_unmatched = false;
        let mut r = rng();
        for _ in 0..50 {
            let res = run_client(
                "c1",
                simple_client(),
                Plan::new().with(1u32, "flaky_srv"),
                &repo,
                &reg,
                MonitorMode::Off,
                ChoiceMode::Committed,
                &mut r,
            )
            .unwrap();
            if let Outcome::Deadlock {
                reason: DeadlockReason::UnmatchedSend { chan, .. },
                ..
            } = &res.outcome
            {
                assert_eq!(chan, &Channel::new("del"));
                saw_unmatched = true;
            }
        }
        assert!(saw_unmatched, "the committed del-send never materialised");
    }

    #[test]
    fn angelic_mode_avoids_the_bad_send() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut r = rng();
        for _ in 0..20 {
            let res = run_client(
                "c1",
                simple_client(),
                Plan::new().with(1u32, "flaky_srv"),
                &repo,
                &reg,
                MonitorMode::Off,
                ChoiceMode::Angelic,
                &mut r,
            )
            .unwrap();
            assert_eq!(res.outcome, Outcome::Completed);
        }
    }

    #[test]
    fn enforcing_monitor_aborts_on_violation() {
        let mut reg = PolicyRegistry::new();
        reg.register(catalog::no_after("read", "write"));
        let phi = sufs_hexpr::PolicyRef::nullary("no_write_after_read");
        let client = framed(phi.clone(), seq([ev0("read"), ev0("write")]));
        let r = run_client(
            "c1",
            client,
            Plan::new(),
            &Repository::new(),
            &reg,
            MonitorMode::Enforcing,
            ChoiceMode::Angelic,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(
            r.outcome,
            Outcome::SecurityAbort {
                component: 0,
                policy: phi
            }
        );
    }

    #[test]
    fn monitor_off_records_violation_post_hoc() {
        let mut reg = PolicyRegistry::new();
        reg.register(catalog::no_after("read", "write"));
        let phi = sufs_hexpr::PolicyRef::nullary("no_write_after_read");
        let client = framed(phi.clone(), seq([ev0("read"), ev0("write")]));
        let r = run_client(
            "c1",
            client,
            Plan::new(),
            &Repository::new(),
            &reg,
            MonitorMode::Audit,
            ChoiceMode::Angelic,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.violations, vec![(0, phi)]);
    }

    #[test]
    fn angelic_monitor_picks_safe_branch() {
        // One branch violates, the other does not: angelic
        // non-determinism proceeds through the safe one.
        let mut reg = PolicyRegistry::new();
        reg.register(catalog::no_after("read", "write"));
        let phi = sufs_hexpr::PolicyRef::nullary("no_write_after_read");
        let client = framed(
            phi,
            seq([
                ev0("read"),
                offer([("risky", ev0("write")), ("safe", ev0("noop"))]),
            ]),
        );
        // The client waits on an external choice served by a service that
        // could send either; pair it with a service sending both options.
        let client = request(1, None, client);
        let mut repo = Repository::new();
        repo.publish(
            "srv",
            parse_hist("int[risky -> eps | safe -> eps]").unwrap(),
        );
        let mut completed = 0;
        let mut aborted = 0;
        let mut r = rng();
        for _ in 0..40 {
            let res = run_client(
                "c1",
                client.clone(),
                Plan::new().with(1u32, "srv"),
                &Repository::clone(&repo),
                &reg,
                MonitorMode::Enforcing,
                ChoiceMode::Angelic,
                &mut r,
            )
            .unwrap();
            match res.outcome {
                Outcome::Completed => completed += 1,
                Outcome::SecurityAbort { .. } => aborted += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // The synchronisation itself appends no history, so the monitor
        // cannot steer the choice: runs through the safe branch complete,
        // runs through the risky branch abort at the blocked #write.
        assert!(completed > 0, "safe branch never scheduled");
        assert!(aborted > 0, "risky branch never scheduled");
        assert_eq!(completed + aborted, 40);
    }

    #[test]
    fn out_of_fuel_on_infinite_conversation() {
        let client = request(
            1,
            None,
            loop_("h", choose([("ping", recv("pong", jump("h")))])),
        );
        let mut repo = Repository::new();
        repo.publish(
            "srv",
            parse_hist("mu k. ext[ping -> int[pong -> k]]").unwrap(),
        );
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        network.add_client("c1", client, Plan::new().with(1u32, "srv"));
        let res = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run(network, &mut rng(), 500)
            .unwrap();
        assert_eq!(res.outcome, Outcome::OutOfFuel);
        assert_eq!(res.trace.len(), 500);
    }

    #[test]
    fn two_clients_interleave() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        network.add_client("c1", simple_client(), Plan::new().with(1u32, "ok_srv"));
        network.add_client("c2", simple_client(), Plan::new().with(1u32, "ok_srv"));
        let res = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run(network, &mut rng(), 1000)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Completed);
        let movers: std::collections::BTreeSet<usize> =
            res.trace.iter().map(|t| t.component).collect();
        assert_eq!(movers.len(), 2);
    }

    #[test]
    fn batch_summary_aggregates() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        network.add_client("c1", simple_client(), Plan::new().with(1u32, "ok_srv"));
        let summary = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run_batch(&network, 25, &mut rng(), 1000)
            .unwrap();
        assert_eq!(summary.runs, 25);
        assert_eq!(summary.completed, 25);
        assert!(summary.is_unfailing());
        assert_eq!(summary.total_steps, 25 * 4);
        assert!(summary.to_string().contains("25 runs"));

        // Against the flaky service, committed choices must show some
        // deadlocks.
        let mut network = Network::new();
        network.add_client("c1", simple_client(), Plan::new().with(1u32, "flaky_srv"));
        let summary = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Committed)
            .run_batch(&network, 100, &mut rng(), 1000)
            .unwrap();
        assert!(summary.deadlocks > 0);
        assert!(!summary.is_unfailing());
        assert_eq!(summary.completed + summary.deadlocks, 100);
    }

    #[test]
    fn empty_batch_is_vacuously_unfailing() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        network.add_client("c1", simple_client(), Plan::new().with(1u32, "ok_srv"));
        let summary = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run_batch(&network, 0, &mut rng(), 1000)
            .unwrap();
        assert_eq!(summary.runs, 0);
        assert_eq!(summary.total_steps, 0);
        assert!(summary.is_unfailing());
        assert!(summary.is_secure());
        assert!(summary.to_string().starts_with("0 runs"));
    }

    #[test]
    fn all_stuck_batch_is_failing_but_secure() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        // Request 1 unbound: every single run deadlocks immediately.
        network.add_client("c1", simple_client(), Plan::new());
        let summary = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .run_batch(&network, 10, &mut rng(), 1000)
            .unwrap();
        assert_eq!(summary.deadlocks, 10);
        assert_eq!(summary.completed, 0);
        assert!(!summary.is_unfailing());
        // Liveness failed, security did not: nothing was violated.
        assert!(summary.is_secure());
    }

    #[test]
    fn mixed_batch_separates_liveness_from_security() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        network.add_client("c1", simple_client(), Plan::new().with(1u32, "flaky_srv"));
        let summary = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Committed)
            .run_batch(&network, 100, &mut rng(), 1000)
            .unwrap();
        assert!(summary.completed > 0, "some schedules avoid `del`");
        assert!(summary.deadlocks > 0, "some schedules commit to `del`");
        assert_eq!(summary.completed + summary.deadlocks, 100);
        assert!(!summary.is_unfailing());
        assert!(summary.is_secure(), "non-compliance is not a violation");
    }

    #[test]
    fn deadlock_reasons_classify_stuck_and_unmatched() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        // Unbound request: no rule applies at all.
        let res = run_client(
            "c1",
            simple_client(),
            Plan::new(),
            &repo,
            &reg,
            MonitorMode::Off,
            ChoiceMode::Committed,
            &mut rng(),
        )
        .unwrap();
        assert!(matches!(
            res.outcome,
            Outcome::Deadlock {
                reason: DeadlockReason::NoTransitions,
                ..
            }
        ));
        // The flaky service committed to `del`: an unmatched send, with
        // the offending channel and sender named.
        let mut r = rng();
        let mut seen = None;
        for _ in 0..50 {
            let res = run_client(
                "c1",
                simple_client(),
                Plan::new().with(1u32, "flaky_srv"),
                &repo,
                &reg,
                MonitorMode::Off,
                ChoiceMode::Committed,
                &mut r,
            )
            .unwrap();
            if let Outcome::Deadlock {
                reason: DeadlockReason::UnmatchedSend { chan, sender },
                ..
            } = res.outcome
            {
                seen = Some((chan, sender));
                break;
            }
        }
        let (chan, sender) = seen.expect("an unmatched del-send in 50 committed runs");
        assert_eq!(chan, Channel::new("del"));
        assert_eq!(sender, Location::new("flaky_srv"));
    }

    #[test]
    fn fault_free_scheduler_with_armed_injector_keeps_the_trace() {
        // Belt and braces for the zero-fault path: arming a rate-zero
        // injector must not shift the scheduler's random stream.
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let run = |faulty: bool| {
            let mut network = Network::new();
            network.add_client("c1", simple_client(), Plan::new().with(1u32, "ok_srv"));
            let mut s = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Committed);
            if faulty {
                s = s.with_faults(FaultPlan::default().with_seed(99));
            }
            s.run(network, &mut rng(), 1000).unwrap()
        };
        let plain = run(false);
        let armed = run(true);
        assert_eq!(plain.trace, armed.trace);
        assert_eq!(plain.outcome, armed.outcome);
        assert!(armed.faults.is_empty());
    }

    #[test]
    fn timeout_escalates_without_recovery() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let mut network = Network::new();
        // Unbound request + armed faults: instead of an instant deadlock
        // the component burns its retries, then times out.
        network.add_client("c1", simple_client(), Plan::new());
        let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic)
            .with_faults(FaultPlan::default().with_seed(1).with_timeout(4, 2));
        let res = scheduler.run(network, &mut rng(), 1000).unwrap();
        assert_eq!(res.outcome, Outcome::TimedOut { component: 0 });
        let retries = res
            .faults
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Timeout { .. }))
            .count();
        assert_eq!(retries, 2, "both retries must be logged: {:?}", res.faults);
    }

    #[test]
    fn missing_plan_binding_deadlocks() {
        let repo = simple_repo();
        let reg = PolicyRegistry::new();
        let res = run_client(
            "c1",
            simple_client(),
            Plan::new(), // request 1 unbound
            &repo,
            &reg,
            MonitorMode::Off,
            ChoiceMode::Angelic,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(
            res.outcome,
            Outcome::Deadlock {
                component: 0,
                reason: DeadlockReason::NoTransitions
            }
        );
    }
}
