//! Session trees `S ::= ℓ:H | [S, S]` (Definition 2) and the auxiliary
//! function `Φ` of rule *Close*.

use std::fmt;

use sufs_hexpr::{Hist, Location, PolicyRef};

/// A session tree: a located behaviour, or a (possibly nested) session
/// pairing a client side with a server side.
///
/// The paper stipulates `[S, S'] ≡ [S', S]`; the semantics honours the
/// equivalence by checking both orientations of every pair rule rather
/// than normalising the tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sess {
    /// A located behaviour `ℓ : H`.
    Leaf(Location, Hist),
    /// A session `[S, S']` between two parties.
    Pair(Box<Sess>, Box<Sess>),
}

impl Sess {
    /// A located behaviour.
    pub fn leaf(loc: impl Into<Location>, h: Hist) -> Sess {
        Sess::Leaf(loc.into(), h)
    }

    /// A session pairing two trees.
    pub fn pair(a: Sess, b: Sess) -> Sess {
        Sess::Pair(Box::new(a), Box::new(b))
    }

    /// Returns `true` if the component finished successfully: a single
    /// located `ε` with every session closed.
    pub fn is_terminated(&self) -> bool {
        matches!(self, Sess::Leaf(_, h) if h.is_eps())
    }

    /// The number of open (nested) sessions in the tree.
    pub fn open_sessions(&self) -> usize {
        match self {
            Sess::Leaf(..) => 0,
            Sess::Pair(a, b) => 1 + a.open_sessions() + b.open_sessions(),
        }
    }

    /// Iterates over the located behaviours in the tree, left to right.
    pub fn leaves(&self) -> Vec<(&Location, &Hist)> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<(&'a Location, &'a Hist)>) {
        match self {
            Sess::Leaf(l, h) => out.push((l, h)),
            Sess::Pair(a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }
}

impl fmt::Display for Sess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sess::Leaf(l, h) => {
                if h.is_eps() {
                    write!(f, "{l}: ε")
                } else {
                    write!(f, "{l}: {h}")
                }
            }
            Sess::Pair(a, b) => write!(f, "[{a}, {b}]"),
        }
    }
}

/// The auxiliary function `Φ` of rule *Close*: the pending closing
/// frames of a terminated server's residual behaviour.
///
/// ```text
/// Φ(H₁·H₂) = Φ(H₁)·Φ(H₂)    Φ(⌟φ) = ⌟φ    Φ(H) = ε otherwise
/// ```
///
/// When a session is closed, the server `H″` is discarded; the policies
/// it had opened but not yet closed would otherwise stay active forever
/// in the client's history, so their closing frames are appended.
pub fn pending_frame_closes(h: &Hist) -> Vec<PolicyRef> {
    match h {
        Hist::FrameCloseTok(p) => vec![p.clone()],
        Hist::Seq(a, b) => {
            let mut out = pending_frame_closes(a);
            out.extend(pending_frame_closes(b));
            out
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    #[test]
    fn termination_detection() {
        let done = Sess::leaf("c", Hist::Eps);
        assert!(done.is_terminated());
        let busy = Sess::leaf("c", parse_hist("#a").unwrap());
        assert!(!busy.is_terminated());
        let in_session = Sess::pair(done.clone(), busy);
        assert!(!in_session.is_terminated());
    }

    #[test]
    fn open_sessions_count() {
        let l = |n: &str| Sess::leaf(n, Hist::Eps);
        assert_eq!(l("a").open_sessions(), 0);
        let nested = Sess::pair(l("c"), Sess::pair(l("br"), l("s3")));
        assert_eq!(nested.open_sessions(), 2);
    }

    #[test]
    fn leaves_in_order() {
        let nested = Sess::pair(
            Sess::leaf("c", Hist::Eps),
            Sess::pair(Sess::leaf("br", Hist::Eps), Sess::leaf("s3", Hist::Eps)),
        );
        let names: Vec<&str> = nested.leaves().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(names, vec!["c", "br", "s3"]);
    }

    #[test]
    fn phi_collects_pending_closes() {
        // H = ext[x -> eps] · ⌟φ1 · ⌟φ2 : Φ(H) = ⌟φ1 ⌟φ2
        let h = Hist::seq(
            parse_hist("ext[x -> eps]").unwrap(),
            Hist::seq(
                Hist::FrameCloseTok(PolicyRef::nullary("phi1")),
                Hist::FrameCloseTok(PolicyRef::nullary("phi2")),
            ),
        );
        let ps = pending_frame_closes(&h);
        assert_eq!(
            ps,
            vec![PolicyRef::nullary("phi1"), PolicyRef::nullary("phi2")]
        );
    }

    #[test]
    fn phi_of_plain_behaviour_is_empty() {
        assert!(pending_frame_closes(&parse_hist("#a; ext[x -> eps]").unwrap()).is_empty());
        assert!(pending_frame_closes(&Hist::Eps).is_empty());
        // A framing not yet entered contributes nothing.
        assert!(pending_frame_closes(&parse_hist("frame p [ #a ]").unwrap()).is_empty());
    }

    #[test]
    fn display_formats() {
        let s = Sess::pair(
            Sess::leaf("c", Hist::Eps),
            Sess::leaf("s", parse_hist("#a").unwrap()),
        );
        assert_eq!(s.to_string(), "[c: ε, s: #a]");
    }
}
