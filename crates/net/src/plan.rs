//! Plans `π` (Definition 2): mappings from service requests to the
//! locations that serve them.
//!
//! A plan orchestrates an execution by binding every request identifier
//! `r` occurring in a client (and, transitively, in the services the
//! plan selects) to a published service location. A *vector of plans*
//! `~π` assigns one plan per client of a network.

use std::collections::BTreeMap;
use std::fmt;

use sufs_hexpr::{Location, RequestId};

/// A plan `π`: a finite map from request identifiers to locations.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Plan {
    bindings: BTreeMap<RequestId, Location>,
}

impl Plan {
    /// The empty plan `∅`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds request `r` to location `loc` (the paper's `r[ℓ]`),
    /// returning the previous binding if any.
    pub fn bind(&mut self, r: impl Into<RequestId>, loc: impl Into<Location>) -> Option<Location> {
        self.bindings.insert(r.into(), loc.into())
    }

    /// Builder-style binding (`π ∪ r[ℓ]`).
    pub fn with(mut self, r: impl Into<RequestId>, loc: impl Into<Location>) -> Self {
        self.bind(r, loc);
        self
    }

    /// The location serving request `r`, if bound.
    pub fn service_for(&self, r: RequestId) -> Option<&Location> {
        self.bindings.get(&r)
    }

    /// The requests bound by this plan.
    pub fn requests(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.bindings.keys().copied()
    }

    /// Iterates over `(request, location)` bindings.
    pub fn iter(&self) -> impl Iterator<Item = (RequestId, &Location)> {
        self.bindings.iter().map(|(r, l)| (*r, l))
    }

    /// The union `π ∪ π'`; right-hand bindings win on conflicts.
    pub fn union(&self, other: &Plan) -> Plan {
        let mut out = self.clone();
        for (r, l) in other.iter() {
            out.bind(r, l.clone());
        }
        out
    }

    /// The number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` for the empty plan.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// A stable structural fingerprint of the plan (bindings hashed in
    /// key order), for deterministic verification-cache keys.
    pub fn structural_hash(&self) -> u64 {
        sufs_hexpr::shash::stable_hash_of(self)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return write!(f, "∅");
        }
        write!(f, "{{")?;
        for (i, (r, l)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}↦{l}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(RequestId, Location)> for Plan {
    fn from_iter<T: IntoIterator<Item = (RequestId, Location)>>(iter: T) -> Self {
        Plan {
            bindings: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut p = Plan::new();
        assert!(p.is_empty());
        assert!(p.bind(1u32, "br").is_none());
        assert_eq!(p.bind(1u32, "br2"), Some(Location::new("br")));
        assert_eq!(
            p.service_for(RequestId::new(1)),
            Some(&Location::new("br2"))
        );
        assert_eq!(p.service_for(RequestId::new(9)), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn builder_style() {
        let p = Plan::new().with(1u32, "br").with(3u32, "s3");
        assert_eq!(p.len(), 2);
        assert_eq!(p.requests().count(), 2);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn union_right_biased() {
        let p1 = Plan::new().with(1u32, "a").with(2u32, "b");
        let p2 = Plan::new().with(2u32, "c").with(3u32, "d");
        let u = p1.union(&p2);
        assert_eq!(u.service_for(RequestId::new(1)), Some(&Location::new("a")));
        assert_eq!(u.service_for(RequestId::new(2)), Some(&Location::new("c")));
        assert_eq!(u.service_for(RequestId::new(3)), Some(&Location::new("d")));
    }

    #[test]
    fn display() {
        assert_eq!(Plan::new().to_string(), "∅");
        let p = Plan::new().with(1u32, "br").with(3u32, "s3");
        assert_eq!(p.to_string(), "{r1↦br, r3↦s3}");
    }

    #[test]
    fn from_iterator() {
        let p: Plan = [(RequestId::new(1), Location::new("x"))]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 1);
    }
}
