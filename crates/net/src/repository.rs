//! The global trusted repository `R = {ℓⱼ : Hⱼ | j ∈ J}` of published
//! services.
//!
//! Services in the repository are always available for joining sessions
//! and may replicate at will: every session opening instantiates a fresh
//! copy of the published behaviour.

use std::collections::BTreeMap;
use std::fmt;

use sufs_hexpr::wf::{self, WfError};
use sufs_hexpr::{Hist, Location};

/// An error raised when publishing an ill-formed service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishError {
    /// The location the service was being published at.
    pub location: Location,
    /// The underlying well-formedness violation.
    pub error: WfError,
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot publish at {}: {}", self.location, self.error)
    }
}

impl std::error::Error for PublishError {}

/// One published service: its behaviour and its replication capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Published {
    service: Hist,
    capacity: Option<usize>,
}

/// A repository mutation, as observed by callers that need to react to
/// the repository changing under them (the broker's incremental cache
/// invalidation, most prominently). Every mutating [`Repository`]
/// method returns the event it caused, so a host can forward it to
/// whatever bookkeeping depends on the touched location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoEvent {
    /// A service appeared at a previously empty location.
    Published(Location),
    /// The service at a location was replaced (behaviour or capacity).
    Updated(Location),
    /// The service at a location was withdrawn.
    Retracted(Location),
    /// A retract of a location that published nothing: a no-op.
    Absent(Location),
}

impl RepoEvent {
    /// The location the event touches.
    pub fn location(&self) -> &Location {
        match self {
            RepoEvent::Published(l)
            | RepoEvent::Updated(l)
            | RepoEvent::Retracted(l)
            | RepoEvent::Absent(l) => l,
        }
    }

    /// Returns `true` when the event changed the repository at all.
    pub fn changed(&self) -> bool {
        !matches!(self, RepoEvent::Absent(_))
    }
}

impl fmt::Display for RepoEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoEvent::Published(l) => write!(f, "published {l}"),
            RepoEvent::Updated(l) => write!(f, "updated {l}"),
            RepoEvent::Retracted(l) => write!(f, "retracted {l}"),
            RepoEvent::Absent(l) => write!(f, "no service at {l}"),
        }
    }
}

/// The repository of published services.
///
/// By default services "replicate their code at will" (§2): every
/// session opening gets a fresh copy. The paper's §5 lists *bounded
/// availability* as an extension; [`Repository::publish_bounded`]
/// implements it — a service with capacity `n` joins at most `n`
/// concurrent sessions, and further openings wait until one closes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Repository {
    services: BTreeMap<Location, Published>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a service at a location, replacing any previous one.
    /// The service may replicate without bound.
    ///
    /// The service is checked for well-formedness first.
    ///
    /// # Panics
    ///
    /// Panics if the service is ill-formed; use
    /// [`Repository::try_publish`] to handle the error.
    pub fn publish(&mut self, loc: impl Into<Location>, service: Hist) -> &mut Self {
        let loc = loc.into();
        self.try_publish(loc, service)
            .unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Publishes a service with a replication bound: at most `capacity`
    /// concurrent sessions (§5's bounded-availability extension).
    ///
    /// # Panics
    ///
    /// Panics if the service is ill-formed.
    pub fn publish_bounded(
        &mut self,
        loc: impl Into<Location>,
        service: Hist,
        capacity: usize,
    ) -> &mut Self {
        self.try_publish_bounded(loc, service, capacity)
            .unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Publishes a service, validating it. Returns the mutation event:
    /// [`RepoEvent::Published`] for a fresh location,
    /// [`RepoEvent::Updated`] when replacing an existing service.
    ///
    /// # Errors
    ///
    /// Returns a [`PublishError`] if the service is not well-formed; the
    /// repository is left untouched.
    pub fn try_publish(
        &mut self,
        loc: impl Into<Location>,
        service: Hist,
    ) -> Result<RepoEvent, PublishError> {
        self.insert_checked(loc.into(), service, None)
    }

    /// Fallible [`Repository::publish_bounded`]: publishes with a
    /// replication bound, returning the mutation event.
    ///
    /// # Errors
    ///
    /// Returns a [`PublishError`] if the service is not well-formed; the
    /// repository is left untouched.
    pub fn try_publish_bounded(
        &mut self,
        loc: impl Into<Location>,
        service: Hist,
        capacity: usize,
    ) -> Result<RepoEvent, PublishError> {
        self.insert_checked(loc.into(), service, Some(capacity))
    }

    fn insert_checked(
        &mut self,
        location: Location,
        service: Hist,
        capacity: Option<usize>,
    ) -> Result<RepoEvent, PublishError> {
        wf::check(&service).map_err(|error| PublishError {
            location: location.clone(),
            error,
        })?;
        let previous = self
            .services
            .insert(location.clone(), Published { service, capacity });
        Ok(match previous {
            Some(_) => RepoEvent::Updated(location),
            None => RepoEvent::Published(location),
        })
    }

    /// Withdraws the service at `loc`, if any. Sessions already joined
    /// with it are unaffected (they run on their own replicated copy);
    /// the location just stops being available for *new* openings.
    pub fn retract(&mut self, loc: &Location) -> RepoEvent {
        match self.services.remove(loc) {
            Some(_) => RepoEvent::Retracted(loc.clone()),
            None => RepoEvent::Absent(loc.clone()),
        }
    }

    /// Looks up the service published at `loc`.
    pub fn get(&self, loc: &Location) -> Option<&Hist> {
        self.services.get(loc).map(|p| &p.service)
    }

    /// The replication capacity of the service at `loc`: `Some(None)`
    /// for an unbounded published service, `Some(Some(n))` for a bounded
    /// one, `None` if nothing is published there.
    pub fn capacity(&self, loc: &Location) -> Option<Option<usize>> {
        self.services.get(loc).map(|p| p.capacity)
    }

    /// The published locations, in order.
    pub fn locations(&self) -> impl Iterator<Item = &Location> {
        self.services.keys()
    }

    /// Iterates over `(location, service)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Location, &Hist)> {
        self.services.iter().map(|(l, p)| (l, &p.service))
    }

    /// Iterates over the complete published state — `(location,
    /// service, capacity)` triples — for serialisation (the broker's
    /// durability snapshot, most prominently). Unlike
    /// [`Repository::iter`], this exposes the replication capacity so
    /// a restored repository is indistinguishable from the original.
    pub fn export(&self) -> impl Iterator<Item = (&Location, &Hist, Option<usize>)> {
        self.services
            .iter()
            .map(|(l, p)| (l, &p.service, p.capacity))
    }

    /// Restores one exported entry: publishes `service` at `loc` with
    /// the given optional capacity, running the same well-formedness
    /// check as any publish. The inverse of [`Repository::export`].
    ///
    /// # Errors
    ///
    /// Returns a [`PublishError`] if the service is not well-formed;
    /// the repository is left untouched.
    pub fn restore(
        &mut self,
        loc: impl Into<Location>,
        service: Hist,
        capacity: Option<usize>,
    ) -> Result<RepoEvent, PublishError> {
        self.insert_checked(loc.into(), service, capacity)
    }

    /// The number of published services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Returns `true` if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

impl fmt::Display for Repository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "repository ({} services):", self.len())?;
        for (loc, p) in &self.services {
            match p.capacity {
                Some(cap) => writeln!(f, "  {loc} (×{cap}): {}", p.service)?,
                None => writeln!(f, "  {loc}: {}", p.service)?,
            }
        }
        Ok(())
    }
}

impl FromIterator<(Location, Hist)> for Repository {
    fn from_iter<T: IntoIterator<Item = (Location, Hist)>>(iter: T) -> Self {
        let mut repo = Repository::new();
        for (loc, h) in iter {
            repo.publish(loc, h);
        }
        repo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    #[test]
    fn publish_and_get() {
        let mut repo = Repository::new();
        assert!(repo.is_empty());
        repo.publish("s1", parse_hist("ext[a -> eps]").unwrap());
        assert_eq!(repo.len(), 1);
        assert!(repo.get(&Location::new("s1")).is_some());
        assert!(repo.get(&Location::new("nope")).is_none());
        assert_eq!(repo.locations().count(), 1);
    }

    #[test]
    fn ill_formed_service_rejected() {
        let mut repo = Repository::new();
        let err = repo
            .try_publish("bad", parse_hist("mu h. h").unwrap())
            .unwrap_err();
        assert_eq!(err.location, Location::new("bad"));
        assert!(err.to_string().contains("bad"));
        assert!(repo.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot publish")]
    fn publish_panics_on_ill_formed() {
        Repository::new().publish("bad", parse_hist("mu h. h").unwrap());
    }

    #[test]
    fn mutation_events_track_publish_update_retract() {
        let mut repo = Repository::new();
        let ev = repo.try_publish("s", parse_hist("eps").unwrap()).unwrap();
        assert_eq!(ev, RepoEvent::Published(Location::new("s")));
        assert!(ev.changed());
        let ev = repo
            .try_publish("s", parse_hist("ext[a -> eps]").unwrap())
            .unwrap();
        assert_eq!(ev, RepoEvent::Updated(Location::new("s")));
        assert_eq!(ev.location(), &Location::new("s"));
        let ev = repo.retract(&Location::new("s"));
        assert_eq!(ev, RepoEvent::Retracted(Location::new("s")));
        assert!(repo.is_empty());
        let ev = repo.retract(&Location::new("s"));
        assert_eq!(ev, RepoEvent::Absent(Location::new("s")));
        assert!(!ev.changed());
        assert!(ev.to_string().contains("no service"));
    }

    #[test]
    fn try_publish_bounded_validates_and_records_capacity() {
        let mut repo = Repository::new();
        let ev = repo
            .try_publish_bounded("s", parse_hist("eps").unwrap(), 2)
            .unwrap();
        assert_eq!(ev, RepoEvent::Published(Location::new("s")));
        assert_eq!(repo.capacity(&Location::new("s")), Some(Some(2)));
        let err = repo
            .try_publish_bounded("bad", parse_hist("mu h. h").unwrap(), 1)
            .unwrap_err();
        assert_eq!(err.location, Location::new("bad"));
        // The failed publish left the repository untouched.
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn from_iterator_and_display() {
        let repo: Repository = [
            (Location::new("a"), parse_hist("eps").unwrap()),
            (Location::new("b"), parse_hist("ext[x -> eps]").unwrap()),
        ]
        .into_iter()
        .collect();
        assert_eq!(repo.len(), 2);
        let s = repo.to_string();
        assert!(s.contains("a: eps"));
        assert!(s.contains("b: ext[x -> eps]"));
        assert_eq!(repo.iter().count(), 2);
    }
}
