//! Symbolic (history-less) exploration of a component's behaviour under
//! a plan: the state space the static verifier model-checks.
//!
//! Concrete configurations carry ever-growing histories, so their state
//! space is infinite even for loops. The symbolic state keeps only the
//! session tree plus the not-yet-emitted history items of the last
//! transition; the policy bookkeeping is reconstructed by
//! [`sufs_policy::check_validity`] from the emitted labels. Because
//! services are finite state and session nesting is bounded by the
//! syntax, the symbolic space of a plan-closed component is finite.

use crate::plan::Plan;
use crate::repository::Repository;

use crate::session::Sess;
use sufs_hexpr::{Hist, Label, Location};
use sufs_policy::HistoryItem;

/// A symbolic state: the session tree and the queue of history items
/// still to emit from the transition that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymState {
    /// The session tree.
    pub sess: Sess,
    /// History items still to be emitted as labels, in order.
    pub pending: Vec<HistoryItem>,
}

impl SymState {
    /// The initial symbolic state of a located client.
    pub fn initial(loc: impl Into<Location>, client: Hist) -> SymState {
        SymState {
            sess: Sess::leaf(loc, client),
            pending: Vec::new(),
        }
    }

    /// Returns `true` if the component terminated successfully (and
    /// nothing is left to emit).
    pub fn is_terminated(&self) -> bool {
        self.pending.is_empty() && self.sess.is_terminated()
    }
}

fn item_label(item: &HistoryItem) -> Label {
    match item {
        HistoryItem::Ev(e) => Label::Ev(e.clone()),
        HistoryItem::Open(p) => Label::FrameOpen(p.clone()),
        HistoryItem::Close(p) => Label::FrameClose(p.clone()),
    }
}

/// The successors of a symbolic state: each network transition becomes a
/// chain of single-label edges (one per appended history item; `τ` if a
/// transition appends nothing).
pub fn symbolic_successors(
    state: &SymState,
    plan: &Plan,
    repo: &Repository,
) -> Vec<(Label, SymState)> {
    let load = crate::semantics::active_services(&state.sess, repo);
    symbolic_successors_with_load(state, plan, repo, &load)
}

/// [`symbolic_successors`] against an explicit per-service load (for
/// joint multi-client exploration, where bounded capacities are shared
/// across components; the load must *include* this component's own
/// instances).
pub fn symbolic_successors_with_load(
    state: &SymState,
    plan: &Plan,
    repo: &Repository,
    load: &std::collections::BTreeMap<Location, usize>,
) -> Vec<(Label, SymState)> {
    if let Some((first, rest)) = state.pending.split_first() {
        return vec![(
            item_label(first),
            SymState {
                sess: state.sess.clone(),
                pending: rest.to_vec(),
            },
        )];
    }
    crate::semantics::sess_steps_with_load(&state.sess, plan, repo, load)
        .into_iter()
        .map(|step| {
            let (label, pending) = match step.delta.split_first() {
                None => (Label::Tau, Vec::new()),
                Some((first, rest)) => (item_label(first), rest.to_vec()),
            };
            (
                label,
                SymState {
                    sess: step.next,
                    pending,
                },
            )
        })
        .collect()
}

/// A stuck configuration reachable under the plan: a communication
/// deadlock (or an unserved request) that no scheduling can avoid once
/// reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckState {
    /// The labels along a shortest path to the stuck state.
    pub path: Vec<Label>,
    /// The stuck session tree.
    pub sess: Sess,
}

impl std::fmt::Display for StuckState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stuck at {} after [", self.sess)?;
        for (i, l) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

/// Searches the symbolic state space for a reachable stuck state.
///
/// # Errors
///
/// Returns the bound if exploration exceeds it.
pub fn find_stuck(
    loc: impl Into<Location>,
    client: Hist,
    plan: &Plan,
    repo: &Repository,
    bound: usize,
) -> Result<Option<StuckState>, usize> {
    use std::collections::{HashMap, VecDeque};
    let initial = SymState::initial(loc, client);
    let mut states = vec![initial.clone()];
    let mut index: HashMap<SymState, usize> = HashMap::from([(initial, 0)]);
    let mut parents: Vec<Option<(usize, Label)>> = vec![None];
    let mut queue = VecDeque::from([0usize]);
    while let Some(id) = queue.pop_front() {
        let state = states[id].clone();
        let succ = symbolic_successors(&state, plan, repo);
        if succ.is_empty() && !state.is_terminated() {
            let mut path = Vec::new();
            let mut cur = id;
            while let Some((p, l)) = &parents[cur] {
                path.push(l.clone());
                cur = *p;
            }
            path.reverse();
            return Ok(Some(StuckState {
                path,
                sess: state.sess,
            }));
        }
        for (label, s2) in succ {
            if !index.contains_key(&s2) {
                let nid = states.len();
                if nid >= bound {
                    return Err(bound);
                }
                index.insert(s2.clone(), nid);
                states.push(s2);
                parents.push(Some((id, label)));
                queue.push_back(nid);
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::parse_hist;

    fn repo(pairs: &[(&str, &str)]) -> Repository {
        let mut r = Repository::new();
        for (loc, src) in pairs {
            r.publish(*loc, parse_hist(src).unwrap());
        }
        r
    }

    fn simple_client() -> Hist {
        request(
            1,
            None,
            seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
        )
    }

    #[test]
    fn compliant_plan_has_no_stuck_state() {
        let repo = repo(&[("srv", "ext[req -> int[ok -> eps | no -> eps]]")]);
        let plan = Plan::new().with(1u32, "srv");
        let stuck = find_stuck("c", simple_client(), &plan, &repo, 10_000).unwrap();
        assert!(stuck.is_none());
    }

    #[test]
    fn non_compliant_plan_reaches_stuck_state() {
        let repo = repo(&[("srv", "ext[req -> int[del -> eps]]")]);
        let plan = Plan::new().with(1u32, "srv");
        let stuck = find_stuck("c", simple_client(), &plan, &repo, 10_000)
            .unwrap()
            .expect("must be stuck");
        // open, synch req, then both parties are stuck.
        assert_eq!(stuck.path.len(), 2);
        assert!(stuck.to_string().contains("stuck at"));
    }

    #[test]
    fn unbound_request_is_stuck_immediately() {
        let stuck = find_stuck("c", simple_client(), &Plan::new(), &Repository::new(), 1000)
            .unwrap()
            .expect("must be stuck");
        assert!(stuck.path.is_empty());
    }

    #[test]
    fn infinite_conversation_is_not_stuck() {
        let client = request(
            1,
            None,
            loop_("h", choose([("ping", recv("pong", jump("h")))])),
        );
        let repo = repo(&[("srv", "mu k. ext[ping -> int[pong -> k]]")]);
        let plan = Plan::new().with(1u32, "srv");
        let stuck = find_stuck("c", client, &plan, &repo, 10_000).unwrap();
        assert!(stuck.is_none());
    }

    #[test]
    fn symbolic_labels_include_frames() {
        // Closing a session with a policy emits ⌟φ as a label.
        let phi = sufs_hexpr::PolicyRef::nullary("p");
        let client = request(1, Some(phi.clone()), send("x", eps()));
        let repo = repo(&[("srv", "ext[x -> eps]")]);
        let plan = Plan::new().with(1u32, "srv");
        // Walk: open (⌞p), synch (τ), close (⌟p).
        let s0 = SymState::initial("c", client);
        let (l1, s1) = symbolic_successors(&s0, &plan, &repo).remove(0);
        assert_eq!(l1, Label::FrameOpen(phi.clone()));
        let (l2, s2) = symbolic_successors(&s1, &plan, &repo).remove(0);
        assert_eq!(l2, Label::Tau);
        let (l3, s3) = symbolic_successors(&s2, &plan, &repo).remove(0);
        assert_eq!(l3, Label::FrameClose(phi));
        assert!(s3.is_terminated());
    }

    #[test]
    fn bound_is_reported() {
        let client = request(
            1,
            None,
            loop_("h", choose([("ping", recv("pong", jump("h")))])),
        );
        let repo = repo(&[("srv", "mu k. ext[ping -> int[pong -> k]]")]);
        let plan = Plan::new().with(1u32, "srv");
        assert_eq!(find_stuck("c", client, &plan, &repo, 2), Err(2));
    }
}
