//! The run-time resource monitor: the incremental implementation of the
//! validity premise `⊨ η` of the network rules.
//!
//! The monitor observes the history items a component appends and
//! maintains, per policy instance, the automaton state set (fed every
//! event since the beginning — history dependence) and the activation
//! depth. It answers in O(|instances|) per item instead of re-running
//! `⊨ η` from scratch, and is cross-validated against
//! [`sufs_policy::History::first_violation`] in tests.
//!
//! The paper's point (§5) is that a **statically verified plan makes this
//! monitor unnecessary**; the benchmark `monitor_overhead` quantifies
//! what switching it off saves.

use std::collections::{BTreeMap, BTreeSet};

use sufs_hexpr::{Event, PolicyRef};
use sufs_policy::{HistoryItem, PolicyError, PolicyInstance, PolicyRegistry};

/// Whether executions enforce the validity premise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorMode {
    /// Rules only fire when the extended history stays valid (the
    /// semantics of the paper): per-step checking, violating transitions
    /// are pruned.
    Enforcing,
    /// No enforcement, but violations are *detected* after the run (one
    /// pass over the final history) and reported in the run result —
    /// the observation mode used by the experiments.
    Audit,
    /// Nothing is observed and nothing is checked: the execution §5
    /// promises is safe for statically verified plans.
    Off,
}

#[derive(Debug, Clone)]
struct Track {
    instance: PolicyInstance,
    states: BTreeSet<usize>,
    depth: usize,
}

/// The incremental validity monitor for one component's history.
#[derive(Debug, Clone, Default)]
pub struct ValidityMonitor {
    events: Vec<Event>,
    tracks: BTreeMap<PolicyRef, Track>,
}

impl ValidityMonitor {
    /// A monitor for an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one appended history item, returning the violated policy
    /// if the history just became invalid.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if a newly opened policy cannot be
    /// resolved in `registry`.
    pub fn observe(
        &mut self,
        item: &HistoryItem,
        registry: &PolicyRegistry,
    ) -> Result<Option<PolicyRef>, PolicyError> {
        match item {
            HistoryItem::Ev(e) => {
                self.events.push(e.clone());
                for track in self.tracks.values_mut() {
                    track.states = track.instance.step(&track.states, e);
                }
            }
            HistoryItem::Open(p) => {
                if !self.tracks.contains_key(p) {
                    // History dependence: a newly activated policy reads
                    // the whole past, so replay the flattened history.
                    let instance = registry.instantiate(p)?;
                    let states = instance.run(self.events.iter());
                    self.tracks.insert(
                        p.clone(),
                        Track {
                            instance,
                            states,
                            depth: 0,
                        },
                    );
                }
                let track = self.tracks.get_mut(p).expect("just inserted");
                track.depth += 1;
            }
            HistoryItem::Close(p) => {
                if let Some(track) = self.tracks.get_mut(p) {
                    track.depth = track.depth.saturating_sub(1);
                }
            }
        }
        Ok(self.violated())
    }

    /// Observes a whole delta of items; the first violation wins.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if a policy cannot be resolved.
    pub fn observe_all(
        &mut self,
        items: &[HistoryItem],
        registry: &PolicyRegistry,
    ) -> Result<Option<PolicyRef>, PolicyError> {
        let mut first = None;
        for item in items {
            let v = self.observe(item, registry)?;
            if first.is_none() {
                first = v;
            }
        }
        Ok(first.or_else(|| self.violated()))
    }

    /// The currently violated *active* policy, if any.
    pub fn violated(&self) -> Option<PolicyRef> {
        self.tracks
            .iter()
            .find(|(_, t)| t.depth > 0 && t.instance.offends(&t.states))
            .map(|(p, _)| p.clone())
    }

    /// Returns `true` if the observed history is still valid.
    pub fn is_valid(&self) -> bool {
        self.violated().is_none()
    }

    /// The number of events observed so far.
    pub fn events_seen(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_policy::{catalog, History};

    fn reg() -> PolicyRegistry {
        let mut r = PolicyRegistry::new();
        r.register(catalog::no_after("read", "write"));
        r.register(catalog::at_most("tick", 1));
        r
    }

    fn phi() -> PolicyRef {
        PolicyRef::nullary("no_write_after_read")
    }

    fn ev(name: &str) -> HistoryItem {
        HistoryItem::Ev(Event::nullary(name))
    }

    #[test]
    fn detects_active_violation() {
        let reg = reg();
        let mut m = ValidityMonitor::new();
        assert!(m
            .observe(&HistoryItem::Open(phi()), &reg)
            .unwrap()
            .is_none());
        assert!(m.observe(&ev("read"), &reg).unwrap().is_none());
        let v = m.observe(&ev("write"), &reg).unwrap();
        assert_eq!(v, Some(phi()));
        assert!(!m.is_valid());
    }

    #[test]
    fn inactive_policy_does_not_fire() {
        let reg = reg();
        let mut m = ValidityMonitor::new();
        m.observe(&HistoryItem::Open(phi()), &reg).unwrap();
        m.observe(&HistoryItem::Close(phi()), &reg).unwrap();
        assert!(m.observe(&ev("read"), &reg).unwrap().is_none());
        assert!(m.observe(&ev("write"), &reg).unwrap().is_none());
        assert!(m.is_valid());
        assert_eq!(m.events_seen(), 2);
    }

    #[test]
    fn history_dependence_replay() {
        // Events fired *before* the policy opens still count.
        let reg = reg();
        let mut m = ValidityMonitor::new();
        m.observe(&ev("read"), &reg).unwrap();
        m.observe(&ev("write"), &reg).unwrap();
        let v = m.observe(&HistoryItem::Open(phi()), &reg).unwrap();
        assert_eq!(v, Some(phi()));
    }

    #[test]
    fn agrees_with_batch_validity_check() {
        // Cross-validate the incremental monitor against the reference
        // History::first_violation on assorted histories.
        let reg = reg();
        let histories: Vec<Vec<HistoryItem>> = vec![
            vec![HistoryItem::Open(phi()), ev("read"), ev("write")],
            vec![ev("read"), HistoryItem::Open(phi()), ev("write")],
            vec![HistoryItem::Open(phi()), ev("write"), ev("read")],
            vec![
                HistoryItem::Open(phi()),
                ev("read"),
                HistoryItem::Close(phi()),
                ev("write"),
            ],
            vec![
                HistoryItem::Open(phi()),
                HistoryItem::Open(phi()),
                HistoryItem::Close(phi()),
                ev("read"),
                ev("write"),
            ],
        ];
        for items in histories {
            let mut m = ValidityMonitor::new();
            let mut incremental_violation = None;
            for item in &items {
                if let Some(p) = m.observe(item, &reg).unwrap() {
                    incremental_violation = Some(p);
                    break;
                }
            }
            let h: History = items.iter().cloned().collect();
            let batch = h.first_violation(&reg).unwrap().map(|(_, p)| p);
            assert_eq!(
                incremental_violation, batch,
                "monitor disagrees with batch check on {h}"
            );
        }
    }

    #[test]
    fn observe_all_reports_first_violation() {
        let reg = reg();
        let mut m = ValidityMonitor::new();
        let v = m
            .observe_all(&[HistoryItem::Open(phi()), ev("read"), ev("write")], &reg)
            .unwrap();
        assert_eq!(v, Some(phi()));
    }

    #[test]
    fn unknown_policy_is_error() {
        let mut m = ValidityMonitor::new();
        let err = m
            .observe(&HistoryItem::Open(PolicyRef::nullary("ghost")), &reg())
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }
}
