//! Networks of services: plans, sessions, the operational semantics of
//! §3, the run-time monitor, and schedulers.
//!
//! A network `N` is a parallel composition of components, each a client
//! evolving into a tree of (possibly nested) sessions with services
//! drawn from a trusted [`repository::Repository`]. A
//! [`plan::Plan`] binds each service request to a location; the
//! semantics ([`semantics`]) implements the rules *Open*, *Close* (with
//! the frame-flushing function `Φ`), *Session*, *Net*, *Access* and
//! *Synch* exactly as in the paper.
//!
//! Executions are driven by [`scheduler::Scheduler`], configurable along
//! the two axes the paper discusses:
//!
//! * **monitor on/off** ([`monitor::MonitorMode`]) — the validity
//!   premise `⊨ η` of the rules, made incremental in
//!   [`monitor::ValidityMonitor`]; §5's headline is that statically
//!   verified plans can run with the monitor off;
//! * **angelic/committed choice** ([`scheduler::ChoiceMode`]) — the
//!   paper's angelic semantics only enables mutually agreeable
//!   communications, while the committed mode lets a sender pick any of
//!   its outputs "regardless of the environment", exposing
//!   non-compliance as a [`scheduler::DeadlockReason::UnmatchedSend`].
//!
//! [`symbolic`] provides the finite, history-less state space that the
//! static verifier (the `sufs-core` crate) model-checks, and [`trace`]
//! renders executions in the style of the paper's Fig. 3.

#![warn(missing_docs)]

pub mod faults;
pub mod monitor;
pub mod network;
pub mod plan;
pub mod repository;
pub mod scheduler;
pub mod semantics;
pub mod session;
pub mod symbolic;
pub mod trace;

pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan, RecoveryTable};
pub use monitor::{MonitorMode, ValidityMonitor};
pub use network::{Component, Network};
pub use plan::Plan;
pub use repository::{PublishError, RepoEvent, Repository};
pub use scheduler::{ChoiceMode, DeadlockReason, Outcome, RunResult, Scheduler, TraceStep};
pub use semantics::{component_steps, sess_steps, SessStep, StepAction};
pub use session::{pending_frame_closes, Sess};
pub use symbolic::{find_stuck, symbolic_successors, StuckState, SymState};
