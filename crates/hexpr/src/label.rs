//! Transition labels `λ ∈ Comm ∪ Ev ∪ Frm` of the operational semantics.

use std::fmt;

use crate::event::{Event, PolicyRef};
use crate::ident::{Channel, RequestId};

/// The direction of a communication action on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// An input `a`.
    In,
    /// An output `ā`.
    Out,
}

impl Dir {
    /// The complementary direction: `co(a) = ā` and `co(ā) = a`.
    pub fn co(self) -> Dir {
        match self {
            Dir::In => Dir::Out,
            Dir::Out => Dir::In,
        }
    }
}

/// A transition label of the stand-alone semantics of history expressions:
/// a communication action, an access event, or a framing action.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// An access event `α ∈ Ev`.
    Ev(Event),
    /// A channel action `a` (input) or `ā` (output).
    Chan(Channel, Dir),
    /// The silent action `τ` produced by a synchronisation.
    Tau,
    /// Opening a session, `open_{r,φ}`.
    Open(RequestId, Option<PolicyRef>),
    /// Closing a session, `close_{r,φ}`.
    Close(RequestId, Option<PolicyRef>),
    /// An opening framing action `⌞φ ∈ Frm`.
    FrameOpen(PolicyRef),
    /// A closing framing action `⌟φ ∈ Frm`.
    FrameClose(PolicyRef),
}

impl Label {
    /// Builds an input label on `chan`.
    pub fn input(chan: impl Into<Channel>) -> Label {
        Label::Chan(chan.into(), Dir::In)
    }

    /// Builds an output label on `chan`.
    pub fn output(chan: impl Into<Channel>) -> Label {
        Label::Chan(chan.into(), Dir::Out)
    }

    /// Returns `true` if this is a communication action (`Comm` in the
    /// paper): a channel action, `τ`, or an open/close.
    pub fn is_comm(&self) -> bool {
        matches!(
            self,
            Label::Chan(..) | Label::Tau | Label::Open(..) | Label::Close(..)
        )
    }

    /// Returns `true` for access events.
    pub fn is_event(&self) -> bool {
        matches!(self, Label::Ev(_))
    }

    /// Returns `true` for framing actions `⌞φ`/`⌟φ`.
    pub fn is_framing(&self) -> bool {
        matches!(self, Label::FrameOpen(_) | Label::FrameClose(_))
    }

    /// The complementary channel action (`co(a)`), if this is one.
    pub fn co_action(&self) -> Option<Label> {
        match self {
            Label::Chan(c, d) => Some(Label::Chan(c.clone(), d.co())),
            _ => None,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Ev(e) => write!(f, "{e}"),
            Label::Chan(c, Dir::In) => write!(f, "{c}?"),
            Label::Chan(c, Dir::Out) => write!(f, "{c}!"),
            Label::Tau => write!(f, "τ"),
            Label::Open(r, Some(p)) => write!(f, "open_{r},{p}"),
            Label::Open(r, None) => write!(f, "open_{r},∅"),
            Label::Close(r, Some(p)) => write!(f, "close_{r},{p}"),
            Label::Close(r, None) => write!(f, "close_{r},∅"),
            Label::FrameOpen(p) => write!(f, "⌞{p}"),
            Label::FrameClose(p) => write!(f, "⌟{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_involution() {
        assert_eq!(Dir::In.co(), Dir::Out);
        assert_eq!(Dir::Out.co(), Dir::In);
        assert_eq!(Dir::In.co().co(), Dir::In);
    }

    #[test]
    fn co_action_on_channels_only() {
        let a = Label::input("a");
        assert_eq!(a.co_action(), Some(Label::output("a")));
        assert_eq!(Label::Tau.co_action(), None);
        assert_eq!(Label::Ev(Event::nullary("x")).co_action(), None);
    }

    #[test]
    fn classification() {
        assert!(Label::input("a").is_comm());
        assert!(Label::Tau.is_comm());
        assert!(Label::Open(RequestId::new(1), None).is_comm());
        assert!(Label::Ev(Event::nullary("x")).is_event());
        assert!(!Label::Ev(Event::nullary("x")).is_comm());
        assert!(Label::FrameOpen(PolicyRef::nullary("phi")).is_framing());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Label::input("a").to_string(), "a?");
        assert_eq!(Label::output("a").to_string(), "a!");
        assert_eq!(Label::Tau.to_string(), "τ");
        assert_eq!(
            Label::Open(RequestId::new(3), None).to_string(),
            "open_r3,∅"
        );
        assert_eq!(
            Label::FrameClose(PolicyRef::nullary("phi")).to_string(),
            "⌟phi"
        );
    }
}
