//! Finite labelled transition systems of history expressions.
//!
//! Because Definition 1 only admits guarded tail recursion, the set of
//! expressions reachable from a well-formed `H` through the operational
//! semantics is finite; [`HistLts::build`] explores it with breadth-first
//! search over canonical states.

use std::collections::HashMap;

use crate::hist::Hist;
use crate::label::Label;
use crate::semantics::successors;

/// An exploration error: the state space exceeded the configured bound.
///
/// This only happens for ill-formed expressions (e.g. non-tail recursion
/// introduced by hand); [`crate::wf::check`] rejects those statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpaceExceeded {
    /// The bound that was exceeded.
    pub bound: usize,
}

impl std::fmt::Display for StateSpaceExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "state space exceeded the bound of {} states", self.bound)
    }
}

impl std::error::Error for StateSpaceExceeded {}

/// The finite LTS of a history expression.
///
/// States are canonical history expressions; state `0` is the initial
/// expression. Edges carry the labels of the stand-alone semantics.
#[derive(Debug, Clone)]
pub struct HistLts {
    states: Vec<Hist>,
    edges: Vec<Vec<(Label, usize)>>,
}

/// The default bound on explored states.
pub const DEFAULT_STATE_BOUND: usize = 1 << 20;

impl HistLts {
    /// Explores the reachable state space of `h` with the default bound.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceExceeded`] if more than
    /// [`DEFAULT_STATE_BOUND`] states are reachable, which cannot happen
    /// for expressions accepted by [`crate::wf::check`].
    pub fn build(h: &Hist) -> Result<HistLts, StateSpaceExceeded> {
        Self::build_bounded(h, DEFAULT_STATE_BOUND)
    }

    /// Explores the reachable state space of `h`, failing beyond `bound`
    /// states.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceExceeded`] if more than `bound` states are
    /// reachable.
    pub fn build_bounded(h: &Hist, bound: usize) -> Result<HistLts, StateSpaceExceeded> {
        let mut states: Vec<Hist> = vec![h.clone()];
        let mut index: HashMap<Hist, usize> = HashMap::new();
        index.insert(h.clone(), 0);
        let mut edges: Vec<Vec<(Label, usize)>> = Vec::new();
        let mut next = 0usize;
        while next < states.len() {
            let state = states[next].clone();
            let mut out = Vec::new();
            for (label, succ) in successors(&state) {
                let id = match index.get(&succ) {
                    Some(&id) => id,
                    None => {
                        let id = states.len();
                        if id >= bound {
                            return Err(StateSpaceExceeded { bound });
                        }
                        index.insert(succ.clone(), id);
                        states.push(succ);
                        id
                    }
                };
                out.push((label, id));
            }
            edges.push(out);
            next += 1;
        }
        Ok(HistLts { states, edges })
    }

    /// The number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the LTS has no states (never happens: the initial
    /// state always exists).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The initial state id (always `0`).
    pub fn initial(&self) -> usize {
        0
    }

    /// The expression at state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> &Hist {
        &self.states[id]
    }

    /// Outgoing edges of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edges(&self, id: usize) -> &[(Label, usize)] {
        &self.edges[id]
    }

    /// Iterates over all `(source, label, target)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, &Label, usize)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(s, out)| out.iter().map(move |(l, t)| (s, l, *t)))
    }

    /// State ids whose expression is terminated (`ε`): successful final
    /// states.
    pub fn terminated_states(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_eps())
            .map(|(i, _)| i)
            .collect()
    }

    /// States with no outgoing edges that are *not* `ε`: these are stuck.
    ///
    /// For a closed stand-alone expression this is always empty; stuckness
    /// arises from composition (compliance failures), checked elsewhere.
    pub fn stuck_states(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(i, out)| out.is_empty() && !self.states[*i].is_eps())
            .map(|(i, _)| i)
            .collect()
    }

    /// Shortest label path from `from` ending with an edge satisfying
    /// `pred` (called with source id, label, target id), or `None` if no
    /// such edge is reachable.
    ///
    /// Breadth-first, so the returned witness is of minimal length; ties
    /// are broken by state discovery order, which makes the result
    /// deterministic for a given LTS.
    pub fn shortest_path_to_edge<F>(&self, from: usize, mut pred: F) -> Option<Vec<Label>>
    where
        F: FnMut(usize, &Label, usize) -> bool,
    {
        let mut parent: Vec<Option<(usize, Label)>> = vec![None; self.states.len()];
        let mut seen = vec![false; self.states.len()];
        seen[from] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(u) = queue.pop_front() {
            for (label, v) in &self.edges[u] {
                if pred(u, label, *v) {
                    let mut path = vec![label.clone()];
                    let mut cur = u;
                    while let Some((p, l)) = parent[cur].clone() {
                        path.push(l);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                if !seen[*v] {
                    seen[*v] = true;
                    parent[*v] = Some((u, label.clone()));
                    queue.push_back(*v);
                }
            }
        }
        None
    }

    /// State ids reachable from `from` using only edges whose label
    /// satisfies `keep` (including `from` itself).
    pub fn reachable_via<F>(&self, from: usize, mut keep: F) -> Vec<usize>
    where
        F: FnMut(&Label) -> bool,
    {
        let mut seen = vec![false; self.states.len()];
        seen[from] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            out.push(u);
            for (label, v) in &self.edges[u] {
                if !seen[*v] && keep(label) {
                    seen[*v] = true;
                    queue.push_back(*v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Looks for a cycle in the subgraph induced by the states in
    /// `within`, using only edges whose label satisfies `keep`. Returns a
    /// state on such a cycle, or `None` if the subgraph is acyclic.
    pub fn cycle_within<F>(&self, within: &[usize], mut keep: F) -> Option<usize>
    where
        F: FnMut(&Label) -> bool,
    {
        let member: std::collections::HashSet<usize> = within.iter().copied().collect();
        // Lint-sized LTSs are small, so a per-state "can this state reach
        // itself through at least one edge?" check keeps this obviously
        // correct at quadratic worst case.
        for &root in within {
            let mut seen = vec![false; self.states.len()];
            let mut queue: std::collections::VecDeque<usize> = self.edges[root]
                .iter()
                .filter(|(l, v)| member.contains(v) && keep(l))
                .map(|(_, v)| *v)
                .collect();
            for &v in &queue {
                seen[v] = true;
            }
            while let Some(u) = queue.pop_front() {
                if u == root {
                    return Some(root);
                }
                for (label, v) in &self.edges[u] {
                    if !seen[*v] && member.contains(v) && keep(label) {
                        seen[*v] = true;
                        queue.push_back(*v);
                    }
                }
            }
        }
        None
    }

    /// Renders the LTS in Graphviz DOT format (for debugging and docs).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph hist {\n  rankdir=LR;\n");
        for (i, st) in self.states.iter().enumerate() {
            let shape = if st.is_eps() {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(s, "  q{i} [shape={shape},label=\"q{i}\"];");
        }
        for (src, label, tgt) in self.iter_edges() {
            let _ = writeln!(s, "  q{src} -> q{tgt} [label=\"{label}\"];");
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ident::Channel;

    fn ev(name: &str) -> Hist {
        Hist::ev(Event::nullary(name))
    }
    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }

    #[test]
    fn straight_line_lts() {
        let h = Hist::seq(ev("a"), ev("b"));
        let lts = HistLts::build(&h).unwrap();
        assert_eq!(lts.len(), 3);
        assert_eq!(lts.terminated_states().len(), 1);
        assert!(lts.stuck_states().is_empty());
    }

    #[test]
    fn recursion_is_finite_state() {
        // μh. (ā ⊕ b̄)·c̄·h : 3 states (head, after a/b, eps is unreachable).
        let body = Hist::seq(
            Hist::int_([(ch("a"), Hist::Eps), (ch("b"), Hist::Eps)]),
            Hist::seq(Hist::int_([(ch("c"), Hist::Eps)]), Hist::var("h")),
        );
        let h = Hist::mu("h", body);
        let lts = HistLts::build(&h).unwrap();
        assert_eq!(lts.len(), 2);
        assert!(lts.terminated_states().is_empty());
        // Every state has outgoing edges (the loop never terminates).
        for i in 0..lts.len() {
            assert!(!lts.edges(i).is_empty());
        }
    }

    #[test]
    fn choice_lts_shape() {
        let h = Hist::ext([(ch("a"), ev("x")), (ch("b"), ev("y"))]);
        let lts = HistLts::build(&h).unwrap();
        // initial, x, y, eps = 4 states
        assert_eq!(lts.len(), 4);
        assert_eq!(lts.edges(0).len(), 2);
        assert_eq!(lts.iter_edges().count(), 4);
    }

    #[test]
    fn bound_is_enforced() {
        let h = Hist::seq_all((0..10).map(|i| ev(&format!("e{i}"))));
        let err = HistLts::build_bounded(&h, 4).unwrap_err();
        assert_eq!(err.bound, 4);
        assert!(err.to_string().contains("4"));
    }

    #[test]
    fn dot_output_mentions_labels() {
        let h = ev("a");
        let dot = HistLts::build(&h).unwrap().to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("#a"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn shared_continuations_are_merged() {
        // a.(c) + b.(c): the continuation after a and after b is the same
        // state.
        let cont = ev("c");
        let h = Hist::ext([(ch("a"), cont.clone()), (ch("b"), cont)]);
        let lts = HistLts::build(&h).unwrap();
        assert_eq!(lts.len(), 3); // initial, c, eps
    }
}
