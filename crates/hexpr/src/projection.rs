//! Projection on communication actions, `H!` (§4 of the paper).
//!
//! The projection removes from a history expression all the access events
//! `α`, the policy framings `φ⟦·⟧` and the *inner* service requests
//! `open_{r,φ} … close_{r,φ}`, keeping only channel communications. Its
//! result is a *behavioural contract* in the sense of Castagna–Gesbert–
//! Padovani \[12\]; contracts are packaged in the `sufs-contract` crate.
//!
//! ```text
//! (H·H')! = H!·H'!          h! = h           φ⟦H⟧! = H!
//! (μh.H)! = μh.(H!)         (Σᵢ aᵢ.Hᵢ)! = Σᵢ aᵢ.(Hᵢ!)
//! (⊕ᵢ āᵢ.Hᵢ)! = ⊕ᵢ āᵢ.(Hᵢ!) (open_{r,φ}.H.close_{r,φ})! = ε! = α! = ε
//! ```

use crate::hist::Hist;

/// Computes the projection `H!` of a history expression on its
/// communication actions.
///
/// The projection of a closed expression is closed. Choice branches are
/// preserved even when their continuations project to `ε` — the branch
/// structure *is* the contract.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::{parse_hist, projection::project};
///
/// let h = parse_hist("#sgn(1); ext[idc -> int[bok -> eps | una -> eps]]").unwrap();
/// let p = project(&h);
/// assert_eq!(p, parse_hist("ext[idc -> int[bok -> eps | una -> eps]]").unwrap());
/// ```
pub fn project(h: &Hist) -> Hist {
    match h {
        Hist::Eps | Hist::Ev(_) => Hist::Eps,
        // Inner requests disappear entirely, together with their bodies.
        Hist::Req { .. } | Hist::CloseTok(..) => Hist::Eps,
        Hist::FrameCloseTok(_) => Hist::Eps,
        Hist::Var(v) => Hist::Var(v.clone()),
        Hist::Mu(v, body) => {
            let pb = project(body);
            // μh.ε would be a degenerate (unguarded) loop; by the paper's
            // well-formedness recursion is guarded by communications, so a
            // body projecting to ε means the loop performs no
            // communication at all and its contract is ε.
            if pb.is_eps() {
                Hist::Eps
            } else {
                Hist::Mu(v.clone(), Box::new(pb))
            }
        }
        Hist::Ext(bs) => Hist::Ext(bs.iter().map(|(c, h)| (c.clone(), project(h))).collect()),
        Hist::Int(bs) => Hist::Int(bs.iter().map(|(c, h)| (c.clone(), project(h))).collect()),
        Hist::Seq(a, b) => Hist::seq(project(a), project(b)),
        Hist::Framed(_, body) => project(body),
    }
}

/// Returns `true` if `h` lies in the image of [`project`]: it contains
/// only `ε`, variables, recursion, choices and sequencing — no events,
/// requests or framings.
pub fn is_comm_only(h: &Hist) -> bool {
    match h {
        Hist::Eps | Hist::Var(_) => true,
        Hist::Mu(_, body) => is_comm_only(body),
        Hist::Ext(bs) | Hist::Int(bs) => bs.iter().all(|(_, h)| is_comm_only(h)),
        Hist::Seq(a, b) => is_comm_only(a) && is_comm_only(b),
        Hist::Ev(_)
        | Hist::Req { .. }
        | Hist::Framed(..)
        | Hist::CloseTok(..)
        | Hist::FrameCloseTok(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, PolicyRef};
    use crate::ident::Channel;

    fn ev(name: &str) -> Hist {
        Hist::ev(Event::nullary(name))
    }
    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }

    #[test]
    fn events_vanish() {
        assert_eq!(project(&ev("a")), Hist::Eps);
        assert_eq!(project(&Hist::seq(ev("a"), ev("b"))), Hist::Eps);
    }

    #[test]
    fn framings_are_transparent() {
        let h = Hist::framed(PolicyRef::nullary("phi"), Hist::ext([(ch("a"), Hist::Eps)]));
        assert_eq!(project(&h), Hist::ext([(ch("a"), Hist::Eps)]));
    }

    #[test]
    fn inner_requests_vanish_with_their_bodies() {
        let h = Hist::seq(
            Hist::req(3u32, None, Hist::ext([(ch("x"), Hist::Eps)])),
            Hist::int_([(ch("a"), Hist::Eps)]),
        );
        assert_eq!(project(&h), Hist::int_([(ch("a"), Hist::Eps)]));
    }

    #[test]
    fn projection_is_idempotent() {
        let h = Hist::seq(
            ev("a"),
            Hist::mu(
                "h",
                Hist::int_([(ch("x"), Hist::seq(ev("b"), Hist::var("h")))]),
            ),
        );
        let once = project(&h);
        assert_eq!(project(&once), once);
        assert!(is_comm_only(&once));
    }

    #[test]
    fn projection_of_closed_is_closed() {
        let h = Hist::mu(
            "h",
            Hist::int_([(ch("a"), Hist::seq(ev("b"), Hist::var("h")))]),
        );
        let p = project(&h);
        assert!(p.is_closed());
    }

    #[test]
    fn mu_with_silent_body_projects_to_eps() {
        // A loop that only fires events has the empty contract. (Such a
        // loop is rejected by wf — recursion must be comm-guarded — but
        // projection must still be total.)
        let h = Hist::mu("h", Hist::seq(ev("a"), Hist::var("h")));
        // body projects to h alone, which is not ε, so the μ survives
        // as μh.h; this is the degenerate case handled by wf. Here we only
        // check projection is total and structural.
        let p = project(&h);
        assert_eq!(p, Hist::mu("h", Hist::var("h")));
    }

    #[test]
    fn paper_broker_projection() {
        // Br = Req̄? … actually the broker receives req, then opens a
        // session; projecting its top level keeps only the communications.
        let br = Hist::seq(
            Hist::ext([(ch("req"), Hist::Eps)]),
            Hist::seq(
                Hist::req(3u32, None, Hist::int_([(ch("idc"), Hist::Eps)])),
                Hist::int_([(ch("cobo"), Hist::Eps), (ch("noav"), Hist::Eps)]),
            ),
        );
        let p = project(&br);
        assert_eq!(
            p,
            Hist::seq(
                Hist::ext([(ch("req"), Hist::Eps)]),
                Hist::int_([(ch("cobo"), Hist::Eps), (ch("noav"), Hist::Eps)]),
            )
        );
    }
}
