//! Stable structural hashing.
//!
//! The verification cache (`sufs-core`) memoizes projections, compliance
//! checks and model-checking verdicts keyed by the *structure* of the
//! expressions involved. Those keys need a hash that is a pure function
//! of the value — independent of allocation addresses, map iteration
//! order or the standard library's randomised `SipHash` keys — so that
//! cache behaviour (and therefore every hit-rate reported by the bench
//! suite) is reproducible run over run.
//!
//! [`StableHasher`] is a 64-bit [FNV-1a](http://www.isthe.com/chongo/tech/comp/fnv/)
//! hasher. All the syntax types of this crate derive [`Hash`] over purely
//! structural data, so feeding them through a deterministic hasher yields
//! a deterministic structural fingerprint. Collisions are possible in
//! principle, which is why the cache stores full keys and uses the
//! fingerprint only to bucket them — a collision can cost time, never
//! correctness.

use std::hash::{Hash, Hasher};

/// A deterministic 64-bit FNV-1a hasher.
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the stream is not
/// keyed: the same bytes always produce the same value within a build,
/// making it suitable for reproducible cache statistics and golden tests.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl StableHasher {
    /// A fresh hasher in the FNV-1a initial state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        // A final avalanche (SplitMix64 mix) spreads the FNV state's
        // entropy into the high bits, which `HashMap` uses for buckets.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The stable structural hash of any `Hash` value.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::shash::stable_hash_of;
///
/// assert_eq!(stable_hash_of(&"abc"), stable_hash_of(&"abc"));
/// assert_ne!(stable_hash_of(&"abc"), stable_hash_of(&"abd"));
/// ```
pub fn stable_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_hist;

    #[test]
    fn deterministic_across_instances() {
        let a = parse_hist("ext[a -> int[b -> eps]]").unwrap();
        let b = parse_hist("ext[a -> int[b -> eps]]").unwrap();
        assert_eq!(stable_hash_of(&a), stable_hash_of(&b));
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn distinguishes_structure() {
        let a = parse_hist("ext[a -> eps]").unwrap();
        let b = parse_hist("int[a -> eps]").unwrap();
        let c = parse_hist("ext[b -> eps]").unwrap();
        assert_ne!(a.structural_hash(), b.structural_hash());
        assert_ne!(a.structural_hash(), c.structural_hash());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis; our finish()
        // additionally avalanches it, so just pin the raw state.
        let h = StableHasher::new();
        assert_eq!(h.state, FNV_OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.state, 0xaf63_dc4c_8601_ec8c);
    }
}
