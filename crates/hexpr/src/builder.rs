//! Ergonomic builders for history expressions.
//!
//! These free functions mirror how the paper writes services: `send`/`recv`
//! for singleton prefixes, `choose` (`⊕`) and `offer` (`Σ`) for proper
//! choices, `then` chains and `loop_`/`jump` for tail recursion.
//!
//! # Examples
//!
//! ```
//! use sufs_hexpr::builder::*;
//!
//! // S1 = α_sgn(1)·α_p(45)·α_ta(80) · idc.(b̄ok ⊕ ūna)
//! let s1 = seq([
//!     ev("sgn", [1]),
//!     ev("p", [45]),
//!     ev("ta", [80]),
//!     recv("idc", choose([("bok", eps()), ("una", eps())])),
//! ]);
//! assert!(sufs_hexpr::wf::check(&s1).is_ok());
//! ```

use crate::event::{Event, PolicyRef};
use crate::hist::Hist;
use crate::ident::Channel;
use crate::value::Value;

/// The empty expression `ε`.
pub fn eps() -> Hist {
    Hist::Eps
}

/// An access event `α` with integer-or-string arguments.
pub fn ev<I, V>(name: &str, args: I) -> Hist
where
    I: IntoIterator<Item = V>,
    V: Into<Value>,
{
    Hist::Ev(Event::new(name, args))
}

/// An access event with no arguments.
pub fn ev0(name: &str) -> Hist {
    Hist::Ev(Event::nullary(name))
}

/// Output `ā` then continue: the singleton internal choice `ā.H`.
pub fn send(chan: &str, cont: Hist) -> Hist {
    Hist::int_([(Channel::new(chan), cont)])
}

/// Input `a` then continue: the singleton external choice `a.H`.
pub fn recv(chan: &str, cont: Hist) -> Hist {
    Hist::ext([(Channel::new(chan), cont)])
}

/// Internal choice `⊕ᵢ āᵢ.Hᵢ`: the service decides which output to send.
pub fn choose<I>(branches: I) -> Hist
where
    I: IntoIterator<Item = (&'static str, Hist)>,
{
    Hist::int_(branches.into_iter().map(|(c, h)| (Channel::new(c), h)))
}

/// External choice `Σᵢ aᵢ.Hᵢ`: the branch is driven by the received message.
pub fn offer<I>(branches: I) -> Hist
where
    I: IntoIterator<Item = (&'static str, Hist)>,
{
    Hist::ext(branches.into_iter().map(|(c, h)| (Channel::new(c), h)))
}

/// Sequential composition of any number of expressions.
pub fn seq<I>(items: I) -> Hist
where
    I: IntoIterator<Item = Hist>,
{
    Hist::seq_all(items)
}

/// Tail recursion `μh.H`.
pub fn loop_(var: &str, body: Hist) -> Hist {
    Hist::mu(var, body)
}

/// A jump back to the enclosing loop, i.e. the recursion variable `h`.
pub fn jump(var: &str) -> Hist {
    Hist::var(var)
}

/// A service request `open_{r,φ} H close_{r,φ}`.
pub fn request(id: u32, policy: Option<PolicyRef>, body: Hist) -> Hist {
    Hist::req(id, policy, body)
}

/// A security framing `φ⟦H⟧`.
pub fn framed(policy: PolicyRef, body: Hist) -> Hist {
    Hist::framed(policy, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{Dir, Label};
    use crate::semantics::successors;

    #[test]
    fn send_is_singleton_internal() {
        let h = send("a", eps());
        match &h {
            Hist::Int(bs) => assert_eq!(bs.len(), 1),
            other => panic!("expected Int, got {other:?}"),
        }
        assert_eq!(
            successors(&h)[0].0,
            Label::Chan(Channel::new("a"), Dir::Out)
        );
    }

    #[test]
    fn recv_is_singleton_external() {
        let h = recv("a", eps());
        assert_eq!(successors(&h)[0].0, Label::Chan(Channel::new("a"), Dir::In));
    }

    #[test]
    fn builders_compose_with_parser() {
        let built = seq([
            ev("sgn", [1]),
            recv("idc", choose([("bok", eps()), ("una", eps())])),
        ]);
        let parsed =
            crate::parse_hist("#sgn(1); ext[idc -> int[bok -> eps | una -> eps]]").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn loop_and_jump() {
        let h = loop_("h", choose([("more", jump("h")), ("done", eps())]));
        assert!(crate::wf::check(&h).is_ok());
        let lts = crate::lts::HistLts::build(&h).unwrap();
        assert_eq!(lts.len(), 2); // loop head + terminated
    }
}
