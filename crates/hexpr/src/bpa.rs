//! Rendering history expressions as BPA processes (§3.1).
//!
//! The paper model-checks validity by rendering a history expression as
//! a **Basic Process Algebra** process whose finite-state automata are
//! checked against the policies \[5,4\]. This module implements the
//! rendering: a BPA system of guarded process definitions
//!
//! ```text
//! p ::= 0 | a | p·p | p + p | X          X := p (one per μh.H)
//! ```
//!
//! together with the standard Greibach-style operational semantics, and
//! is proven (by tests and a workspace property test) trace-equivalent
//! to the direct LTS of [`crate::lts::HistLts`].

use std::collections::BTreeMap;
use std::fmt;

use crate::hist::Hist;
use crate::ident::RecVar;
use crate::label::Label;

/// A BPA process variable `X`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BpaVar(String);

impl BpaVar {
    /// Creates a process variable.
    pub fn new(name: impl Into<String>) -> Self {
        BpaVar(name.into())
    }
}

impl fmt::Display for BpaVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A BPA term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BpaTerm {
    /// The terminated process `0`.
    Nil,
    /// An atomic action.
    Atom(Label),
    /// Sequential composition `p·q`.
    Seq(Box<BpaTerm>, Box<BpaTerm>),
    /// Alternative composition `p + q`.
    Alt(Box<BpaTerm>, Box<BpaTerm>),
    /// A process variable, resolved in the enclosing [`BpaSystem`].
    Var(BpaVar),
}

impl BpaTerm {
    /// Canonicalising sequential composition (`0·p ≡ p ≡ p·0`,
    /// right-associated).
    pub fn seq(a: BpaTerm, b: BpaTerm) -> BpaTerm {
        match (a, b) {
            (BpaTerm::Nil, q) => q,
            (p, BpaTerm::Nil) => p,
            (BpaTerm::Seq(p1, p2), q) => BpaTerm::seq(*p1, BpaTerm::seq(*p2, q)),
            (p, q) => BpaTerm::Seq(Box::new(p), Box::new(q)),
        }
    }

    /// Alternative composition of any number of terms; the empty
    /// alternative is `0`.
    pub fn alt_all<I: IntoIterator<Item = BpaTerm>>(items: I) -> BpaTerm {
        let mut items: Vec<BpaTerm> = items.into_iter().collect();
        let Some(mut acc) = items.pop() else {
            return BpaTerm::Nil;
        };
        while let Some(p) = items.pop() {
            acc = BpaTerm::Alt(Box::new(p), Box::new(acc));
        }
        acc
    }
}

impl fmt::Display for BpaTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpaTerm::Nil => write!(f, "0"),
            BpaTerm::Atom(l) => write!(f, "{l}"),
            BpaTerm::Seq(a, b) => write!(f, "({a}·{b})"),
            BpaTerm::Alt(a, b) => write!(f, "({a} + {b})"),
            BpaTerm::Var(x) => write!(f, "{x}"),
        }
    }
}

/// A BPA system: a root term and guarded definitions `X := p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpaSystem {
    root: BpaTerm,
    defs: BTreeMap<BpaVar, BpaTerm>,
}

impl BpaSystem {
    /// Renders a (closed) history expression as a BPA system: one
    /// definition per `μ` binder, actions for events, communications,
    /// session brackets and framing brackets.
    pub fn from_hist(h: &Hist) -> BpaSystem {
        let mut defs = BTreeMap::new();
        let mut counter = 0u32;
        let root = translate(h, &mut BTreeMap::new(), &mut defs, &mut counter);
        BpaSystem { root, defs }
    }

    /// The root term.
    pub fn root(&self) -> &BpaTerm {
        &self.root
    }

    /// The process definitions.
    pub fn defs(&self) -> &BTreeMap<BpaVar, BpaTerm> {
        &self.defs
    }

    /// Single-step transitions of a term under this system's
    /// definitions.
    pub fn successors(&self, p: &BpaTerm) -> Vec<(Label, BpaTerm)> {
        let mut out = Vec::new();
        self.step(p, &mut out);
        out
    }

    fn step(&self, p: &BpaTerm, out: &mut Vec<(Label, BpaTerm)>) {
        match p {
            BpaTerm::Nil => {}
            BpaTerm::Atom(l) => out.push((l.clone(), BpaTerm::Nil)),
            BpaTerm::Seq(a, b) => {
                let mut inner = Vec::new();
                self.step(a, &mut inner);
                for (l, a2) in inner {
                    out.push((l, BpaTerm::seq(a2, (**b).clone())));
                }
            }
            BpaTerm::Alt(a, b) => {
                self.step(a, out);
                self.step(b, out);
            }
            BpaTerm::Var(x) => {
                if let Some(def) = self.defs.get(x) {
                    self.step(def, out);
                }
            }
        }
    }

    /// All label traces of bounded length from the root, sorted and
    /// deduplicated (for equivalence testing against the direct LTS).
    pub fn traces(&self, max_len: usize) -> Vec<Vec<Label>> {
        let mut done = Vec::new();
        let mut frontier = vec![(self.root.clone(), Vec::new())];
        while let Some((p, trace)) = frontier.pop() {
            if trace.len() >= max_len {
                done.push(trace);
                continue;
            }
            let succ = self.successors(&p);
            if succ.is_empty() {
                done.push(trace);
                continue;
            }
            for (l, p2) in succ {
                let mut t2 = trace.clone();
                t2.push(l);
                frontier.push((p2, t2));
            }
        }
        done.sort();
        done.dedup();
        done
    }
}

impl fmt::Display for BpaSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "root: {}", self.root)?;
        for (x, p) in &self.defs {
            writeln!(f, "{x} := {p}")?;
        }
        Ok(())
    }
}

fn translate(
    h: &Hist,
    env: &mut BTreeMap<RecVar, BpaVar>,
    defs: &mut BTreeMap<BpaVar, BpaTerm>,
    counter: &mut u32,
) -> BpaTerm {
    match h {
        Hist::Eps => BpaTerm::Nil,
        Hist::Ev(e) => BpaTerm::Atom(Label::Ev(e.clone())),
        Hist::Var(v) => match env.get(v) {
            Some(x) => BpaTerm::Var(x.clone()),
            None => BpaTerm::Nil, // free variable: deadlocked, like ε
        },
        Hist::Mu(v, body) => {
            *counter += 1;
            let x = BpaVar::new(format!("X{counter}_{v}"));
            let shadowed = env.insert(v.clone(), x.clone());
            let def = translate(body, env, defs, counter);
            match shadowed {
                Some(old) => {
                    env.insert(v.clone(), old);
                }
                None => {
                    env.remove(v);
                }
            }
            defs.insert(x.clone(), def);
            BpaTerm::Var(x)
        }
        Hist::Ext(bs) => BpaTerm::alt_all(bs.iter().map(|(c, k)| {
            BpaTerm::seq(
                BpaTerm::Atom(Label::input(c.clone())),
                translate(k, env, defs, counter),
            )
        })),
        Hist::Int(bs) => BpaTerm::alt_all(bs.iter().map(|(c, k)| {
            BpaTerm::seq(
                BpaTerm::Atom(Label::output(c.clone())),
                translate(k, env, defs, counter),
            )
        })),
        Hist::Seq(a, b) => BpaTerm::seq(
            translate(a, env, defs, counter),
            translate(b, env, defs, counter),
        ),
        Hist::Req { id, policy, body } => BpaTerm::seq(
            BpaTerm::Atom(Label::Open(*id, policy.clone())),
            BpaTerm::seq(
                translate(body, env, defs, counter),
                BpaTerm::Atom(Label::Close(*id, policy.clone())),
            ),
        ),
        Hist::Framed(p, body) => BpaTerm::seq(
            BpaTerm::Atom(Label::FrameOpen(p.clone())),
            BpaTerm::seq(
                translate(body, env, defs, counter),
                BpaTerm::Atom(Label::FrameClose(p.clone())),
            ),
        ),
        Hist::CloseTok(r, p) => BpaTerm::Atom(Label::Close(*r, p.clone())),
        Hist::FrameCloseTok(p) => BpaTerm::Atom(Label::FrameClose(p.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_hist;
    use crate::semantics::traces as hist_traces;

    fn equivalent_up_to(src: &str, depth: usize) {
        let h = parse_hist(src).unwrap();
        let bpa = BpaSystem::from_hist(&h);
        assert_eq!(
            bpa.traces(depth),
            hist_traces(&h, depth),
            "trace sets differ for {src}"
        );
    }

    #[test]
    fn straight_line_traces_agree() {
        equivalent_up_to("#a; #b; #c", 10);
        equivalent_up_to("eps", 10);
    }

    #[test]
    fn choice_traces_agree() {
        equivalent_up_to("ext[a -> #x | b -> #y]", 10);
        equivalent_up_to("int[a -> eps | b -> ext[c -> eps]]", 10);
    }

    #[test]
    fn framing_and_request_traces_agree() {
        equivalent_up_to("frame p [ #a; #b ]", 10);
        equivalent_up_to("open 1 phi p { int[q -> eps] }", 10);
        equivalent_up_to("frame p [ open 1 { int[q -> eps] }; #a ]", 12);
    }

    #[test]
    fn recursion_traces_agree_boundedly() {
        equivalent_up_to("mu h. int[go -> #w; h | stop -> eps]", 7);
        equivalent_up_to(
            "mu h. int[a -> mu k. int[b -> k | up -> h] | stop -> eps]",
            6,
        );
    }

    #[test]
    fn one_definition_per_mu() {
        let h = parse_hist("mu h. int[a -> h | b -> mu k. int[c -> k | d -> eps]]").unwrap();
        let bpa = BpaSystem::from_hist(&h);
        assert_eq!(bpa.defs().len(), 2);
        assert!(matches!(bpa.root(), BpaTerm::Var(_)));
    }

    #[test]
    fn shadowed_variables_resolve_innermost() {
        // μh. a!.μh. (b!.h ⊕ stop): the inner h loops on the inner μ.
        let h = parse_hist("mu h. int[a -> mu h. int[b -> h | stop -> eps]]").unwrap();
        equivalent_up_to("mu h. int[a -> mu h. int[b -> h | stop -> eps]]", 6);
        let bpa = BpaSystem::from_hist(&h);
        assert_eq!(bpa.defs().len(), 2);
    }

    #[test]
    fn display_shows_definitions() {
        let h = parse_hist("mu h. int[a -> h | stop -> eps]").unwrap();
        let bpa = BpaSystem::from_hist(&h);
        let s = bpa.to_string();
        assert!(s.contains("root: X1_h"));
        assert!(s.contains("X1_h :="));
        assert!(s.contains("a!"));
    }

    #[test]
    fn nil_has_no_transitions() {
        let bpa = BpaSystem::from_hist(&Hist::Eps);
        assert!(bpa.successors(bpa.root()).is_empty());
    }
}
