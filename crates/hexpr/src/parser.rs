//! A parser for the concrete textual syntax of history expressions.
//!
//! ```text
//! H      := P (';' P)*                      sequential composition
//! P      := 'mu' ident '.' H                tail recursion
//!         | A
//! A      := 'eps'                           the empty expression
//!         | '#' ident ['(' value,* ')']     access event
//!         | 'ext' '[' b ('|' b)* ']'        external choice (inputs)
//!         | 'int' '[' b ('|' b)* ']'        internal choice (outputs)
//!         | 'open' nat ['phi' polref] '{' H '}'   service request
//!         | 'frame' polref '[' H ']'        security framing
//!         | '(' H ')'
//!         | ident                           recursion variable
//! b      := ident '->' H                    a choice branch
//! polref := ident ['(' param,* ')']
//! param  := value | '{' value,* '}'         scalar or set parameter
//! value  := int | ident
//! ```
//!
//! The pretty printer ([`std::fmt::Display`] on [`Hist`]) emits exactly
//! this syntax, and a round-trip property test in the workspace checks
//! `parse(display(h)) == h`.

use std::fmt;

use crate::event::{Event, PolicyRef};
use crate::hist::Hist;
use crate::ident::Channel;
use crate::value::{ParamValue, Value};

/// A parse error, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a history expression from its textual syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::parse_hist;
///
/// let h = parse_hist("mu h. int[work -> #step(1); h | quit -> eps]")?;
/// assert!(h.is_closed());
/// # Ok::<(), sufs_hexpr::ParseError>(())
/// ```
pub fn parse_hist(input: &str) -> Result<Hist, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let h = p.seq()?;
    p.expect_eof()?;
    Ok(h)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Hash,
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Pipe,
    Arrow,
    Dot,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Hash => write!(f, "`#`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrack => write!(f, "`[`"),
            Tok::RBrack => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '#' => {
                out.push((Tok::Hash, i));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBrack, i));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBrack, i));
                i += 1;
            }
            '{' => {
                out.push((Tok::LBrace, i));
                i += 1;
            }
            '}' => {
                out.push((Tok::RBrace, i));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '|' => {
                out.push((Tok::Pipe, i));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Arrow, i));
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: i64 = input[start..i].parse().map_err(|_| ParseError {
                        offset: start,
                        message: "integer literal out of range".into(),
                    })?;
                    out.push((Tok::Int(n), start));
                } else {
                    return Err(ParseError {
                        offset: i,
                        message: "expected `->` or a negative integer after `-`".into(),
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|_| ParseError {
                    offset: start,
                    message: "integer literal out of range".into(),
                })?;
                out.push((Tok::Int(n), start));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((Tok::Ident(input[start..i].to_owned()), start));
            }
            _ => {
                return Err(ParseError {
                    offset: i,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    out.push((Tok::Eof, bytes.len()));
    Ok(out)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.offset(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err(format!("expected end of input, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn seq(&mut self) -> Result<Hist, ParseError> {
        let first = self.prefix()?;
        if matches!(self.peek(), Tok::Semi) {
            self.bump();
            let rest = self.seq()?;
            Ok(Hist::seq(first, rest))
        } else {
            Ok(first)
        }
    }

    fn prefix(&mut self) -> Result<Hist, ParseError> {
        if let Tok::Ident(kw) = self.peek() {
            if kw == "mu" {
                self.bump();
                let var = self.ident()?;
                self.expect(Tok::Dot)?;
                let body = self.seq()?;
                return Ok(Hist::mu(var, body));
            }
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Hist, ParseError> {
        match self.peek().clone() {
            Tok::Hash => {
                self.bump();
                let name = self.ident()?;
                let args = if matches!(self.peek(), Tok::LParen) {
                    self.value_list()?
                } else {
                    Vec::new()
                };
                Ok(Hist::Ev(Event::new(name, args)))
            }
            Tok::LParen => {
                self.bump();
                let h = self.seq()?;
                self.expect(Tok::RParen)?;
                Ok(h)
            }
            Tok::Ident(kw) => match kw.as_str() {
                "eps" => {
                    self.bump();
                    Ok(Hist::Eps)
                }
                "ext" => {
                    self.bump();
                    Ok(Hist::Ext(self.branches()?))
                }
                "int" => {
                    self.bump();
                    Ok(Hist::Int(self.branches()?))
                }
                "open" => {
                    self.bump();
                    let id = match self.peek().clone() {
                        Tok::Int(n) if n >= 0 => {
                            self.bump();
                            n as u32
                        }
                        other => {
                            return self.err(format!(
                                "expected a non-negative request number, found {other}"
                            ))
                        }
                    };
                    let policy = if self.peek() == &Tok::Ident("phi".into()) {
                        self.bump();
                        Some(self.policy_ref()?)
                    } else {
                        None
                    };
                    self.expect(Tok::LBrace)?;
                    let body = self.seq()?;
                    self.expect(Tok::RBrace)?;
                    Ok(Hist::req(id, policy, body))
                }
                "frame" => {
                    self.bump();
                    let p = self.policy_ref()?;
                    self.expect(Tok::LBrack)?;
                    let body = self.seq()?;
                    self.expect(Tok::RBrack)?;
                    Ok(Hist::framed(p, body))
                }
                "mu" => self.err("`mu` must be followed by a variable and `.`"),
                _ => {
                    self.bump();
                    Ok(Hist::var(kw))
                }
            },
            other => self.err(format!("expected a history expression, found {other}")),
        }
    }

    fn branches(&mut self) -> Result<Vec<(Channel, Hist)>, ParseError> {
        self.expect(Tok::LBrack)?;
        let mut out = Vec::new();
        loop {
            let chan = self.ident()?;
            self.expect(Tok::Arrow)?;
            let cont = self.seq()?;
            out.push((Channel::new(chan), cont));
            match self.peek() {
                Tok::Pipe => {
                    self.bump();
                }
                Tok::RBrack => {
                    self.bump();
                    break;
                }
                other => return self.err(format!("expected `|` or `]`, found {other}")),
            }
        }
        Ok(out)
    }

    fn policy_ref(&mut self) -> Result<PolicyRef, ParseError> {
        let name = self.ident()?;
        let mut args = Vec::new();
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            if !matches!(self.peek(), Tok::RParen) {
                loop {
                    args.push(self.param()?);
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
        }
        Ok(PolicyRef::new(name, args))
    }

    fn param(&mut self) -> Result<ParamValue, ParseError> {
        if matches!(self.peek(), Tok::LBrace) {
            self.bump();
            let mut vals = Vec::new();
            if !matches!(self.peek(), Tok::RBrace) {
                loop {
                    vals.push(self.value()?);
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RBrace)?;
            Ok(ParamValue::Set(vals.into_iter().collect()))
        } else {
            Ok(ParamValue::Scalar(self.value()?))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Value::Int(n))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            other => self.err(format!("expected a value, found {other}")),
        }
    }

    fn value_list(&mut self) -> Result<Vec<Value>, ParseError> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                out.push(self.value()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_eps_and_events() {
        assert_eq!(parse_hist("eps").unwrap(), Hist::Eps);
        assert_eq!(
            parse_hist("#sgn(1)").unwrap(),
            Hist::Ev(Event::new("sgn", [1i64]))
        );
        assert_eq!(
            parse_hist("#tick").unwrap(),
            Hist::Ev(Event::nullary("tick"))
        );
        assert_eq!(
            parse_hist("#mix(1, foo, -3)").unwrap(),
            Hist::Ev(Event::new(
                "mix",
                [Value::Int(1), Value::str("foo"), Value::Int(-3)]
            ))
        );
    }

    #[test]
    fn parses_sequences_right_associated() {
        let h = parse_hist("#a; #b; #c").unwrap();
        assert_eq!(
            h,
            Hist::seq(
                Hist::Ev(Event::nullary("a")),
                Hist::seq(Hist::Ev(Event::nullary("b")), Hist::Ev(Event::nullary("c")))
            )
        );
    }

    #[test]
    fn parses_choices() {
        let h = parse_hist("ext[a -> eps | b -> #x]").unwrap();
        assert_eq!(
            h,
            Hist::ext([
                (Channel::new("a"), Hist::Eps),
                (Channel::new("b"), Hist::Ev(Event::nullary("x")))
            ])
        );
        let h = parse_hist("int[a -> eps]").unwrap();
        assert_eq!(h, Hist::int_([(Channel::new("a"), Hist::Eps)]));
    }

    #[test]
    fn parses_mu_extends_right() {
        let h = parse_hist("mu h. int[a -> #x; h]").unwrap();
        assert_eq!(
            h,
            Hist::mu(
                "h",
                Hist::int_([(
                    Channel::new("a"),
                    Hist::seq(Hist::Ev(Event::nullary("x")), Hist::var("h"))
                )])
            )
        );
    }

    #[test]
    fn parses_request_with_and_without_policy() {
        let h = parse_hist("open 3 { eps }").unwrap();
        assert_eq!(h, Hist::req(3u32, None, Hist::Eps));
        let h = parse_hist("open 1 phi guard({s1}, 45, 100) { eps }").unwrap();
        let expected = Hist::req(
            1u32,
            Some(PolicyRef::new(
                "guard",
                [
                    ParamValue::set(["s1"]),
                    ParamValue::int(45),
                    ParamValue::int(100),
                ],
            )),
            Hist::Eps,
        );
        assert_eq!(h, expected);
    }

    #[test]
    fn parses_frame() {
        let h = parse_hist("frame noRW [ #read; #write ]").unwrap();
        assert_eq!(
            h,
            Hist::framed(
                PolicyRef::nullary("noRW"),
                Hist::seq(
                    Hist::Ev(Event::nullary("read")),
                    Hist::Ev(Event::nullary("write"))
                )
            )
        );
    }

    #[test]
    fn parses_parenthesised_seq_in_branch() {
        let h = parse_hist("ext[a -> (#x; #y) | b -> eps]").unwrap();
        match h {
            Hist::Ext(bs) => {
                assert_eq!(bs.len(), 2);
                assert_eq!(
                    bs[0].1,
                    Hist::seq(Hist::Ev(Event::nullary("x")), Hist::Ev(Event::nullary("y")))
                );
            }
            other => panic!("expected Ext, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let h = parse_hist("// leading comment\n#a; // trailing\n#b").unwrap();
        assert_eq!(
            h,
            Hist::seq(Hist::Ev(Event::nullary("a")), Hist::Ev(Event::nullary("b")))
        );
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_hist("#a; ?").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn error_on_trailing_tokens() {
        let err = parse_hist("eps eps").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn error_on_bad_branch_separator() {
        let err = parse_hist("ext[a -> eps , b -> eps]").unwrap_err();
        assert!(err.message.contains("`|` or `]`"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let sources = [
            "eps",
            "#sgn(1); #price(45); #rating(80)",
            "ext[idc -> int[bok -> eps | una -> eps]]",
            "mu h. int[work -> #step(1); h | quit -> eps]",
            "open 1 phi guard({s1},45,100) { int[req -> eps]; ext[cobo -> int[pay -> eps] | noav -> eps] }",
            "frame noRW [ #read; #write ]",
        ];
        for src in sources {
            let h = parse_hist(src).unwrap();
            let printed = h.to_string();
            let reparsed = parse_hist(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(reparsed, h, "round trip failed for `{src}`");
        }
    }
}
