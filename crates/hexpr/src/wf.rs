//! Well-formedness of history expressions.
//!
//! Definition 1 restricts the shape of expressions so that their
//! transition systems are finite state (a fact both the validity model
//! checking of §3.1 and the product construction of §4 rely on):
//!
//! * recursion `μh.H` is **tail** recursion **guarded** by communication
//!   actions `ā` or `a`;
//! * internal choices are guarded by outputs and external choices by
//!   inputs (our AST encodes this by construction, but choices must be
//!   non-empty and free of duplicate guards);
//! * expressions are closed;
//! * request identifiers are unique (a plan maps each `r` to one service);
//! * the run-time residuals `close_{r,φ}` / `⌟φ` do not appear in source
//!   programs.

use std::fmt;

use crate::hist::Hist;
use crate::ident::{Channel, RecVar, RequestId};
use crate::requests::has_duplicate_ids;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfError {
    /// The expression has a free recursion variable.
    FreeVariable(RecVar),
    /// A recursion variable occurs in non-tail position: something is
    /// sequenced after it, or it sits inside a request or framing body
    /// (whose implicit `close`/`⌟φ` would follow it).
    NonTailRecursion(RecVar),
    /// A recursion variable occurs unguarded: no communication prefix
    /// separates it from its binder (e.g. `μh.h`).
    UnguardedRecursion(RecVar),
    /// A choice has no branches.
    EmptyChoice,
    /// A choice has two branches guarded by the same channel.
    DuplicateGuard(Channel),
    /// Two requests share an identifier.
    DuplicateRequestId,
    /// A pending `close_{r,φ}` residual appears in a source expression.
    ResidualClose(RequestId),
    /// A pending `⌟φ` residual appears in a source expression.
    ResidualFrameClose,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::FreeVariable(v) => write!(f, "free recursion variable {v}"),
            WfError::NonTailRecursion(v) => {
                write!(f, "recursion variable {v} occurs in non-tail position")
            }
            WfError::UnguardedRecursion(v) => {
                write!(
                    f,
                    "recursion variable {v} is not guarded by a communication"
                )
            }
            WfError::EmptyChoice => write!(f, "choice with no branches"),
            WfError::DuplicateGuard(c) => {
                write!(f, "two branches of a choice are guarded by channel {c}")
            }
            WfError::DuplicateRequestId => write!(f, "duplicate request identifier"),
            WfError::ResidualClose(r) => {
                write!(
                    f,
                    "run-time residual close token for {r} in source expression"
                )
            }
            WfError::ResidualFrameClose => {
                write!(f, "run-time residual closing frame in source expression")
            }
        }
    }
}

impl std::error::Error for WfError {}

/// Checks that `h` is a well-formed source history expression.
///
/// # Errors
///
/// Returns the first [`WfError`] found, if any.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::{parse_hist, wf};
///
/// let good = parse_hist("mu h. int[a -> h | stop -> eps]").unwrap();
/// assert!(wf::check(&good).is_ok());
///
/// let bad = parse_hist("mu h. h").unwrap(); // unguarded
/// assert!(wf::check(&bad).is_err());
/// ```
pub fn check(h: &Hist) -> Result<(), WfError> {
    let errors = check_all(h);
    match errors.into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Collects **all** well-formedness violations of `h`.
pub fn check_all(h: &Hist) -> Vec<WfError> {
    let mut errors = Vec::new();
    if let Some(v) = h.free_vars().into_iter().next() {
        errors.push(WfError::FreeVariable(v));
    }
    if has_duplicate_ids(h) {
        errors.push(WfError::DuplicateRequestId);
    }
    walk(h, &mut Vec::new(), &mut errors);
    errors
}

/// Tracking for one enclosing `μ` binder while walking the body.
///
/// `tail` is *relative to this binder*: a recursion variable may only
/// occur where nothing of its own loop body follows it. Entering a
/// request or framing body (whose implicit `close`/`⌟φ` would follow)
/// or the left of a `·` clears the flag for every *enclosing* binder —
/// but a `μ` opened afterwards starts with a fresh tail, so a loop
/// wholly inside a request body is perfectly fine.
struct MuFrame {
    var: RecVar,
    guarded: bool,
    tail: bool,
}

/// Runs `f` with the `tail` flag of every currently open binder cleared,
/// restoring the flags afterwards.
fn with_tails_cleared<F: FnOnce(&mut Vec<MuFrame>)>(mus: &mut Vec<MuFrame>, f: F) {
    let saved: Vec<bool> = mus.iter().map(|m| m.tail).collect();
    for m in mus.iter_mut() {
        m.tail = false;
    }
    f(mus);
    for (m, s) in mus.iter_mut().zip(saved) {
        m.tail = s;
    }
}

fn walk(h: &Hist, mus: &mut Vec<MuFrame>, errors: &mut Vec<WfError>) {
    match h {
        Hist::Eps | Hist::Ev(_) => {}
        Hist::CloseTok(r, _) => errors.push(WfError::ResidualClose(*r)),
        Hist::FrameCloseTok(_) => errors.push(WfError::ResidualFrameClose),
        Hist::Var(v) => {
            // Find the innermost binder for v (if none, FreeVariable was
            // already reported at the top level).
            if let Some(frame) = mus.iter().rev().find(|f| &f.var == v) {
                if !frame.tail {
                    errors.push(WfError::NonTailRecursion(v.clone()));
                }
                if !frame.guarded {
                    errors.push(WfError::UnguardedRecursion(v.clone()));
                }
            }
        }
        Hist::Mu(v, body) => {
            mus.push(MuFrame {
                var: v.clone(),
                guarded: false,
                tail: true,
            });
            walk(body, mus, errors);
            mus.pop();
        }
        Hist::Ext(bs) | Hist::Int(bs) => {
            if bs.is_empty() {
                errors.push(WfError::EmptyChoice);
            }
            let mut seen: Vec<&Channel> = Vec::new();
            for (c, _) in bs {
                if seen.contains(&c) {
                    errors.push(WfError::DuplicateGuard(c.clone()));
                }
                seen.push(c);
            }
            // The channel prefix guards every enclosing recursion.
            let saved: Vec<bool> = mus.iter().map(|f| f.guarded).collect();
            for f in mus.iter_mut() {
                f.guarded = true;
            }
            for (_, cont) in bs {
                walk(cont, mus, errors);
            }
            for (f, s) in mus.iter_mut().zip(saved) {
                f.guarded = s;
            }
        }
        Hist::Seq(a, b) => {
            with_tails_cleared(mus, |mus| walk(a, mus, errors));
            walk(b, mus, errors);
        }
        Hist::Req { body, .. } | Hist::Framed(_, body) => {
            // The implicit close/⌟φ follows the body: occurrences of
            // *enclosing* recursion variables inside are non-tail.
            with_tails_cleared(mus, |mus| walk(body, mus, errors));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, PolicyRef};

    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }
    fn ev(name: &str) -> Hist {
        Hist::ev(Event::nullary(name))
    }

    #[test]
    fn straight_line_is_wf() {
        let h = Hist::seq(ev("a"), ev("b"));
        assert_eq!(check(&h), Ok(()));
    }

    #[test]
    fn guarded_tail_recursion_is_wf() {
        // μh. (ā.h ⊕ stop.ε)
        let h = Hist::mu(
            "h",
            Hist::int_([(ch("a"), Hist::var("h")), (ch("stop"), Hist::Eps)]),
        );
        assert_eq!(check(&h), Ok(()));
    }

    #[test]
    fn unguarded_recursion_rejected() {
        let h = Hist::mu("h", Hist::var("h"));
        assert_eq!(
            check(&h),
            Err(WfError::UnguardedRecursion(RecVar::new("h")))
        );
    }

    #[test]
    fn event_guard_is_not_a_communication_guard() {
        // μh. α·h — guarded only by an event: rejected.
        let h = Hist::mu("h", Hist::seq(ev("a"), Hist::var("h")));
        // The variable is in tail position but not comm-guarded.
        assert_eq!(
            check(&h),
            Err(WfError::UnguardedRecursion(RecVar::new("h")))
        );
    }

    #[test]
    fn non_tail_recursion_rejected() {
        // μh. ā.(h·α) — something after h.
        let h = Hist::mu(
            "h",
            Hist::int_([(ch("a"), Hist::seq(Hist::var("h"), ev("x")))]),
        );
        assert_eq!(check(&h), Err(WfError::NonTailRecursion(RecVar::new("h"))));
    }

    #[test]
    fn recursion_inside_request_body_rejected() {
        // μh. ā.open_r { b̄.h } — h is followed by the implicit close.
        let h = Hist::mu(
            "h",
            Hist::int_([(
                ch("a"),
                Hist::req(1u32, None, Hist::int_([(ch("b"), Hist::var("h"))])),
            )]),
        );
        assert_eq!(check(&h), Err(WfError::NonTailRecursion(RecVar::new("h"))));
    }

    #[test]
    fn recursion_inside_framing_rejected() {
        let h = Hist::mu(
            "h",
            Hist::int_([(
                ch("a"),
                Hist::framed(PolicyRef::nullary("phi"), Hist::var("h")),
            )]),
        );
        assert_eq!(check(&h), Err(WfError::NonTailRecursion(RecVar::new("h"))));
    }

    #[test]
    fn free_variable_rejected() {
        let h = Hist::var("k");
        assert_eq!(check(&h), Err(WfError::FreeVariable(RecVar::new("k"))));
    }

    #[test]
    fn empty_choice_rejected() {
        let h = Hist::Ext(vec![]);
        assert_eq!(check(&h), Err(WfError::EmptyChoice));
    }

    #[test]
    fn duplicate_guard_rejected() {
        let h = Hist::int_([(ch("a"), Hist::Eps), (ch("a"), ev("x"))]);
        assert_eq!(check(&h), Err(WfError::DuplicateGuard(ch("a"))));
    }

    #[test]
    fn duplicate_request_ids_rejected() {
        let h = Hist::seq(
            Hist::req(1u32, None, Hist::Eps),
            Hist::req(1u32, None, Hist::Eps),
        );
        assert_eq!(check(&h), Err(WfError::DuplicateRequestId));
    }

    #[test]
    fn residual_tokens_rejected() {
        assert_eq!(
            check(&Hist::CloseTok(RequestId::new(1), None)),
            Err(WfError::ResidualClose(RequestId::new(1)))
        );
        assert_eq!(
            check(&Hist::FrameCloseTok(PolicyRef::nullary("phi"))),
            Err(WfError::ResidualFrameClose)
        );
    }

    #[test]
    fn nested_mu_with_outer_tail_jump_is_wf() {
        // μh. ā. μk. (b̄.k ⊕ c̄.h): both jumps are tail and comm-guarded.
        let h = Hist::mu(
            "h",
            Hist::int_([(
                ch("a"),
                Hist::mu(
                    "k",
                    Hist::int_([(ch("b"), Hist::var("k")), (ch("c"), Hist::var("h"))]),
                ),
            )]),
        );
        assert_eq!(check(&h), Ok(()));
        // And its LTS really is finite.
        let lts = crate::lts::HistLts::build(&h).unwrap();
        assert!(lts.len() <= 4);
    }

    #[test]
    fn loop_wholly_inside_request_body_is_wf() {
        // open_r { μh. (ā.h ⊕ stop.ε) }: the loop is self-contained; the
        // implicit close follows the *whole loop*, not the jump.
        let h = Hist::req(
            1u32,
            None,
            Hist::mu(
                "h",
                Hist::int_([(ch("a"), Hist::var("h")), (ch("stop"), Hist::Eps)]),
            ),
        );
        assert_eq!(check(&h), Ok(()));
        // And its LTS stays finite.
        let lts = crate::lts::HistLts::build(&h).unwrap();
        assert!(lts.len() <= 5);

        // Same for a framing.
        let h = Hist::framed(
            PolicyRef::nullary("phi"),
            Hist::mu(
                "h",
                Hist::int_([(ch("a"), Hist::var("h")), (ch("stop"), Hist::Eps)]),
            ),
        );
        assert_eq!(check(&h), Ok(()));
    }

    #[test]
    fn check_all_collects_multiple_errors() {
        let h = Hist::seq(
            Hist::Ext(vec![]),
            Hist::seq(
                Hist::req(1u32, None, Hist::Eps),
                Hist::req(1u32, None, Hist::Eps),
            ),
        );
        let errs = check_all(&h);
        assert!(errs.contains(&WfError::EmptyChoice));
        assert!(errs.contains(&WfError::DuplicateRequestId));
    }

    #[test]
    fn paper_fig2_services_are_wf() {
        // C1 = open_{1,φ1} (Req̄ · (cobo.pay + noav)) close_{1,φ1}
        let phi1 = PolicyRef::nullary("phi1");
        let c1 = Hist::req(
            1u32,
            Some(phi1),
            Hist::seq(
                Hist::int_([(ch("req"), Hist::Eps)]),
                Hist::ext([
                    (ch("cobo"), Hist::ext([(ch("pay"), Hist::Eps)])),
                    (ch("noav"), Hist::Eps),
                ]),
            ),
        );
        assert_eq!(check(&c1), Ok(()));
    }
}
