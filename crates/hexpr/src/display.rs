//! Pretty printing of history expressions in the concrete syntax accepted
//! by [`crate::parser::parse_hist`], so `parse ∘ display = id`.

use std::fmt;

use crate::hist::Hist;

impl fmt::Display for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_hist(self, f)
    }
}

fn write_hist(h: &Hist, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match h {
        Hist::Eps => write!(f, "eps"),
        Hist::Var(v) => write!(f, "{v}"),
        Hist::Mu(v, body) => write!(f, "mu {v}. {body}"),
        Hist::Ev(e) => write!(f, "{e}"),
        Hist::Ext(bs) => write_choice(f, "ext", bs),
        Hist::Int(bs) => write_choice(f, "int", bs),
        Hist::Seq(a, b) => {
            // `μ` extends as far right as possible, so only a recursion on
            // the *left* of `;` needs brackets.
            write_seq_operand(a, f)?;
            write!(f, "; ")?;
            write_hist(b, f)
        }
        Hist::Req { id, policy, body } => {
            write!(f, "open {}", id.index())?;
            if let Some(p) = policy {
                write!(f, " phi {p}")?;
            }
            write!(f, " {{ {body} }}")
        }
        Hist::Framed(p, body) => write!(f, "frame {p} [ {body} ]"),
        Hist::CloseTok(r, Some(p)) => write!(f, "<close {} {p}>", r.index()),
        Hist::CloseTok(r, None) => write!(f, "<close {}>", r.index()),
        Hist::FrameCloseTok(p) => write!(f, "<endframe {p}>"),
    }
}

/// `μ` binds loosely, so a recursion on the left of a `;` needs brackets.
fn write_seq_operand(h: &Hist, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match h {
        Hist::Mu(..) => write!(f, "({h})"),
        _ => write_hist(h, f),
    }
}

fn write_choice(
    f: &mut fmt::Formatter<'_>,
    kw: &str,
    bs: &[(crate::ident::Channel, Hist)],
) -> fmt::Result {
    write!(f, "{kw}[")?;
    for (i, (c, cont)) in bs.iter().enumerate() {
        if i > 0 {
            write!(f, " | ")?;
        }
        write!(f, "{c} -> {cont}")?;
    }
    write!(f, "]")
}

#[cfg(test)]
mod tests {
    use crate::event::{Event, PolicyRef};
    use crate::hist::Hist;
    use crate::ident::Channel;
    use crate::value::ParamValue;

    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }

    #[test]
    fn displays_eps_and_events() {
        assert_eq!(Hist::Eps.to_string(), "eps");
        assert_eq!(Hist::ev(Event::new("sgn", [1i64])).to_string(), "#sgn(1)");
    }

    #[test]
    fn displays_sequence() {
        let h = Hist::seq(Hist::ev(Event::nullary("a")), Hist::ev(Event::nullary("b")));
        assert_eq!(h.to_string(), "#a; #b");
    }

    #[test]
    fn displays_choices() {
        let h = Hist::ext([(ch("a"), Hist::Eps), (ch("b"), Hist::Eps)]);
        assert_eq!(h.to_string(), "ext[a -> eps | b -> eps]");
        let h = Hist::int_([(ch("a"), Hist::Eps)]);
        assert_eq!(h.to_string(), "int[a -> eps]");
    }

    #[test]
    fn displays_mu_with_brackets_in_seq() {
        let m = Hist::mu("h", Hist::int_([(ch("a"), Hist::var("h"))]));
        let h = Hist::seq(Hist::ev(Event::nullary("x")), m.clone());
        assert_eq!(h.to_string(), "#x; mu h. int[a -> h]");
        let h2 = Hist::Seq(Box::new(m), Box::new(Hist::ev(Event::nullary("x"))));
        assert_eq!(h2.to_string(), "(mu h. int[a -> h]); #x");
    }

    #[test]
    fn displays_request_and_frame() {
        let phi = PolicyRef::new("phi", [ParamValue::int(45)]);
        let h = Hist::req(3u32, Some(phi.clone()), Hist::Eps);
        assert_eq!(h.to_string(), "open 3 phi phi(45) { eps }");
        let h = Hist::req(3u32, None, Hist::Eps);
        assert_eq!(h.to_string(), "open 3 { eps }");
        let h = Hist::framed(phi, Hist::Eps);
        assert_eq!(h.to_string(), "frame phi(45) [ eps ]");
    }

    #[test]
    fn displays_residuals() {
        use crate::ident::RequestId;
        assert_eq!(
            Hist::CloseTok(RequestId::new(1), None).to_string(),
            "<close 1>"
        );
        assert_eq!(
            Hist::FrameCloseTok(PolicyRef::nullary("p")).to_string(),
            "<endframe p>"
        );
    }
}
