//! Observable ready sets (Definition 3 of the paper).
//!
//! A ready set `S ⊆ Comm` collects the communication actions a contract
//! is ready to execute: an internal choice offers **one output at a
//! time** (each branch is a distinct ready set), while an external choice
//! offers **all its inputs at once** (a single ready set).

use std::collections::BTreeSet;

use crate::hist::Hist;
use crate::ident::Channel;
use crate::label::Dir;

/// One observable ready set: a set of directed channel actions.
pub type ReadySet = BTreeSet<(Channel, Dir)>;

/// All observable ready sets of `h`: the finite set `{S | h ⇓ S}`.
///
/// Defined on arbitrary history expressions by looking through the
/// non-communication constructs exactly as the projection `H!` does, so
/// `ready_sets(h) == ready_sets(project(h))`.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::{parse_hist, ready::ready_sets};
///
/// // (a̅ ⊕ b̅) has two ready sets {a̅} and {b̅};
/// let internal = parse_hist("int[a -> eps | b -> eps]").unwrap();
/// assert_eq!(ready_sets(&internal).len(), 2);
///
/// // (a + b) has the single ready set {a, b}.
/// let external = parse_hist("ext[a -> eps | b -> eps]").unwrap();
/// assert_eq!(ready_sets(&external).len(), 1);
/// ```
pub fn ready_sets(h: &Hist) -> BTreeSet<ReadySet> {
    match h {
        // ε ⇓ ∅ and h ⇓ ∅; the silent constructs behave like their
        // (empty) projection.
        Hist::Eps
        | Hist::Var(_)
        | Hist::Ev(_)
        | Hist::Req { .. }
        | Hist::CloseTok(..)
        | Hist::FrameCloseTok(_) => singleton_empty(),
        Hist::Framed(_, body) => ready_sets(body),
        Hist::Mu(_, body) => ready_sets(body),
        Hist::Int(bs) => {
            if bs.is_empty() {
                singleton_empty()
            } else {
                bs.iter()
                    .map(|(c, _)| {
                        let mut s = ReadySet::new();
                        s.insert((c.clone(), Dir::Out));
                        s
                    })
                    .collect()
            }
        }
        Hist::Ext(bs) => {
            if bs.is_empty() {
                singleton_empty()
            } else {
                let s: ReadySet = bs.iter().map(|(c, _)| (c.clone(), Dir::In)).collect();
                BTreeSet::from([s])
            }
        }
        Hist::Seq(a, b) => {
            let mut out = BTreeSet::new();
            let sets_a = ready_sets(a);
            let mut need_b = false;
            for s in sets_a {
                if s.is_empty() {
                    need_b = true;
                } else {
                    out.insert(s);
                }
            }
            if need_b {
                out.extend(ready_sets(b));
            }
            out
        }
    }
}

/// The complement of a ready set: every action with its direction flipped
/// (`S̄ = {ā | a ∈ S}` in the paper's notation).
pub fn co_set(s: &ReadySet) -> ReadySet {
    s.iter().map(|(c, d)| (c.clone(), d.co())).collect()
}

/// Returns `true` if the two ready sets share a complementary pair:
/// `C ∩ S̄ ≠ ∅`.
pub fn has_handshake(c: &ReadySet, s: &ReadySet) -> bool {
    c.iter()
        .any(|(chan, dir)| s.contains(&(chan.clone(), dir.co())))
}

fn singleton_empty() -> BTreeSet<ReadySet> {
    BTreeSet::from([ReadySet::new()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }
    fn ev(name: &str) -> Hist {
        Hist::ev(Event::nullary(name))
    }

    fn rs(items: &[(&str, Dir)]) -> ReadySet {
        items.iter().map(|(c, d)| (ch(c), *d)).collect()
    }

    #[test]
    fn eps_has_empty_ready_set() {
        let sets = ready_sets(&Hist::Eps);
        assert_eq!(sets, BTreeSet::from([ReadySet::new()]));
    }

    #[test]
    fn internal_choice_one_output_at_a_time() {
        // (ā₁ ⊕ ā₂) ⇓ {ā₁} and ⇓ {ā₂}  — the paper's first example.
        let h = Hist::int_([(ch("a1"), Hist::Eps), (ch("a2"), Hist::Eps)]);
        let sets = ready_sets(&h);
        assert_eq!(
            sets,
            BTreeSet::from([rs(&[("a1", Dir::Out)]), rs(&[("a2", Dir::Out)])])
        );
    }

    #[test]
    fn external_choice_all_inputs_at_once() {
        // (a₁ + a₂) ⇓ {a₁, a₂}.
        let h = Hist::ext([(ch("a1"), Hist::Eps), (ch("a2"), Hist::Eps)]);
        let sets = ready_sets(&h);
        assert_eq!(
            sets,
            BTreeSet::from([rs(&[("a1", Dir::In), ("a2", Dir::In)])])
        );
    }

    #[test]
    fn recursion_example_from_paper() {
        // H = μh.(ā₁ ⊕ ā₂)·b·h, then H ⇓ {ā₁} and H ⇓ {ā₂}.
        let h = Hist::mu(
            "h",
            Hist::seq(
                Hist::int_([(ch("a1"), Hist::Eps), (ch("a2"), Hist::Eps)]),
                Hist::seq(Hist::ext([(ch("b"), Hist::Eps)]), Hist::var("h")),
            ),
        );
        let sets = ready_sets(&h);
        assert_eq!(
            sets,
            BTreeSet::from([rs(&[("a1", Dir::Out)]), rs(&[("a2", Dir::Out)])])
        );
    }

    #[test]
    fn seq_skips_empty_prefix() {
        // ε·(a + b)·(d ⊕ e) ⇓ {a, b}  — the paper's last example.
        let h = Hist::seq(
            Hist::Eps,
            Hist::seq(
                Hist::ext([(ch("a"), Hist::Eps), (ch("b"), Hist::Eps)]),
                Hist::int_([(ch("d"), Hist::Eps), (ch("e"), Hist::Eps)]),
            ),
        );
        let sets = ready_sets(&h);
        assert_eq!(
            sets,
            BTreeSet::from([rs(&[("a", Dir::In), ("b", Dir::In)])])
        );
    }

    #[test]
    fn events_are_transparent() {
        let h = Hist::seq(ev("x"), Hist::ext([(ch("a"), Hist::Eps)]));
        assert_eq!(ready_sets(&h), BTreeSet::from([rs(&[("a", Dir::In)])]));
    }

    #[test]
    fn co_set_flips_directions() {
        let s = rs(&[("a", Dir::In), ("b", Dir::Out)]);
        assert_eq!(co_set(&s), rs(&[("a", Dir::Out), ("b", Dir::In)]));
    }

    #[test]
    fn handshake_detection() {
        let c = rs(&[("bok", Dir::Out)]);
        let s = rs(&[("bok", Dir::In), ("una", Dir::In)]);
        assert!(has_handshake(&c, &s));
        let del = rs(&[("del", Dir::Out)]);
        assert!(!has_handshake(&del, &s));
    }

    #[test]
    fn ready_sets_commute_with_projection() {
        use crate::projection::project;
        let h = Hist::seq(
            ev("sgn"),
            Hist::framed(
                crate::event::PolicyRef::nullary("phi"),
                Hist::ext([(
                    ch("idc"),
                    Hist::int_([(ch("bok"), Hist::Eps), (ch("una"), Hist::Eps)]),
                )]),
            ),
        );
        assert_eq!(ready_sets(&h), ready_sets(&project(&h)));
    }
}
