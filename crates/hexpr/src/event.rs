//! Security-relevant events `α ∈ Ev` and policy references `φ ∈ Pol`.

use std::fmt;

use crate::ident::EventName;
use crate::value::{ParamValue, Value};

/// A security-relevant event `α`, e.g. `α_sgn(1)` or `α_price(45)`.
///
/// Events are *access events*: they record security-relevant operations on
/// resources and are logged into execution histories. An event has a name
/// and a (possibly empty) list of ground arguments.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    name: EventName,
    args: Vec<Value>,
}

impl Event {
    /// Creates an event with the given name and arguments.
    pub fn new<I, V>(name: impl Into<EventName>, args: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Event {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates an event with no arguments.
    pub fn nullary(name: impl Into<EventName>) -> Self {
        Event {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// The event name.
    pub fn name(&self) -> &EventName {
        &self.name
    }

    /// The ground arguments of the event.
    pub fn args(&self) -> &[Value] {
        &self.args
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.name)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A reference to an *instantiated* policy `φ(v̄)`.
///
/// Policies are parametric usage automata (defined in the `sufs-policy`
/// crate); a [`PolicyRef`] names one and fixes its actual parameters, e.g.
/// `φ({s1}, 45, 100)` in the paper's motivating example. Framing events
/// `⌞φ`/`⌟φ` and session openings `open_{r,φ}` carry policy references.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolicyRef {
    name: String,
    args: Vec<ParamValue>,
}

impl PolicyRef {
    /// Creates a policy reference with the given actual parameters.
    pub fn new<I>(name: impl Into<String>, args: I) -> Self
    where
        I: IntoIterator<Item = ParamValue>,
    {
        PolicyRef {
            name: name.into(),
            args: args.into_iter().collect(),
        }
    }

    /// Creates a reference to a parameterless policy.
    pub fn nullary(name: impl Into<String>) -> Self {
        PolicyRef {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// The policy (automaton) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The actual parameters of the instantiation.
    pub fn args(&self) -> &[ParamValue] {
        &self.args
    }

    /// A stable structural fingerprint of the reference (see
    /// [`crate::shash`]), for deterministic verification-cache keys.
    pub fn structural_hash(&self) -> u64 {
        crate::shash::stable_hash_of(self)
    }
}

impl fmt::Display for PolicyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_display() {
        let e = Event::new("sgn", [Value::Int(1)]);
        assert_eq!(e.to_string(), "#sgn(1)");
        assert_eq!(Event::nullary("tick").to_string(), "#tick");
    }

    #[test]
    fn event_accessors() {
        let e = Event::new("price", [45i64]);
        assert_eq!(e.name().as_str(), "price");
        assert_eq!(e.args(), &[Value::Int(45)]);
    }

    #[test]
    fn policy_ref_display() {
        let p = PolicyRef::new(
            "phi",
            [
                ParamValue::set(["s1"]),
                ParamValue::int(45),
                ParamValue::int(100),
            ],
        );
        assert_eq!(p.to_string(), "phi({s1},45,100)");
        assert_eq!(PolicyRef::nullary("top").to_string(), "top");
    }

    #[test]
    fn policy_ref_identity_includes_args() {
        let a = PolicyRef::new("phi", [ParamValue::int(1)]);
        let b = PolicyRef::new("phi", [ParamValue::int(2)]);
        assert_ne!(a, b);
        assert_eq!(a.name(), b.name());
    }
}
