//! The stand-alone operational semantics of history expressions.
//!
//! Implements the rules of §3 of the paper:
//!
//! ```text
//! (I-Choice)  ⊕ᵢ āᵢ.Hᵢ ──āᵢ──▸ Hᵢ
//! (E-Choice)  Σᵢ aᵢ.Hᵢ ──aᵢ──▸ Hᵢ
//! (α Acc)     α ──α──▸ ε
//! (S-Open)    open_{r,φ}.H.close_{r,φ} ──open_{r,φ}──▸ H·close_{r,φ}
//! (P-Open)    φ⟦H⟧ ──⌞φ──▸ H·⌟φ
//! (Conc)      H ──λ──▸ H'  ⟹  H·H″ ──λ──▸ H'·H″
//! (Rec)       H{μh.H/h} ──λ──▸ H'  ⟹  μh.H ──λ──▸ H'
//! ```
//!
//! plus the two rules for the run-time residuals (a pending
//! `close_{r,φ}` fires `close_{r,φ}` and a pending `⌟φ` fires `⌟φ`),
//! which the paper leaves implicit in `H·close_{r,φ}` and `H·⌟φ`.

use crate::hist::Hist;
use crate::label::{Dir, Label};

/// All single-step transitions `H ──λ──▸ H'` of a history expression.
///
/// The resulting expressions are canonical (see [`Hist::seq`]), so
/// repeated expansion reaches finitely many states for well-formed
/// expressions.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::{parse_hist, semantics::successors, Label};
///
/// let h = parse_hist("int[a -> eps | b -> eps]").unwrap();
/// let succ = successors(&h);
/// assert_eq!(succ.len(), 2);
/// assert!(succ.iter().all(|(l, _)| matches!(l, Label::Chan(..))));
/// ```
pub fn successors(h: &Hist) -> Vec<(Label, Hist)> {
    let mut out = Vec::new();
    step_into(h, &mut out);
    out
}

/// Returns `true` if `h` has no transitions at all.
///
/// For well-formed expressions this coincides with `h` being `ε` or a
/// bare recursion variable (which cannot occur in closed expressions).
pub fn is_stuck(h: &Hist) -> bool {
    successors(h).is_empty()
}

fn step_into(h: &Hist, out: &mut Vec<(Label, Hist)>) {
    match h {
        Hist::Eps | Hist::Var(_) => {}
        Hist::Ev(e) => out.push((Label::Ev(e.clone()), Hist::Eps)),
        Hist::Ext(branches) => {
            for (chan, cont) in branches {
                out.push((Label::Chan(chan.clone(), Dir::In), cont.clone()));
            }
        }
        Hist::Int(branches) => {
            for (chan, cont) in branches {
                out.push((Label::Chan(chan.clone(), Dir::Out), cont.clone()));
            }
        }
        Hist::Seq(a, b) => {
            // (Conc): only the left component moves.
            let mut inner = Vec::new();
            step_into(a, &mut inner);
            for (l, a2) in inner {
                out.push((l, Hist::seq(a2, (**b).clone())));
            }
        }
        Hist::Mu(v, body) => {
            // (Rec): unfold once; canonical `seq` keeps the state space finite.
            let unfolded = body.subst(v, h);
            step_into(&unfolded, out);
        }
        Hist::Req { id, policy, body } => {
            // (S-Open)
            let cont = Hist::seq((**body).clone(), Hist::CloseTok(*id, policy.clone()));
            out.push((Label::Open(*id, policy.clone()), cont));
        }
        Hist::Framed(p, body) => {
            // (P-Open)
            let cont = Hist::seq((**body).clone(), Hist::FrameCloseTok(p.clone()));
            out.push((Label::FrameOpen(p.clone()), cont));
        }
        Hist::CloseTok(r, p) => out.push((Label::Close(*r, p.clone()), Hist::Eps)),
        Hist::FrameCloseTok(p) => out.push((Label::FrameClose(p.clone()), Hist::Eps)),
    }
}

/// The trace semantics of an expression up to `max_len` steps: every
/// sequence of labels along maximal paths of length ≤ `max_len`.
///
/// Intended for tests and small examples; the LTS in [`crate::lts`] is the
/// scalable representation.
pub fn traces(h: &Hist, max_len: usize) -> Vec<Vec<Label>> {
    let mut done = Vec::new();
    let mut frontier = vec![(h.clone(), Vec::new())];
    while let Some((state, trace)) = frontier.pop() {
        if trace.len() >= max_len {
            done.push(trace);
            continue;
        }
        let succ = successors(&state);
        if succ.is_empty() {
            done.push(trace);
            continue;
        }
        for (l, s2) in succ {
            let mut t2 = trace.clone();
            t2.push(l);
            frontier.push((s2, t2));
        }
    }
    done.sort();
    done.dedup();
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, PolicyRef};
    use crate::ident::{Channel, RequestId};

    fn ev(name: &str) -> Hist {
        Hist::ev(Event::nullary(name))
    }
    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }

    #[test]
    fn event_fires_once() {
        let h = ev("a");
        let succ = successors(&h);
        assert_eq!(succ, vec![(Label::Ev(Event::nullary("a")), Hist::Eps)]);
        assert!(is_stuck(&Hist::Eps));
    }

    #[test]
    fn internal_choice_offers_each_output() {
        let h = Hist::int_([(ch("a"), Hist::Eps), (ch("b"), ev("x"))]);
        let succ = successors(&h);
        assert_eq!(succ.len(), 2);
        assert_eq!(succ[0].0, Label::output("a"));
        assert_eq!(succ[1].0, Label::output("b"));
        assert_eq!(succ[1].1, ev("x"));
    }

    #[test]
    fn external_choice_offers_each_input() {
        let h = Hist::ext([(ch("a"), Hist::Eps), (ch("b"), Hist::Eps)]);
        let labels: Vec<_> = successors(&h).into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec![Label::input("a"), Label::input("b")]);
    }

    #[test]
    fn seq_only_left_moves() {
        let h = Hist::seq(ev("a"), ev("b"));
        let succ = successors(&h);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].0, Label::Ev(Event::nullary("a")));
        assert_eq!(succ[0].1, ev("b"));
    }

    #[test]
    fn s_open_leaves_close_pending() {
        let h = Hist::req(1u32, None, ev("a"));
        let succ = successors(&h);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].0, Label::Open(RequestId::new(1), None));
        // continuation: a · close_tok
        let (l2, h2) = &successors(&succ[0].1)[0];
        assert_eq!(*l2, Label::Ev(Event::nullary("a")));
        let (l3, h3) = &successors(h2)[0];
        assert_eq!(*l3, Label::Close(RequestId::new(1), None));
        assert!(h3.is_eps());
    }

    #[test]
    fn p_open_leaves_frame_close_pending() {
        let phi = PolicyRef::nullary("phi");
        let h = Hist::framed(phi.clone(), ev("a"));
        let succ = successors(&h);
        assert_eq!(succ[0].0, Label::FrameOpen(phi.clone()));
        let trace: Vec<_> = traces(&h, 10);
        assert_eq!(
            trace,
            vec![vec![
                Label::FrameOpen(phi.clone()),
                Label::Ev(Event::nullary("a")),
                Label::FrameClose(phi),
            ]]
        );
    }

    #[test]
    fn rec_unfolds_tail_recursion() {
        // μh. ā.h  — infinite loop of outputs.
        let h = Hist::mu("h", Hist::int_([(ch("a"), Hist::var("h"))]));
        let succ = successors(&h);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].0, Label::output("a"));
        // The successor is the recursion itself (canonical form).
        assert_eq!(succ[0].1, h);
    }

    #[test]
    fn rec_with_prefix_returns_to_loop_head() {
        // μh. (ā ⊕ b̄)·c̄·h
        let body = Hist::seq(
            Hist::int_([(ch("a"), Hist::Eps), (ch("b"), Hist::Eps)]),
            Hist::seq(Hist::int_([(ch("c"), Hist::Eps)]), Hist::var("h")),
        );
        let h = Hist::mu("h", body);
        let succ = successors(&h);
        assert_eq!(succ.len(), 2);
        // after ā then c̄ we are back at the loop head
        let after_a = &succ[0].1;
        let after_c = &successors(after_a)[0].1;
        assert_eq!(*after_c, h);
    }

    #[test]
    fn traces_of_paper_hotel_service() {
        // S1 = α_sgn(1)·α_p(45)·α_ta(80) · idc.(bok ⊕ una)
        let s1 = Hist::seq_all([
            Hist::ev(Event::new("sgn", [1i64])),
            Hist::ev(Event::new("p", [45i64])),
            Hist::ev(Event::new("ta", [80i64])),
            Hist::ext([(
                ch("idc"),
                Hist::int_([(ch("bok"), Hist::Eps), (ch("una"), Hist::Eps)]),
            )]),
        ]);
        let ts = traces(&s1, 10);
        assert_eq!(ts.len(), 2); // bok or una
        for t in &ts {
            assert_eq!(t.len(), 5);
            assert_eq!(t[3], Label::input("idc"));
        }
    }
}
