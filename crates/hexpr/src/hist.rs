//! Abstract syntax of history expressions (Definition 1) and structural
//! operations: canonicalisation, substitution, free variables.

use std::collections::BTreeSet;

use crate::event::{Event, PolicyRef};
use crate::ident::{Channel, RecVar, RequestId};

/// A history expression `H` (Definition 1 of the paper).
///
/// ```text
/// H ::= ε | h | μh.H | Σᵢ aᵢ.Hᵢ | ⊕ᵢ āᵢ.Hᵢ | α | H·H
///     | open_{r,φ} H close_{r,φ} | φ⟦H⟧
/// ```
///
/// Two extra *run-time residuals* appear while an expression executes and
/// are therefore part of the state syntax, exactly as in the paper's
/// operational rules:
///
/// * [`Hist::CloseTok`] — the pending `close_{r,φ}` left behind by rule
///   *S-Open*: `open_{r,φ}.H.close_{r,φ} ──open──▸ H · close_{r,φ}`;
/// * [`Hist::FrameCloseTok`] — the pending `⌟φ` left behind by rule
///   *P-Open*: `φ⟦H⟧ ──⌞φ──▸ H · ⌟φ`.
///
/// The structural equivalence `ε·H ≡ H ≡ H·ε` is baked into the smart
/// constructor [`Hist::seq`], which also re-associates sequences to the
/// right so that structurally equivalent states compare equal — this is
/// what keeps the transition system of a well-formed expression finite.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Hist {
    /// The empty history expression `ε`: it cannot do anything.
    #[default]
    Eps,
    /// A recursion variable `h`.
    Var(RecVar),
    /// Tail recursion `μh.H`, guarded by communication actions.
    Mu(RecVar, Box<Hist>),
    /// A security-relevant access event `α`.
    Ev(Event),
    /// External choice `Σᵢ aᵢ.Hᵢ`: the branch is driven by the message
    /// *received*; every guard is an input.
    Ext(Vec<(Channel, Hist)>),
    /// Internal choice `⊕ᵢ āᵢ.Hᵢ`: the sender alone decides which output
    /// to fire; every guard is an output.
    Int(Vec<(Channel, Hist)>),
    /// Sequential composition `H·H'`. Build with [`Hist::seq`] to keep
    /// expressions canonical.
    Seq(Box<Hist>, Box<Hist>),
    /// A service request `open_{r,φ} H close_{r,φ}`: open a session with
    /// the service a plan selects for `r`, run `H` as the client side of
    /// the conversation, then close. `policy = None` encodes the trivial
    /// policy `∅` (no constraint imposed on the callee).
    Req {
        /// The unique request identifier `r`.
        id: RequestId,
        /// The policy imposed on the whole session, if any.
        policy: Option<PolicyRef>,
        /// The client's communication behaviour during the session.
        body: Box<Hist>,
    },
    /// A security framing `φ⟦H⟧`: while `H` runs, `φ` is enforced
    /// (history-dependently: the *whole* past history must satisfy `φ`).
    Framed(PolicyRef, Box<Hist>),
    /// Run-time residual: a pending `close_{r,φ}`.
    CloseTok(RequestId, Option<PolicyRef>),
    /// Run-time residual: a pending closing frame `⌟φ`.
    FrameCloseTok(PolicyRef),
}

impl Hist {
    /// The empty expression `ε`.
    pub fn eps() -> Hist {
        Hist::Eps
    }

    /// An access event `α`.
    pub fn ev(e: Event) -> Hist {
        Hist::Ev(e)
    }

    /// A recursion variable `h`.
    pub fn var(v: impl Into<RecVar>) -> Hist {
        Hist::Var(v.into())
    }

    /// Tail recursion `μh.H`.
    pub fn mu(v: impl Into<RecVar>, body: Hist) -> Hist {
        Hist::Mu(v.into(), Box::new(body))
    }

    /// External choice over input-guarded branches.
    pub fn ext<I>(branches: I) -> Hist
    where
        I: IntoIterator<Item = (Channel, Hist)>,
    {
        Hist::Ext(branches.into_iter().collect())
    }

    /// Internal choice over output-guarded branches.
    pub fn int_<I>(branches: I) -> Hist
    where
        I: IntoIterator<Item = (Channel, Hist)>,
    {
        Hist::Int(branches.into_iter().collect())
    }

    /// Canonicalising sequential composition: applies `ε·H ≡ H ≡ H·ε` and
    /// re-associates to the right, so `((a·b)·c)` and `(a·(b·c))` build
    /// the same value.
    pub fn seq(first: Hist, second: Hist) -> Hist {
        match (first, second) {
            (Hist::Eps, h) => h,
            (h, Hist::Eps) => h,
            (Hist::Seq(a, b), c) => Hist::seq(*a, Hist::seq(*b, c)),
            (a, b) => Hist::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Sequences a whole iterator of expressions.
    pub fn seq_all<I>(items: I) -> Hist
    where
        I: IntoIterator<Item = Hist>,
    {
        let mut items: Vec<Hist> = items.into_iter().collect();
        let mut acc = Hist::Eps;
        while let Some(h) = items.pop() {
            acc = Hist::seq(h, acc);
        }
        acc
    }

    /// A service request `open_{r,φ} H close_{r,φ}`.
    pub fn req(id: impl Into<RequestId>, policy: Option<PolicyRef>, body: Hist) -> Hist {
        Hist::Req {
            id: id.into(),
            policy,
            body: Box::new(body),
        }
    }

    /// A security framing `φ⟦H⟧`.
    pub fn framed(policy: PolicyRef, body: Hist) -> Hist {
        Hist::Framed(policy, Box::new(body))
    }

    /// Returns `true` for the terminated expression `ε`.
    pub fn is_eps(&self) -> bool {
        matches!(self, Hist::Eps)
    }

    /// A stable structural fingerprint of the expression (see
    /// [`crate::shash`]): equal expressions hash equal, and the value is
    /// reproducible run over run, so verification caches keyed on it
    /// behave deterministically.
    pub fn structural_hash(&self) -> u64 {
        crate::shash::stable_hash_of(self)
    }

    /// The set of free recursion variables.
    pub fn free_vars(&self) -> BTreeSet<RecVar> {
        let mut acc = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut acc);
        acc
    }

    fn collect_free(&self, bound: &mut Vec<RecVar>, acc: &mut BTreeSet<RecVar>) {
        match self {
            Hist::Eps | Hist::Ev(_) | Hist::CloseTok(..) | Hist::FrameCloseTok(_) => {}
            Hist::Var(v) => {
                if !bound.contains(v) {
                    acc.insert(v.clone());
                }
            }
            Hist::Mu(v, body) => {
                bound.push(v.clone());
                body.collect_free(bound, acc);
                bound.pop();
            }
            Hist::Ext(bs) | Hist::Int(bs) => {
                for (_, h) in bs {
                    h.collect_free(bound, acc);
                }
            }
            Hist::Seq(a, b) => {
                a.collect_free(bound, acc);
                b.collect_free(bound, acc);
            }
            Hist::Req { body, .. } | Hist::Framed(_, body) => body.collect_free(bound, acc),
        }
    }

    /// Returns `true` if the expression has no free recursion variables.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Capture-avoiding substitution `self{replacement/var}` used by the
    /// recursion rule: an inner `μ` binding the same variable shadows it.
    pub fn subst(&self, var: &RecVar, replacement: &Hist) -> Hist {
        match self {
            Hist::Eps | Hist::Ev(_) | Hist::CloseTok(..) | Hist::FrameCloseTok(_) => self.clone(),
            Hist::Var(v) => {
                if v == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Hist::Mu(v, body) => {
                if v == var {
                    self.clone() // shadowed
                } else {
                    Hist::Mu(v.clone(), Box::new(body.subst(var, replacement)))
                }
            }
            Hist::Ext(bs) => Hist::Ext(
                bs.iter()
                    .map(|(c, h)| (c.clone(), h.subst(var, replacement)))
                    .collect(),
            ),
            Hist::Int(bs) => Hist::Int(
                bs.iter()
                    .map(|(c, h)| (c.clone(), h.subst(var, replacement)))
                    .collect(),
            ),
            Hist::Seq(a, b) => Hist::seq(a.subst(var, replacement), b.subst(var, replacement)),
            Hist::Req { id, policy, body } => Hist::Req {
                id: *id,
                policy: policy.clone(),
                body: Box::new(body.subst(var, replacement)),
            },
            Hist::Framed(p, body) => {
                Hist::Framed(p.clone(), Box::new(body.subst(var, replacement)))
            }
        }
    }

    /// The number of syntax nodes, a rough size metric used by benches.
    pub fn size(&self) -> usize {
        match self {
            Hist::Eps
            | Hist::Var(_)
            | Hist::Ev(_)
            | Hist::CloseTok(..)
            | Hist::FrameCloseTok(_) => 1,
            Hist::Mu(_, body) | Hist::Req { body, .. } | Hist::Framed(_, body) => 1 + body.size(),
            Hist::Ext(bs) | Hist::Int(bs) => 1 + bs.iter().map(|(_, h)| h.size()).sum::<usize>(),
            Hist::Seq(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Every ground event syntactically occurring in the expression —
    /// the event alphabet of the system it describes.
    pub fn events(&self) -> BTreeSet<Event> {
        let mut acc = BTreeSet::new();
        self.collect_events(&mut acc);
        acc
    }

    fn collect_events(&self, acc: &mut BTreeSet<Event>) {
        match self {
            Hist::Eps | Hist::Var(_) | Hist::CloseTok(..) | Hist::FrameCloseTok(_) => {}
            Hist::Ev(e) => {
                acc.insert(e.clone());
            }
            Hist::Mu(_, body) | Hist::Req { body, .. } | Hist::Framed(_, body) => {
                body.collect_events(acc)
            }
            Hist::Ext(bs) | Hist::Int(bs) => {
                for (_, h) in bs {
                    h.collect_events(acc);
                }
            }
            Hist::Seq(a, b) => {
                a.collect_events(acc);
                b.collect_events(acc);
            }
        }
    }

    /// Every policy reference syntactically occurring in the expression
    /// (request annotations, framings, and run-time residuals), deduplicated
    /// in first-occurrence order.
    pub fn policy_refs(&self) -> Vec<PolicyRef> {
        let mut acc = Vec::new();
        self.collect_policy_refs(&mut acc);
        acc
    }

    fn collect_policy_refs(&self, acc: &mut Vec<PolicyRef>) {
        let push = |p: &PolicyRef, acc: &mut Vec<PolicyRef>| {
            if !acc.contains(p) {
                acc.push(p.clone());
            }
        };
        match self {
            Hist::Eps | Hist::Var(_) | Hist::Ev(_) | Hist::CloseTok(_, None) => {}
            Hist::CloseTok(_, Some(p)) | Hist::FrameCloseTok(p) => push(p, acc),
            Hist::Mu(_, body) => body.collect_policy_refs(acc),
            Hist::Req { policy, body, .. } => {
                if let Some(p) = policy {
                    push(p, acc);
                }
                body.collect_policy_refs(acc);
            }
            Hist::Framed(p, body) => {
                push(p, acc);
                body.collect_policy_refs(acc);
            }
            Hist::Ext(bs) | Hist::Int(bs) => {
                for (_, h) in bs {
                    h.collect_policy_refs(acc);
                }
            }
            Hist::Seq(a, b) => {
                a.collect_policy_refs(acc);
                b.collect_policy_refs(acc);
            }
        }
    }

    /// Every channel syntactically occurring in the expression.
    pub fn channels(&self) -> BTreeSet<Channel> {
        let mut acc = BTreeSet::new();
        self.collect_channels(&mut acc);
        acc
    }

    fn collect_channels(&self, acc: &mut BTreeSet<Channel>) {
        match self {
            Hist::Eps
            | Hist::Var(_)
            | Hist::Ev(_)
            | Hist::CloseTok(..)
            | Hist::FrameCloseTok(_) => {}
            Hist::Mu(_, body) | Hist::Req { body, .. } | Hist::Framed(_, body) => {
                body.collect_channels(acc)
            }
            Hist::Ext(bs) | Hist::Int(bs) => {
                for (c, h) in bs {
                    acc.insert(c.clone());
                    h.collect_channels(acc);
                }
            }
            Hist::Seq(a, b) => {
                a.collect_channels(acc);
                b.collect_channels(acc);
            }
        }
    }

    /// Applies the canonicalisation of [`Hist::seq`] recursively to an
    /// arbitrarily built expression. Parsed and hand-built expressions are
    /// already canonical; this is useful after generic tree surgery.
    pub fn canonicalize(&self) -> Hist {
        match self {
            Hist::Eps
            | Hist::Var(_)
            | Hist::Ev(_)
            | Hist::CloseTok(..)
            | Hist::FrameCloseTok(_) => self.clone(),
            Hist::Mu(v, body) => Hist::Mu(v.clone(), Box::new(body.canonicalize())),
            Hist::Ext(bs) => Hist::Ext(
                bs.iter()
                    .map(|(c, h)| (c.clone(), h.canonicalize()))
                    .collect(),
            ),
            Hist::Int(bs) => Hist::Int(
                bs.iter()
                    .map(|(c, h)| (c.clone(), h.canonicalize()))
                    .collect(),
            ),
            Hist::Seq(a, b) => Hist::seq(a.canonicalize(), b.canonicalize()),
            Hist::Req { id, policy, body } => Hist::Req {
                id: *id,
                policy: policy.clone(),
                body: Box::new(body.canonicalize()),
            },
            Hist::Framed(p, body) => Hist::Framed(p.clone(), Box::new(body.canonicalize())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(name: &str) -> Hist {
        Hist::ev(Event::nullary(name))
    }

    #[test]
    fn seq_unit_laws() {
        let a = ev("a");
        assert_eq!(Hist::seq(Hist::Eps, a.clone()), a);
        assert_eq!(Hist::seq(a.clone(), Hist::Eps), a);
        assert_eq!(Hist::seq(Hist::Eps, Hist::Eps), Hist::Eps);
    }

    #[test]
    fn seq_right_associates() {
        let (a, b, c) = (ev("a"), ev("b"), ev("c"));
        let left = Hist::seq(Hist::seq(a.clone(), b.clone()), c.clone());
        let right = Hist::seq(a, Hist::seq(b, c));
        assert_eq!(left, right);
    }

    #[test]
    fn seq_all_matches_fold() {
        let items = vec![ev("a"), ev("b"), ev("c")];
        let h = Hist::seq_all(items.clone());
        let folded = items
            .into_iter()
            .rev()
            .fold(Hist::Eps, |acc, x| Hist::seq(x, acc));
        assert_eq!(h, folded);
    }

    #[test]
    fn free_vars_respect_binding() {
        let h = Hist::mu("h", Hist::seq(ev("a"), Hist::var("h")));
        assert!(h.is_closed());
        let open = Hist::seq(ev("a"), Hist::var("k"));
        assert_eq!(
            open.free_vars().into_iter().collect::<Vec<_>>(),
            vec![RecVar::new("k")]
        );
    }

    #[test]
    fn subst_shadowing() {
        // (μh. h) {X/h} must not touch the bound h.
        let inner = Hist::mu("h", Hist::var("h"));
        let r = inner.subst(&RecVar::new("h"), &ev("x"));
        assert_eq!(r, inner);
        // A free h is replaced.
        let free = Hist::seq(Hist::var("h"), ev("b"));
        let r = free.subst(&RecVar::new("h"), &ev("x"));
        assert_eq!(r, Hist::seq(ev("x"), ev("b")));
    }

    #[test]
    fn subst_preserves_canonical_form() {
        // Substituting ε into a sequence must collapse it.
        let h = Hist::Seq(Box::new(Hist::Var(RecVar::new("h"))), Box::new(ev("b")));
        let r = h.subst(&RecVar::new("h"), &Hist::Eps);
        assert_eq!(r, ev("b"));
    }

    #[test]
    fn size_counts_nodes() {
        let h = Hist::seq(ev("a"), Hist::mu("h", Hist::seq(ev("b"), Hist::var("h"))));
        // seq + a + mu + seq + b + var = 6
        assert_eq!(h.size(), 6);
    }

    #[test]
    fn canonicalize_collapses_eps() {
        let raw = Hist::Seq(
            Box::new(Hist::Seq(Box::new(Hist::Eps), Box::new(ev("a")))),
            Box::new(Hist::Eps),
        );
        assert_eq!(raw.canonicalize(), ev("a"));
    }

    #[test]
    fn default_is_eps() {
        assert!(Hist::default().is_eps());
    }

    #[test]
    fn events_and_channels_are_collected() {
        let h = Hist::seq(
            Hist::ev(Event::new("sgn", [1i64])),
            Hist::mu(
                "h",
                Hist::ext([
                    (
                        Channel::new("go"),
                        Hist::seq(Hist::ev(Event::new("sgn", [1i64])), Hist::var("h")),
                    ),
                    (
                        Channel::new("stop"),
                        Hist::req(1u32, None, Hist::int_([(Channel::new("bye"), Hist::Eps)])),
                    ),
                ]),
            ),
        );
        let events: Vec<String> = h.events().iter().map(|e| e.to_string()).collect();
        assert_eq!(events, vec!["#sgn(1)"]); // deduplicated
        let chans: Vec<String> = h.channels().iter().map(|c| c.as_str().to_owned()).collect();
        assert_eq!(chans, vec!["bye", "go", "stop"]);
    }
}
