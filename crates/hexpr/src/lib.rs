//! History expressions for secure and unfailing services.
//!
//! This crate implements the *history expressions* of Basile, Degano and
//! Ferrari, "Secure and Unfailing Services" (Definition 1):
//!
//! ```text
//! H ::= ε | h | μh.H | Σᵢ aᵢ.Hᵢ | ⊕ᵢ āᵢ.Hᵢ | α | H·H | open_{r,φ} H close_{r,φ} | φ⟦H⟧
//! ```
//!
//! A history expression abstracts the behaviour of a service: the security
//! relevant *events* `α` it fires, the *communications* it performs on
//! channels (external choices `Σ` over inputs, internal choices `⊕` over
//! outputs), the service *requests* it makes (`open_{r,φ} … close_{r,φ}`)
//! and the security *framings* `φ⟦H⟧` it activates.
//!
//! The crate provides:
//!
//! * the abstract syntax ([`Hist`]) with smart constructors and the
//!   structural equivalence `ε·H ≡ H ≡ H·ε` baked into a canonical form,
//! * the stand-alone operational semantics ([`semantics::successors`]),
//! * finite labelled transition systems extracted from expressions
//!   ([`lts::HistLts`]); finiteness is guaranteed by the well-formedness
//!   discipline of [`wf`] (guarded tail recursion),
//! * the projection on communication actions `H!` ([`projection::project`]),
//! * observable ready sets (Definition 3, [`ready::ready_sets`]),
//! * service-request extraction ([`requests`]),
//! * a parser ([`parser::parse_hist`]) and pretty printer for a concrete
//!   textual syntax.
//!
//! # Example
//!
//! ```
//! use sufs_hexpr::parse_hist;
//!
//! // A hotel service: sign, publish price and rating, then either confirm
//! // the booking or report unavailability (an internal choice).
//! let hotel = parse_hist(
//!     "#sgn(1); #price(45); #rating(80); ext[idc -> int[bok -> eps | una -> eps]]",
//! ).unwrap();
//! assert!(sufs_hexpr::wf::check(&hotel).is_ok());
//! ```

#![warn(missing_docs)]

pub mod bpa;
pub mod builder;
pub mod display;
pub mod event;
pub mod hist;
pub mod ident;
pub mod label;
pub mod lts;
pub mod parser;
pub mod projection;
pub mod ready;
pub mod requests;
pub mod semantics;
pub mod shash;
pub mod value;
pub mod wf;

pub use event::{Event, PolicyRef};
pub use hist::Hist;
pub use ident::{Channel, EventName, Location, RecVar, RequestId};
pub use label::{Dir, Label};
pub use lts::HistLts;
pub use parser::{parse_hist, ParseError};
pub use value::{ParamValue, Value};
