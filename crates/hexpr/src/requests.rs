//! Extraction of service requests `open_{r,φ} H close_{r,φ}` from a
//! history expression (§4, first paragraph: "we manipulate the syntactic
//! structure of a service in order to identify and pick up all the
//! requests").

use crate::event::PolicyRef;
use crate::hist::Hist;
use crate::ident::RequestId;

/// One service request occurring (possibly nested) in an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestInfo {
    /// The request identifier `r`.
    pub id: RequestId,
    /// The policy `φ` the client imposes on the session (`None` = `∅`).
    pub policy: Option<PolicyRef>,
    /// The client-side conversation `H₁` of `open_{r,φ} H₁ close_{r,φ}`.
    pub body: Hist,
    /// Nesting depth: `0` for top-level requests of the expression,
    /// `n+1` for requests syntactically inside the body of a depth-`n`
    /// request.
    pub depth: usize,
}

/// Collects every request in `h`, outermost first (pre-order).
///
/// # Examples
///
/// ```
/// use sufs_hexpr::{parse_hist, requests::requests};
///
/// let h = parse_hist("open 1 { ext[a -> eps] }; open 2 { ext[b -> eps] }").unwrap();
/// let rs = requests(&h);
/// assert_eq!(rs.len(), 2);
/// assert_eq!(rs[0].id.index(), 1);
/// assert_eq!(rs[1].id.index(), 2);
/// ```
pub fn requests(h: &Hist) -> Vec<RequestInfo> {
    let mut out = Vec::new();
    walk(h, 0, &mut out);
    out
}

/// Collects the request identifiers of `h`, outermost first.
pub fn request_ids(h: &Hist) -> Vec<RequestId> {
    requests(h).into_iter().map(|r| r.id).collect()
}

/// Returns `true` if any two requests in `h` share an identifier.
///
/// The paper requires request identifiers to be unique; duplicate ids
/// would make a plan ambiguous.
pub fn has_duplicate_ids(h: &Hist) -> bool {
    let mut ids = request_ids(h);
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    ids.len() != before
}

fn walk(h: &Hist, depth: usize, out: &mut Vec<RequestInfo>) {
    match h {
        Hist::Eps | Hist::Var(_) | Hist::Ev(_) | Hist::CloseTok(..) | Hist::FrameCloseTok(_) => {}
        Hist::Mu(_, body) | Hist::Framed(_, body) => walk(body, depth, out),
        Hist::Ext(bs) | Hist::Int(bs) => {
            for (_, cont) in bs {
                walk(cont, depth, out);
            }
        }
        Hist::Seq(a, b) => {
            walk(a, depth, out);
            walk(b, depth, out);
        }
        Hist::Req { id, policy, body } => {
            out.push(RequestInfo {
                id: *id,
                policy: policy.clone(),
                body: (**body).clone(),
                depth,
            });
            walk(body, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ident::Channel;

    fn ch(name: &str) -> Channel {
        Channel::new(name)
    }

    #[test]
    fn finds_top_level_requests() {
        let h = Hist::seq(
            Hist::req(1u32, None, Hist::ext([(ch("a"), Hist::Eps)])),
            Hist::req(2u32, None, Hist::ext([(ch("b"), Hist::Eps)])),
        );
        let rs = requests(&h);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, RequestId::new(1));
        assert_eq!(rs[0].depth, 0);
        assert_eq!(rs[1].id, RequestId::new(2));
    }

    #[test]
    fn finds_nested_requests_with_depth() {
        let inner = Hist::req(3u32, None, Hist::ext([(ch("x"), Hist::Eps)]));
        let h = Hist::req(1u32, None, Hist::seq(inner, Hist::Eps));
        let rs = requests(&h);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, RequestId::new(1));
        assert_eq!(rs[0].depth, 0);
        assert_eq!(rs[1].id, RequestId::new(3));
        assert_eq!(rs[1].depth, 1);
    }

    #[test]
    fn finds_requests_under_choices_and_recursion() {
        let h = Hist::mu(
            "h",
            Hist::ext([
                (ch("go"), Hist::req(7u32, None, Hist::Eps)),
                (ch("stop"), Hist::Eps),
            ]),
        );
        let rs = requests(&h);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].id, RequestId::new(7));
    }

    #[test]
    fn duplicate_detection() {
        let dup = Hist::seq(
            Hist::req(1u32, None, Hist::Eps),
            Hist::req(1u32, None, Hist::Eps),
        );
        assert!(has_duplicate_ids(&dup));
        let ok = Hist::seq(
            Hist::req(1u32, None, Hist::Eps),
            Hist::req(2u32, None, Hist::Eps),
        );
        assert!(!ok.is_eps());
        assert!(!has_duplicate_ids(&ok));
    }

    #[test]
    fn no_requests_in_plain_expression() {
        let h = Hist::seq(Hist::ev(Event::nullary("a")), Hist::Eps);
        assert!(requests(&h).is_empty());
        assert!(request_ids(&h).is_empty());
    }
}
