//! Identifier newtypes: channels, event names, recursion variables,
//! request identifiers and locations.
//!
//! Each identifier is a thin wrapper around a string (or integer for
//! [`RequestId`]) providing a static distinction between the different
//! name spaces of the calculus (C-NEWTYPE).

use std::fmt;

macro_rules! string_ident {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(String);

        impl $name {
            /// Creates a new identifier from anything string-like.
            pub fn new(s: impl Into<String>) -> Self {
                Self(s.into())
            }

            /// Returns the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_ident! {
    /// A communication channel name `a`; outputs on `a` are written `ā`.
    Channel
}

string_ident! {
    /// The name of a security-relevant event `α` (its parameters live in
    /// [`crate::Event`]).
    EventName
}

string_ident! {
    /// A recursion variable `h` bound by `μh.H`.
    RecVar
}

string_ident! {
    /// A location `ℓ ∈ Loc` hosting a client or a service.
    Location
}

/// A request identifier `r ∈ Req` labelling `open_{r,φ} … close_{r,φ}`.
///
/// The paper requires request identifiers to be unique within a composed
/// service; [`crate::wf::check`] enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u32);

impl RequestId {
    /// Creates a request identifier from its numeric label.
    pub fn new(n: u32) -> Self {
        Self(n)
    }

    /// Returns the numeric label of the request.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for RequestId {
    fn from(n: u32) -> Self {
        Self(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip() {
        let c = Channel::new("req");
        assert_eq!(c.as_str(), "req");
        assert_eq!(c.to_string(), "req");
        assert_eq!(Channel::from("req"), c);
    }

    #[test]
    fn identifiers_are_distinct_namespaces() {
        // These must be different types: this is a compile-time guarantee,
        // here we just exercise the constructors.
        let _: Channel = "a".into();
        let _: EventName = "a".into();
        let _: RecVar = "a".into();
        let _: Location = "a".into();
    }

    #[test]
    fn request_id_display() {
        assert_eq!(RequestId::new(3).to_string(), "r3");
        assert_eq!(RequestId::from(3).index(), 3);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Channel::new("a") < Channel::new("b"));
        assert!(RequestId::new(1) < RequestId::new(2));
    }
}
