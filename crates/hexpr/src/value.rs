//! Ground values carried by events and policy parameters.

use std::collections::BTreeSet;
use std::fmt;

/// A ground value: an event argument or a scalar policy parameter.
///
/// Events such as `α_sgn(1)` or `α_price(45)` carry values; usage-automata
/// guards compare them against policy parameters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer, e.g. a price or a rating.
    Int(i64),
    /// A symbolic name, e.g. a principal or resource identifier.
    Str(String),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

/// An actual parameter of a policy instantiation.
///
/// The policy `φ(bl, p, t)` of the paper's Fig. 1 takes a *set* parameter
/// (the black list `bl`) and two scalar parameters (the thresholds `p`
/// and `t`), so parameters are either scalars or finite sets of scalars.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParamValue {
    /// A scalar parameter, e.g. a threshold.
    Scalar(Value),
    /// A finite set parameter, e.g. a black list.
    Set(BTreeSet<Value>),
}

impl ParamValue {
    /// Creates an integer scalar parameter.
    pub fn int(n: i64) -> Self {
        ParamValue::Scalar(Value::Int(n))
    }

    /// Creates a string scalar parameter.
    pub fn str(s: impl Into<String>) -> Self {
        ParamValue::Scalar(Value::str(s))
    }

    /// Creates a set parameter from any iterator of values.
    pub fn set<I, V>(vals: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        ParamValue::Set(vals.into_iter().map(Into::into).collect())
    }

    /// Returns the scalar payload, if this is a [`ParamValue::Scalar`].
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            ParamValue::Scalar(v) => Some(v),
            ParamValue::Set(_) => None,
        }
    }

    /// Returns the set payload, if this is a [`ParamValue::Set`].
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            ParamValue::Scalar(_) => None,
            ParamValue::Set(s) => Some(s),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Scalar(v) => write!(f, "{v}"),
            ParamValue::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<Value> for ParamValue {
    fn from(v: Value) -> Self {
        ParamValue::Scalar(v)
    }
}

impl From<i64> for ParamValue {
    fn from(n: i64) -> Self {
        ParamValue::int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn param_set_display() {
        let p = ParamValue::set([1i64, 3, 2]);
        // BTreeSet orders the elements.
        assert_eq!(p.to_string(), "{1,2,3}");
        assert_eq!(p.as_set().unwrap().len(), 3);
        assert!(p.as_scalar().is_none());
    }

    #[test]
    fn param_scalar_display() {
        assert_eq!(ParamValue::int(45).to_string(), "45");
        assert_eq!(ParamValue::str("s1").to_string(), "s1");
        assert_eq!(
            ParamValue::from(Value::Int(9)).as_scalar(),
            Some(&Value::Int(9))
        );
    }

    #[test]
    fn values_order() {
        assert!(Value::Int(1) < Value::Int(2));
        // Int sorts before Str by enum-variant order; just assert totality.
        let mut v = [Value::str("b"), Value::Int(5), Value::str("a")];
        v.sort();
        assert_eq!(v.len(), 3);
    }
}
