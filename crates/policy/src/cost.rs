//! Quantitative security policies (§5's second research direction,
//! "along the lines of \[14\]", Degano–Ferrari–Mezzetti *On quantitative
//! security policies*).
//!
//! A [`CostModel`] assigns a non-negative cost to every access event
//! (a flat cost per event name, or the value of one of its arguments);
//! a [`CostBound`] caps the total cost accumulated *while the policy is
//! active*. The static check walks the finite LTS of a history
//! expression, computing the maximal accumulated cost per activation:
//!
//! * if a positive-cost cycle is reachable inside an activation window,
//!   the accumulated cost is unbounded and the bound is violated;
//! * otherwise the maximum over the (finitely many) paths is compared
//!   with the bound.
//!
//! The run-time side mirrors it: [`CostMonitor`] tracks accumulated
//! costs incrementally, exactly like the qualitative validity monitor.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use sufs_hexpr::{Event, Hist, Label, PolicyRef};

/// How an event's cost is computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostRule {
    /// A flat cost per occurrence.
    Flat(u64),
    /// The value of the `idx`-th integer argument (clamped at zero);
    /// non-integer or missing arguments cost nothing.
    Arg(usize),
}

/// A cost model: event name → cost rule. Unlisted events cost zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostModel {
    rules: BTreeMap<String, CostRule>,
}

impl CostModel {
    /// An empty model (everything costs zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a flat cost to an event name.
    pub fn flat(mut self, event: &str, cost: u64) -> Self {
        self.rules.insert(event.to_owned(), CostRule::Flat(cost));
        self
    }

    /// Charges the value of the `idx`-th argument of the event.
    pub fn by_arg(mut self, event: &str, idx: usize) -> Self {
        self.rules.insert(event.to_owned(), CostRule::Arg(idx));
        self
    }

    /// The cost of one event under this model.
    pub fn cost(&self, e: &Event) -> u64 {
        match self.rules.get(e.name().as_str()) {
            None => 0,
            Some(CostRule::Flat(c)) => *c,
            Some(CostRule::Arg(i)) => e
                .args()
                .get(*i)
                .and_then(|v| v.as_int())
                .map_or(0, |n| n.max(0) as u64),
        }
    }
}

/// A quantitative policy: while `policy` is active, the accumulated
/// cost (under `model`) must stay at or below `bound`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBound {
    /// The framing whose activation windows are charged.
    pub policy: PolicyRef,
    /// The cost model.
    pub model: CostModel,
    /// The inclusive budget per activation window.
    pub bound: u64,
}

/// The outcome of the static cost analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostVerdict {
    /// All activations stay within budget; the worst accumulated cost is
    /// reported.
    Within {
        /// The maximum accumulated cost over all paths and activations.
        worst: u64,
    },
    /// Some path exceeds the budget (or accumulates unboundedly via a
    /// positive-cost cycle).
    Exceeded {
        /// The smallest witnessed cost above the bound, `None` when a
        /// positive-cost cycle makes it unbounded.
        witness: Option<u64>,
    },
}

impl CostVerdict {
    /// Returns `true` if the budget always suffices.
    pub fn is_within(&self) -> bool {
        matches!(self, CostVerdict::Within { .. })
    }
}

impl fmt::Display for CostVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostVerdict::Within { worst } => write!(f, "within budget (worst case {worst})"),
            CostVerdict::Exceeded { witness: Some(w) } => {
                write!(f, "budget exceeded (witnessed cost {w})")
            }
            CostVerdict::Exceeded { witness: None } => {
                write!(f, "budget exceeded (unbounded: positive-cost cycle)")
            }
        }
    }
}

/// Statically checks a cost bound over the finite LTS of `h`.
///
/// Two phases:
///
/// 1. the `(expression, activation-depth)` graph is searched for a
///    **positive-cost cycle inside an activation window** — if one is
///    reachable, the accumulated cost is unbounded and every finite
///    budget is exceeded ([`CostVerdict::Exceeded`] with no witness);
/// 2. otherwise accumulated costs are finite; an exact exploration of
///    `(expression, depth, accumulated-cost)` configurations reports the
///    worst case, or the smallest cost witnessed above the bound.
///
/// # Errors
///
/// Returns the state bound if exploration exceeds it.
pub fn check_cost_bound(
    h: &Hist,
    cb: &CostBound,
    state_bound: usize,
) -> Result<CostVerdict, usize> {
    check_cost_bound_lts(
        h.clone(),
        sufs_hexpr::semantics::successors,
        cb,
        state_bound,
    )
}

/// [`check_cost_bound`] over an arbitrary finite transition system given
/// by a successor function — e.g. the symbolic session state space of a
/// client under a plan, so quantitative bounds can gate whole
/// orchestrations.
///
/// # Errors
///
/// Returns the state bound if exploration exceeds it.
pub fn check_cost_bound_lts<K, F>(
    initial: K,
    mut succ: F,
    cb: &CostBound,
    state_bound: usize,
) -> Result<CostVerdict, usize>
where
    K: Clone + Eq + std::hash::Hash,
    F: FnMut(&K) -> Vec<(Label, K)>,
{
    use std::collections::VecDeque;

    // Phase 1: the (state, depth) graph with edge costs.
    let mut nodes: Vec<(K, usize)> = vec![(initial.clone(), 0)];
    let mut index: HashMap<(K, usize), usize> = HashMap::from([(nodes[0].clone(), 0)]);
    let mut edges: Vec<Vec<(u64, usize)>> = Vec::new();
    let mut next = 0usize;
    while next < nodes.len() {
        let (state, depth) = nodes[next].clone();
        let mut out = Vec::new();
        for (label, succ_state) in succ(&state) {
            let (ndepth, cost) = match &label {
                Label::Ev(e) if depth > 0 => (depth, cb.model.cost(e)),
                Label::Ev(_) => (depth, 0),
                Label::FrameOpen(p) | Label::Open(_, Some(p)) if p == &cb.policy => (depth + 1, 0),
                Label::FrameClose(p) | Label::Close(_, Some(p)) if p == &cb.policy => {
                    (depth.saturating_sub(1), 0)
                }
                _ => (depth, 0),
            };
            let key = (succ_state, ndepth);
            let id = match index.get(&key) {
                Some(&id) => id,
                None => {
                    let id = nodes.len();
                    if id >= state_bound {
                        return Err(state_bound);
                    }
                    index.insert(key.clone(), id);
                    nodes.push(key);
                    id
                }
            };
            out.push((cost, id));
        }
        edges.push(out);
        next += 1;
    }
    if positive_cycle(nodes.len(), &edges) {
        return Ok(CostVerdict::Exceeded { witness: None });
    }

    // Phase 2: costs are finite; explore exact configurations. The
    // first crossing above the bound is the smallest witness.
    let mut seen: HashMap<(K, usize, u64), ()> = HashMap::new();
    let mut queue: VecDeque<(K, usize, u64)> = VecDeque::new();
    let init = (initial, 0usize, 0u64);
    seen.insert(init.clone(), ());
    queue.push_back(init);
    let mut worst = 0u64;
    let mut witness: Option<u64> = None;
    while let Some((state, depth, cost)) = queue.pop_front() {
        for (label, succ_state) in succ(&state) {
            let (ndepth, ncost) = match &label {
                Label::Ev(e) if depth > 0 => (depth, cost + cb.model.cost(e)),
                Label::Ev(_) => (depth, cost),
                Label::FrameOpen(p) | Label::Open(_, Some(p)) if p == &cb.policy => {
                    (depth + 1, cost)
                }
                Label::FrameClose(p) | Label::Close(_, Some(p)) if p == &cb.policy => {
                    let d = depth.saturating_sub(1);
                    (d, if d == 0 { 0 } else { cost })
                }
                _ => (depth, cost),
            };
            if ncost > cb.bound {
                witness = Some(witness.map_or(ncost, |w| w.min(ncost)));
                // No need to chase costs beyond the bound further: any
                // deeper overshoot is larger.
                continue;
            }
            worst = worst.max(ncost);
            let key = (succ_state, ndepth, ncost);
            if !seen.contains_key(&key) {
                if seen.len() >= state_bound {
                    return Err(state_bound);
                }
                seen.insert(key.clone(), ());
                queue.push_back(key);
            }
        }
    }
    Ok(match witness {
        Some(w) => CostVerdict::Exceeded { witness: Some(w) },
        None => CostVerdict::Within { worst },
    })
}

/// Detects a cycle containing a positive-cost edge (Tarjan SCC).
fn positive_cycle(n: usize, edges: &[Vec<(u64, usize)>]) -> bool {
    // Iterative Tarjan.
    let mut indexv = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut counter = 0usize;
    let mut ncomp = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new(); // (node, edge idx)
    for root in 0..n {
        if indexv[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        indexv[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei < edges[v].len() {
                let (_, w) = edges[v][*ei];
                *ei += 1;
                if indexv[w] == usize::MAX {
                    indexv[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(indexv[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == indexv[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp[w] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    // A positive-cost edge within one SCC means unbounded accumulation
    // (the charging depth is part of the node, so the cycle stays in a
    // window).
    for (v, out) in edges.iter().enumerate() {
        for (cost, w) in out {
            if *cost > 0 && comp[v] == comp[*w] {
                return true;
            }
        }
    }
    false
}

/// The incremental run-time side of [`CostBound`].
#[derive(Debug, Clone)]
pub struct CostMonitor {
    bound: CostBound,
    depth: usize,
    accumulated: u64,
}

impl CostMonitor {
    /// A monitor for one cost bound.
    pub fn new(bound: CostBound) -> Self {
        CostMonitor {
            bound,
            depth: 0,
            accumulated: 0,
        }
    }

    /// Observes one history label; returns `true` if the budget has just
    /// been exceeded.
    pub fn observe(&mut self, label: &Label) -> bool {
        match label {
            Label::Ev(e) if self.depth > 0 => {
                self.accumulated = self.accumulated.saturating_add(self.bound.model.cost(e));
            }
            Label::FrameOpen(p) | Label::Open(_, Some(p)) if p == &self.bound.policy => {
                self.depth += 1;
            }
            Label::FrameClose(p) | Label::Close(_, Some(p)) if p == &self.bound.policy => {
                self.depth = self.depth.saturating_sub(1);
                if self.depth == 0 {
                    self.accumulated = 0;
                }
            }
            _ => {}
        }
        self.accumulated > self.bound.bound
    }

    /// The currently accumulated cost.
    pub fn accumulated(&self) -> u64 {
        self.accumulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::parse_hist;

    fn phi() -> PolicyRef {
        PolicyRef::nullary("budget")
    }

    fn bound(b: u64) -> CostBound {
        CostBound {
            policy: phi(),
            model: CostModel::new().flat("spend", 10).by_arg("charge", 0),
            bound: b,
        }
    }

    #[test]
    fn cost_model_rules() {
        let m = CostModel::new().flat("spend", 10).by_arg("charge", 0);
        assert_eq!(m.cost(&Event::nullary("spend")), 10);
        assert_eq!(m.cost(&Event::new("charge", [7i64])), 7);
        assert_eq!(m.cost(&Event::new("charge", [-5i64])), 0);
        assert_eq!(m.cost(&Event::nullary("free")), 0);
        assert_eq!(
            m.cost(&Event::new("charge", [sufs_hexpr::Value::str("x")])),
            0
        );
    }

    #[test]
    fn within_budget() {
        let h = parse_hist("frame budget [ #spend; #charge(5) ]").unwrap();
        let v = check_cost_bound(&h, &bound(20), 10_000).unwrap();
        assert_eq!(v, CostVerdict::Within { worst: 15 });
        assert!(v.is_within());
        assert!(v.to_string().contains("15"));
    }

    #[test]
    fn overshoot_detected_with_witness() {
        let h = parse_hist("frame budget [ #spend; #spend; #spend ]").unwrap();
        let v = check_cost_bound(&h, &bound(25), 10_000).unwrap();
        assert_eq!(v, CostVerdict::Exceeded { witness: Some(30) });
    }

    #[test]
    fn events_outside_the_window_are_free() {
        let h = parse_hist("#spend; #spend; frame budget [ #spend ]; #spend").unwrap();
        let v = check_cost_bound(&h, &bound(10), 10_000).unwrap();
        assert_eq!(v, CostVerdict::Within { worst: 10 });
    }

    #[test]
    fn branches_take_the_worst_case() {
        let h =
            parse_hist("frame budget [ ext[cheap -> #charge(1) | costly -> #charge(9)] ]").unwrap();
        let v = check_cost_bound(&h, &bound(8), 10_000).unwrap();
        assert_eq!(v, CostVerdict::Exceeded { witness: Some(9) });
        let v = check_cost_bound(&h, &bound(9), 10_000).unwrap();
        assert_eq!(v, CostVerdict::Within { worst: 9 });
    }

    #[test]
    fn positive_cost_cycle_is_unbounded() {
        let h = parse_hist("frame budget [ mu h. int[go -> #spend; h | stop -> eps] ]").unwrap();
        let v = check_cost_bound(&h, &bound(1000), 100_000).unwrap();
        assert_eq!(v, CostVerdict::Exceeded { witness: None });
        assert!(v.to_string().contains("unbounded"));
    }

    #[test]
    fn zero_cost_cycle_is_fine() {
        let h = parse_hist("frame budget [ mu h. int[go -> #free; h | stop -> eps] ]").unwrap();
        let v = check_cost_bound(&h, &bound(5), 100_000).unwrap();
        assert_eq!(v, CostVerdict::Within { worst: 0 });
    }

    #[test]
    fn window_resets_between_activations() {
        let h = parse_hist("frame budget [ #spend ]; frame budget [ #spend ]").unwrap();
        // Each window costs 10; never 20 at once.
        let v = check_cost_bound(&h, &bound(10), 10_000).unwrap();
        assert_eq!(v, CostVerdict::Within { worst: 10 });
    }

    #[test]
    fn session_policies_charge_too() {
        let h = parse_hist("open 1 phi budget { int[q -> eps] }; #spend").unwrap();
        // The spend is outside the session: free.
        let v = check_cost_bound(&h, &bound(0), 10_000).unwrap();
        assert!(v.is_within());
    }

    #[test]
    fn monitor_mirrors_static_check() {
        let mut m = CostMonitor::new(bound(15));
        assert!(!m.observe(&Label::FrameOpen(phi())));
        assert!(!m.observe(&Label::Ev(Event::nullary("spend"))));
        assert_eq!(m.accumulated(), 10);
        assert!(!m.observe(&Label::Ev(Event::new("charge", [5i64]))));
        assert!(m.observe(&Label::Ev(Event::new("charge", [1i64]))));
        // Closing resets.
        let mut m = CostMonitor::new(bound(15));
        m.observe(&Label::FrameOpen(phi()));
        m.observe(&Label::Ev(Event::nullary("spend")));
        m.observe(&Label::FrameClose(phi()));
        assert_eq!(m.accumulated(), 0);
        assert!(!m.observe(&Label::Ev(Event::nullary("spend"))));
    }

    #[test]
    fn state_bound_respected() {
        let h = parse_hist("frame budget [ #spend; #spend ]").unwrap();
        assert_eq!(check_cost_bound(&h, &bound(100), 2), Err(2));
    }
}
