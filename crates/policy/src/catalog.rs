//! A catalogue of ready-made usage automata: the paper's Fig. 1 policy
//! and a few classics from the usage-automata literature.

use crate::guard::{CmpOp, Guard, Operand};
use crate::usage::{UsageAutomaton, UsageBuilder};

/// The parametric policy `φ(bl, p, t)` of Fig. 1.
///
/// Its parameters are a black list of hotels `bl`, a price threshold `p`
/// and a Trip Advisor rating threshold `t`. The automaton accepts the
/// **forbidden** traces (default-accept):
///
/// * a black-listed hotel signs the contract (`α_sgn(x), x ∈ bl`), or
/// * the hotel is over price (`α_p(y), y > p`) **and** under rating
///   (`α_ta(z), z < t`).
///
/// ```text
/// q1 ──sgn(x), x∉bl──▸ q2 ──p(y), y≤p──▸ q3 (*)
///  │                    └──p(y), y>p──▸ q4 ──ta(z), z≥t──▸ q5 (*)
///  └──sgn(x), x∈bl──▸ q6 (*)            └──ta(z), z<t──▸ q6
/// ```
pub fn hotel_policy() -> UsageAutomaton {
    let mut b = UsageBuilder::new("hotel", ["bl", "p", "t"]);
    let q1 = b.state();
    let q2 = b.state();
    let q3 = b.state();
    let q4 = b.state();
    let q5 = b.state();
    let q6 = b.state();
    b.start(q1)
        .on(q1, "sgn", Guard::NotInSet(0, "bl".into()), q2)
        .on(q1, "sgn", Guard::InSet(0, "bl".into()), q6)
        .on(q2, "p", Guard::Cmp(0, CmpOp::Le, Operand::param("p")), q3)
        .on(q2, "p", Guard::Cmp(0, CmpOp::Gt, Operand::param("p")), q4)
        .on(q4, "ta", Guard::Cmp(0, CmpOp::Ge, Operand::param("t")), q5)
        .on(q4, "ta", Guard::Cmp(0, CmpOp::Lt, Operand::param("t")), q6)
        .offending(q6);
    b.build().expect("hotel policy is well-formed")
}

/// "Never `second` after `first`" — the paper's §3 example is
/// `no_after("read", "write")`: no write may follow a read.
pub fn no_after(first: &str, second: &str) -> UsageAutomaton {
    let mut b = UsageBuilder::new(format!("no_{second}_after_{first}"), Vec::<String>::new());
    let q0 = b.state();
    let q1 = b.state();
    let bad = b.state();
    b.on(q0, first, Guard::True, q1)
        .on(q1, second, Guard::True, bad)
        .offending(bad);
    b.build().expect("no_after policy is well-formed")
}

/// "The event `event` happens at most `n` times."
pub fn at_most(event: &str, n: usize) -> UsageAutomaton {
    let mut b = UsageBuilder::new(format!("at_most_{n}_{event}"), Vec::<String>::new());
    let mut prev = b.state();
    for _ in 0..n {
        let next = b.state();
        b.on(prev, event, Guard::True, next);
        prev = next;
    }
    let bad = b.state();
    b.on(prev, event, Guard::True, bad).offending(bad);
    b.build().expect("at_most policy is well-formed")
}

/// "The first argument of `event` is never in the black list `bl`."
///
/// One formal parameter: the forbidden set `bl`.
pub fn blacklist(event: &str) -> UsageAutomaton {
    let mut b = UsageBuilder::new(format!("blacklist_{event}"), ["bl"]);
    let q0 = b.state();
    let bad = b.state();
    b.on(q0, event, Guard::InSet(0, "bl".into()), bad)
        .offending(bad);
    b.build().expect("blacklist policy is well-formed")
}

/// "`action` requires a prior `prerequisite`": firing `action` before
/// any `prerequisite` is forbidden (e.g. `must_precede("auth", "pay")`).
pub fn must_precede(prerequisite: &str, action: &str) -> UsageAutomaton {
    let mut b = UsageBuilder::new(
        format!("{prerequisite}_before_{action}"),
        Vec::<String>::new(),
    );
    let q0 = b.state();
    let ready = b.state();
    let bad = b.state();
    b.on(q0, prerequisite, Guard::True, ready)
        .on(q0, action, Guard::True, bad)
        .offending(bad);
    b.build().expect("must_precede policy is well-formed")
}

/// The Chinese Wall on one event name: once the first argument of
/// `event` belongs to `side_a`, values from `side_b` are forbidden, and
/// vice versa (conflict-of-interest classes as set parameters).
pub fn chinese_wall(event: &str) -> UsageAutomaton {
    let mut b = UsageBuilder::new(format!("wall_{event}"), ["side_a", "side_b"]);
    let q0 = b.state();
    let in_a = b.state();
    let in_b = b.state();
    let bad = b.state();
    b.on(q0, event, Guard::InSet(0, "side_a".into()), in_a)
        .on(q0, event, Guard::InSet(0, "side_b".into()), in_b)
        .on(in_a, event, Guard::InSet(0, "side_b".into()), bad)
        .on(in_b, event, Guard::InSet(0, "side_a".into()), bad)
        .offending(bad);
    b.build().expect("chinese_wall policy is well-formed")
}

/// Separation of duty: `e1` and `e2` must never both occur in the same
/// history, in either order.
pub fn separation_of_duty(e1: &str, e2: &str) -> UsageAutomaton {
    let mut b = UsageBuilder::new(format!("sod_{e1}_{e2}"), Vec::<String>::new());
    let q0 = b.state();
    let saw1 = b.state();
    let saw2 = b.state();
    let bad = b.state();
    b.on(q0, e1, Guard::True, saw1)
        .on(q0, e2, Guard::True, saw2)
        .on(saw1, e2, Guard::True, bad)
        .on(saw2, e1, Guard::True, bad)
        .offending(bad);
    b.build().expect("sod policy is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PolicyInstance;
    use sufs_hexpr::{Event, ParamValue, PolicyRef};

    fn inst0(ua: UsageAutomaton) -> PolicyInstance {
        let name = ua.name().to_owned();
        PolicyInstance::new(ua, PolicyRef::nullary(name)).unwrap()
    }

    #[test]
    fn hotel_policy_shape() {
        let ua = hotel_policy();
        assert_eq!(ua.name(), "hotel");
        assert_eq!(ua.len(), 6);
        assert_eq!(ua.params(), &["bl", "p", "t"]);
        assert_eq!(ua.transitions().len(), 6);
    }

    #[test]
    fn no_write_after_read() {
        let inst = inst0(no_after("read", "write"));
        let bad = [Event::nullary("read"), Event::nullary("write")];
        assert!(inst.forbids(bad.iter()));
        let fine = [Event::nullary("write"), Event::nullary("read")];
        assert!(inst.respects(fine.iter()));
    }

    #[test]
    fn at_most_counts() {
        let inst = inst0(at_most("tick", 2));
        let two = [Event::nullary("tick"), Event::nullary("tick")];
        assert!(inst.respects(two.iter()));
        let three = [
            Event::nullary("tick"),
            Event::nullary("other"),
            Event::nullary("tick"),
            Event::nullary("tick"),
        ];
        assert!(inst.forbids(three.iter()));
    }

    #[test]
    fn at_most_zero_forbids_single_use() {
        let inst = inst0(at_most("tick", 0));
        assert!(inst.respects([].iter()));
        assert!(inst.forbids([Event::nullary("tick")].iter()));
    }

    #[test]
    fn blacklist_checks_first_argument() {
        let ua = blacklist("access");
        let inst = PolicyInstance::new(
            ua,
            PolicyRef::new("blacklist_access", [ParamValue::set(["secret"])]),
        )
        .unwrap();
        assert!(inst.forbids([Event::new("access", [sufs_hexpr::Value::str("secret")])].iter()));
        assert!(inst.respects([Event::new("access", [sufs_hexpr::Value::str("public")])].iter()));
    }

    #[test]
    fn must_precede_orders_actions() {
        let inst = inst0(must_precede("auth", "pay"));
        assert!(inst.respects([Event::nullary("auth"), Event::nullary("pay")].iter()));
        assert!(inst.forbids([Event::nullary("pay")].iter()));
        assert!(inst.forbids([Event::nullary("pay"), Event::nullary("auth")].iter()));
        // Repeated pays after one auth are fine (no re-arming required).
        assert!(inst.respects(
            [
                Event::nullary("auth"),
                Event::nullary("pay"),
                Event::nullary("pay")
            ]
            .iter()
        ));
    }

    #[test]
    fn chinese_wall_separates_sides() {
        let ua = chinese_wall("access");
        let inst = PolicyInstance::new(
            ua,
            PolicyRef::new(
                "wall_access",
                [ParamValue::set(["bankA"]), ParamValue::set(["bankB"])],
            ),
        )
        .unwrap();
        let a = |v: &str| Event::new("access", [sufs_hexpr::Value::str(v)]);
        assert!(inst.respects([a("bankA"), a("bankA")].iter()));
        assert!(inst.respects([a("bankB"), a("bankB")].iter()));
        assert!(inst.forbids([a("bankA"), a("bankB")].iter()));
        assert!(inst.forbids([a("bankB"), a("bankA")].iter()));
        // Neutral values are outside both classes.
        assert!(inst.respects([a("neutral"), a("bankA"), a("bankA")].iter()));
    }

    #[test]
    fn separation_of_duty_both_orders() {
        let inst = inst0(separation_of_duty("approve", "submit"));
        let order1 = [Event::nullary("approve"), Event::nullary("submit")];
        let order2 = [Event::nullary("submit"), Event::nullary("approve")];
        let solo = [Event::nullary("approve"), Event::nullary("approve")];
        assert!(inst.forbids(order1.iter()));
        assert!(inst.forbids(order2.iter()));
        assert!(inst.respects(solo.iter()));
    }
}
