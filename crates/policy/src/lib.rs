//! Security policies for services: parametric usage automata, execution
//! histories with framings, and validity model checking.
//!
//! This crate implements the security half of *Secure and Unfailing
//! Services*:
//!
//! * [`usage`] — parametric usage automata in the style of Bartoletti's
//!   usage automata \[3\]; the paper's Fig. 1 policy `φ(bl, p, t)` ships in
//!   [`catalog::hotel_policy`];
//! * [`guard`] — the guard language on transitions (set membership and
//!   threshold comparisons against policy parameters);
//! * [`instance`] — instantiated policies runnable on ground events,
//!   following the *default-accept* discipline: the automaton accepts the
//!   **forbidden** traces;
//! * [`history`] — histories `η ∈ (Ev ∪ Frm)*` with flattening `η♭`,
//!   active-policy multisets `AP(η)`, balance, and the history-dependent
//!   validity `⊨ η` of §3.1;
//! * [`validity`] — static validity model checking of an arbitrary
//!   finite transition system (e.g. a history expression's LTS) against
//!   all the policies it activates, with witness extraction;
//! * [`registry`] — the name → automaton resolution used everywhere.
//!
//! # Example: the paper's Fig. 1 policy
//!
//! ```
//! use sufs_policy::{catalog, registry::PolicyRegistry};
//! use sufs_hexpr::{Event, ParamValue, PolicyRef};
//!
//! let mut reg = PolicyRegistry::new();
//! reg.register(catalog::hotel_policy());
//!
//! // C1's instantiation: black list {1}, price ≤ 45, rating ≥ 100.
//! let phi1 = PolicyRef::new("hotel", [
//!     ParamValue::set([1i64]), ParamValue::int(45), ParamValue::int(100),
//! ]);
//! let inst = reg.instantiate(&phi1).unwrap();
//!
//! // Hotel S4 signs, then publishes price 50 and rating 90: forbidden.
//! let s4 = [Event::new("sgn", [4i64]), Event::new("p", [50i64]), Event::new("ta", [90i64])];
//! assert!(inst.forbids(s4.iter()));
//! ```

#![warn(missing_docs)]

pub mod automata_bridge;
pub mod catalog;
pub mod cost;
pub mod guard;
pub mod history;
pub mod instance;
pub mod registry;
pub mod regularize;
pub mod usage;
pub mod validity;

pub use guard::{CmpOp, Guard, Operand};
pub use history::{History, HistoryItem};
pub use instance::PolicyInstance;
pub use registry::{PolicyError, PolicyRegistry};
pub use usage::{UsageAutomaton, UsageBuilder};
pub use validity::{check_validity, SecurityViolation, ValidityError, Verdict};
