//! Static validity model checking (§3.1).
//!
//! Validity of history expressions is non-regular because framings nest;
//! the paper follows \[5,4\] and regularises it by tracking openings in a
//! stack-like fashion. Here the same idea is implemented by running, in
//! product with the transition system under analysis, one automaton per
//! policy instance together with its **activation depth**: a product
//! state is *bad* iff some instance is in an offending state while its
//! depth is positive. Since the expression's LTS is finite and framings
//! are well nested (depths are bounded by the syntactic nesting), the
//! product is finite and validity is a plain safety/reachability check.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

use crate::instance::PolicyInstance;
use crate::registry::{PolicyError, PolicyRegistry};
use sufs_hexpr::{Label, PolicyRef};

/// A security violation found by the model checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityViolation {
    /// The violated policy instance.
    pub policy: PolicyRef,
    /// A shortest label path from the initial state to the violation.
    pub witness: Vec<Label>,
}

impl fmt::Display for SecurityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy {} violated after [", self.policy)?;
        for (i, l) in self.witness.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

/// The outcome of validity checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every reachable history is valid.
    Valid,
    /// Some reachable history violates an active policy.
    Violation(SecurityViolation),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }
}

/// An error preventing the check from running at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// A policy reference could not be resolved.
    Policy(PolicyError),
    /// The product state space exceeded the bound.
    BoundExceeded(usize),
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::Policy(e) => write!(f, "{e}"),
            ValidityError::BoundExceeded(b) => {
                write!(f, "validity product exceeded {b} states")
            }
        }
    }
}

impl std::error::Error for ValidityError {}

impl From<PolicyError> for ValidityError {
    fn from(e: PolicyError) -> Self {
        ValidityError::Policy(e)
    }
}

/// Per-policy-instance tracking inside a product state: the automaton
/// state set (fed every event from the very beginning — history
/// dependence) and the activation depth (the multiset `AP`).
type Tracks = Vec<(BTreeSet<usize>, usize)>;

/// Model-checks validity of the transition system rooted at `initial`
/// with successor function `succ`, under the policies of `registry`.
///
/// Labels are interpreted as follows: events feed every policy
/// automaton; `⌞φ` / `open_{r,φ}` increment the depth of `φ`;
/// `⌟φ` / `close_{r,φ}` decrement it; everything else is silent.
///
/// # Errors
///
/// Returns [`ValidityError::Policy`] if a mentioned policy is unknown or
/// ill-instantiated, and [`ValidityError::BoundExceeded`] if more than
/// `bound` product states are reachable.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::{parse_hist, semantics::successors};
/// use sufs_policy::{catalog, registry::PolicyRegistry, validity::check_validity};
///
/// let mut reg = PolicyRegistry::new();
/// reg.register(catalog::no_after("read", "write"));
///
/// let bad = parse_hist("frame no_write_after_read [ #read; #write ]").unwrap();
/// let verdict = check_validity(bad, |h| successors(h), &reg, 10_000).unwrap();
/// assert!(!verdict.is_valid());
/// ```
pub fn check_validity<K, F>(
    initial: K,
    mut succ: F,
    registry: &PolicyRegistry,
    bound: usize,
) -> Result<Verdict, ValidityError>
where
    K: Clone + Eq + Hash,
    F: FnMut(&K) -> Vec<(Label, K)>,
{
    // Phase 1: discover the policy universe by exploring the plain LTS.
    let instances = collect_instances(&initial, &mut succ, registry, bound)?;

    // Phase 2: product exploration with per-instance tracks.
    let tracks0: Tracks = instances.iter().map(|i| (i.initial(), 0)).collect();
    let start = (initial, tracks0);
    let mut index: HashMap<(K, Tracks), usize> = HashMap::new();
    let mut parents: Vec<Option<(usize, Label)>> = vec![None];
    let mut states: Vec<(K, Tracks)> = vec![start.clone()];
    index.insert(start, 0);
    let mut queue = VecDeque::from([0usize]);

    while let Some(id) = queue.pop_front() {
        let (k, tracks) = states[id].clone();
        for (label, k2) in succ(&k) {
            let mut t2 = tracks.clone();
            apply_label(&label, &instances, &mut t2);
            // Bad state?
            if let Some(pos) = t2
                .iter()
                .enumerate()
                .position(|(i, (set, depth))| *depth > 0 && instances[i].offends(set))
            {
                let mut witness = reconstruct(&parents, id);
                witness.push(label);
                return Ok(Verdict::Violation(SecurityViolation {
                    policy: instances[pos].reference().clone(),
                    witness,
                }));
            }
            let key = (k2, t2);
            if !index.contains_key(&key) {
                let nid = states.len();
                if nid >= bound {
                    return Err(ValidityError::BoundExceeded(bound));
                }
                index.insert(key.clone(), nid);
                states.push(key);
                parents.push(Some((id, label)));
                queue.push_back(nid);
            }
        }
    }
    Ok(Verdict::Valid)
}

fn collect_instances<K, F>(
    initial: &K,
    succ: &mut F,
    registry: &PolicyRegistry,
    bound: usize,
) -> Result<Vec<PolicyInstance>, ValidityError>
where
    K: Clone + Eq + Hash,
    F: FnMut(&K) -> Vec<(Label, K)>,
{
    let mut refs: Vec<PolicyRef> = Vec::new();
    let mut seen: HashMap<K, ()> = HashMap::from([(initial.clone(), ())]);
    let mut queue = VecDeque::from([initial.clone()]);
    while let Some(k) = queue.pop_front() {
        for (label, k2) in succ(&k) {
            if let Some(p) = policy_of(&label) {
                if !refs.contains(p) {
                    refs.push(p.clone());
                }
            }
            if !seen.contains_key(&k2) {
                if seen.len() >= bound {
                    return Err(ValidityError::BoundExceeded(bound));
                }
                seen.insert(k2.clone(), ());
                queue.push_back(k2);
            }
        }
    }
    let mut instances = Vec::with_capacity(refs.len());
    for r in refs {
        instances.push(registry.instantiate(&r)?);
    }
    Ok(instances)
}

fn policy_of(label: &Label) -> Option<&PolicyRef> {
    match label {
        Label::FrameOpen(p) | Label::FrameClose(p) => Some(p),
        Label::Open(_, Some(p)) | Label::Close(_, Some(p)) => Some(p),
        _ => None,
    }
}

fn apply_label(label: &Label, instances: &[PolicyInstance], tracks: &mut Tracks) {
    match label {
        Label::Ev(e) => {
            for (i, (set, _)) in tracks.iter_mut().enumerate() {
                *set = instances[i].step(set, e);
            }
        }
        Label::FrameOpen(p) | Label::Open(_, Some(p)) => {
            if let Some(i) = instances.iter().position(|inst| inst.reference() == p) {
                tracks[i].1 += 1;
            }
        }
        Label::FrameClose(p) | Label::Close(_, Some(p)) => {
            if let Some(i) = instances.iter().position(|inst| inst.reference() == p) {
                tracks[i].1 = tracks[i].1.saturating_sub(1);
            }
        }
        _ => {}
    }
}

fn reconstruct(parents: &[Option<(usize, Label)>], mut id: usize) -> Vec<Label> {
    let mut out = Vec::new();
    while let Some((p, l)) = &parents[id] {
        out.push(l.clone());
        id = *p;
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use sufs_hexpr::semantics::successors;
    use sufs_hexpr::{parse_hist, Hist};

    fn reg() -> PolicyRegistry {
        let mut r = PolicyRegistry::new();
        r.register(catalog::no_after("read", "write"));
        r.register(catalog::at_most("tick", 1));
        r
    }

    fn check(src: &str) -> Verdict {
        let h = parse_hist(src).unwrap();
        check_validity(h, |x: &Hist| successors(x), &reg(), 100_000).unwrap()
    }

    #[test]
    fn framed_violation_found_with_witness() {
        let v = check("frame no_write_after_read [ #read; #write ]");
        match v {
            Verdict::Violation(sv) => {
                assert_eq!(sv.policy, PolicyRef::nullary("no_write_after_read"));
                assert_eq!(sv.witness.len(), 3); // ⌞φ, #read, #write
                assert!(sv.to_string().contains("no_write_after_read"));
            }
            Verdict::Valid => panic!("expected a violation"),
        }
    }

    #[test]
    fn violation_outside_framing_is_ok() {
        // write then read inside the frame: harmless order.
        assert!(check("frame no_write_after_read [ #write; #read ]").is_valid());
        // read-write entirely before the framing opens is a violation of
        // history dependence once the framing *does* open:
        assert!(!check("#read; #write; frame no_write_after_read [ #noop ]").is_valid());
        // but closing the frame before the write is fine:
        assert!(check("frame no_write_after_read [ #read ]; #write").is_valid());
    }

    #[test]
    fn branch_sensitive_checking() {
        // Only one branch violates: angelic semantics would avoid it, but
        // validity of the expression requires *all* histories valid.
        let v = check("frame no_write_after_read [ #read; ext[safe -> eps | risky -> #write] ]");
        assert!(!v.is_valid());
        let v = check("frame no_write_after_read [ #read; ext[safe -> eps | risky -> #noop] ]");
        assert!(v.is_valid());
    }

    #[test]
    fn recursion_with_bounded_policy() {
        // A loop firing `tick` twice violates at_most_1_tick.
        let v = check("frame at_most_1_tick [ mu h. int[go -> #tick; h | stop -> eps] ]");
        assert!(!v.is_valid());
        // One tick is fine.
        let v = check("frame at_most_1_tick [ int[go -> #tick; int[stop -> eps]] ]");
        assert!(v.is_valid());
    }

    #[test]
    fn open_with_policy_activates_it() {
        // open r phi φ { … } activates φ for the session body.
        let v = check("open 1 phi no_write_after_read { int[a -> #read; #write] }");
        assert!(!v.is_valid());
        let v = check("open 1 phi no_write_after_read { int[a -> #write; #read] }");
        assert!(v.is_valid());
        // Without the policy the same body is unconstrained.
        let v = check("open 1 { int[a -> #read; #write] }");
        assert!(v.is_valid());
    }

    #[test]
    fn nested_framings_multiset_depth() {
        // φ⟦ φ⟦ ε ⟧ · read · write ⟧: after the inner close φ is still
        // active (depth 1), so the violation is caught.
        let v = check(
            "frame no_write_after_read [ frame no_write_after_read [ #noop ]; #read; #write ]",
        );
        assert!(!v.is_valid());
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let h = parse_hist("frame ghost [ #a ]").unwrap();
        let err = check_validity(h, |x: &Hist| successors(x), &reg(), 1000).unwrap_err();
        assert!(matches!(err, ValidityError::Policy(_)));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn bound_exceeded_reported() {
        let h = parse_hist("frame no_write_after_read [ #a; #b; #c; #d ]").unwrap();
        let err = check_validity(h, |x: &Hist| successors(x), &reg(), 2).unwrap_err();
        assert!(matches!(err, ValidityError::BoundExceeded(2)));
    }

    #[test]
    fn valid_expression_with_no_policies() {
        assert!(check("#read; #write; #read").is_valid());
    }
}
