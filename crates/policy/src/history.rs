//! Execution histories `η ∈ (Ev ∪ Frm)*` and their validity (§3.1).
//!
//! A history interleaves access events with framing actions `⌞φ` / `⌟φ`.
//! The paper's notions implemented here:
//!
//! * `η♭` — the *flattening*, erasing all framing actions;
//! * `AP(η)` — the **multiset** of active policies;
//! * *balance* — framings are well nested; executions only ever produce
//!   prefixes of balanced histories;
//! * *validity* `⊨ η` — for every split `η = η₀η₁` and every
//!   `φ ∈ AP(η₀)`, the flattened prefix `η₀♭` respects `φ`
//!   (history-dependence: the automaton reads the history from the very
//!   beginning, not from the framing opening).

use std::collections::BTreeMap;
use std::fmt;

use crate::registry::{PolicyError, PolicyRegistry};
use sufs_hexpr::{Event, PolicyRef};

/// One element of a history: an access event or a framing action.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HistoryItem {
    /// An access event `α`.
    Ev(Event),
    /// An opening framing `⌞φ`.
    Open(PolicyRef),
    /// A closing framing `⌟φ`.
    Close(PolicyRef),
}

impl fmt::Display for HistoryItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryItem::Ev(e) => write!(f, "{e}"),
            HistoryItem::Open(p) => write!(f, "⌞{p}"),
            HistoryItem::Close(p) => write!(f, "⌟{p}"),
        }
    }
}

/// An execution history: a sequence of events and framing actions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct History(Vec<HistoryItem>);

impl History {
    /// The empty history `ε`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an access event.
    pub fn push_event(&mut self, e: Event) {
        self.0.push(HistoryItem::Ev(e));
    }

    /// Appends an opening framing `⌞φ`.
    pub fn push_open(&mut self, p: PolicyRef) {
        self.0.push(HistoryItem::Open(p));
    }

    /// Appends a closing framing `⌟φ`.
    pub fn push_close(&mut self, p: PolicyRef) {
        self.0.push(HistoryItem::Close(p));
    }

    /// Appends any item.
    pub fn push(&mut self, item: HistoryItem) {
        self.0.push(item);
    }

    /// The items, in order.
    pub fn items(&self) -> &[HistoryItem] {
        &self.0
    }

    /// The number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty history.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The flattening `η♭`: the events with all framings erased.
    pub fn flatten(&self) -> Vec<&Event> {
        self.0
            .iter()
            .filter_map(|i| match i {
                HistoryItem::Ev(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// The multiset `AP(η)` of active policies, as a map from policy
    /// reference to activation count.
    ///
    /// Closings without a matching opening are ignored, matching the
    /// paper's `AP(⌟φ η) = AP(η) \ {φ}` on multisets.
    pub fn active_policies(&self) -> BTreeMap<PolicyRef, usize> {
        let mut ap: BTreeMap<PolicyRef, usize> = BTreeMap::new();
        for item in &self.0 {
            match item {
                HistoryItem::Ev(_) => {}
                HistoryItem::Open(p) => *ap.entry(p.clone()).or_insert(0) += 1,
                HistoryItem::Close(p) => {
                    if let Some(n) = ap.get_mut(p) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            ap.remove(p);
                        }
                    }
                }
            }
        }
        ap
    }

    /// Returns `true` if the history is *balanced*: framings are well
    /// nested and all closed.
    pub fn is_balanced(&self) -> bool {
        let mut stack: Vec<&PolicyRef> = Vec::new();
        for item in &self.0 {
            match item {
                HistoryItem::Ev(_) => {}
                HistoryItem::Open(p) => stack.push(p),
                HistoryItem::Close(p) => match stack.pop() {
                    Some(open) if open == p => {}
                    _ => return false,
                },
            }
        }
        stack.is_empty()
    }

    /// Returns `true` if the history is a prefix of some balanced
    /// history: closings match openings in a well-nested way, but
    /// openings may still be pending. Executions only produce such
    /// histories.
    pub fn is_balanced_prefix(&self) -> bool {
        let mut stack: Vec<&PolicyRef> = Vec::new();
        for item in &self.0 {
            match item {
                HistoryItem::Ev(_) => {}
                HistoryItem::Open(p) => stack.push(p),
                HistoryItem::Close(p) => match stack.pop() {
                    Some(open) if open == p => {}
                    _ => return false,
                },
            }
        }
        true
    }

    /// The stack of framings opened but not yet closed, outermost
    /// first. Appending `Close` items for these in *reverse* order
    /// balances the history — the frame-flushing `Φ` of rule *Close*,
    /// applied to a whole history; fault recovery uses this to close
    /// every dangling policy window before restarting a component.
    pub fn pending_opens(&self) -> Vec<PolicyRef> {
        let mut stack: Vec<PolicyRef> = Vec::new();
        for item in &self.0 {
            match item {
                HistoryItem::Ev(_) => {}
                HistoryItem::Open(p) => stack.push(p.clone()),
                HistoryItem::Close(p) => {
                    if stack.last() == Some(p) {
                        stack.pop();
                    }
                }
            }
        }
        stack
    }

    /// Validity `⊨ η` (§3.1): every prefix `η₀` must satisfy every policy
    /// in `AP(η₀)` on the flattened prefix `η₀♭`.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if a referenced policy cannot be
    /// resolved in `registry`.
    pub fn is_valid(&self, registry: &PolicyRegistry) -> Result<bool, PolicyError> {
        Ok(self.first_violation(registry)?.is_none())
    }

    /// Like [`History::is_valid`], but returns the earliest offending
    /// prefix: `Some((prefix_len, φ))` means the prefix of that length is
    /// the first invalid one, with `φ` the violated active policy.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if a referenced policy cannot be
    /// resolved in `registry`.
    pub fn first_violation(
        &self,
        registry: &PolicyRegistry,
    ) -> Result<Option<(usize, PolicyRef)>, PolicyError> {
        // History dependence: each instance reads every event from the
        // very beginning of the history, so all instances are created up
        // front and fed the full event stream; activation depth only
        // gates *when violations matter*.
        let mut instances = BTreeMap::new();
        for item in &self.0 {
            if let HistoryItem::Open(p) | HistoryItem::Close(p) = item {
                if !instances.contains_key(p) {
                    let inst = registry.instantiate(p)?;
                    let init = inst.initial();
                    instances.insert(p.clone(), (inst, init, 0usize));
                }
            }
        }
        for (len, item) in self.0.iter().enumerate() {
            match item {
                HistoryItem::Ev(e) => {
                    for (_, (inst, states, _)) in instances.iter_mut() {
                        *states = inst.step(states, e);
                    }
                }
                HistoryItem::Open(p) => {
                    if let Some((_, _, depth)) = instances.get_mut(p) {
                        *depth += 1;
                    }
                }
                HistoryItem::Close(p) => {
                    if let Some((_, _, depth)) = instances.get_mut(p) {
                        *depth = depth.saturating_sub(1);
                    }
                }
            }
            for (pref, (inst, states, depth)) in instances.iter() {
                if *depth > 0 && inst.offends(states) {
                    return Ok(Some((len + 1, pref.clone())));
                }
            }
        }
        Ok(None)
    }
}

impl FromIterator<HistoryItem> for History {
    fn from_iter<T: IntoIterator<Item = HistoryItem>>(iter: T) -> Self {
        History(iter.into_iter().collect())
    }
}

impl Extend<HistoryItem> for History {
    fn extend<T: IntoIterator<Item = HistoryItem>>(&mut self, iter: T) {
        self.0.extend(iter);
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn reg() -> PolicyRegistry {
        let mut r = PolicyRegistry::new();
        r.register(catalog::no_after("read", "write"));
        r
    }

    fn phi() -> PolicyRef {
        PolicyRef::nullary("no_write_after_read")
    }

    fn ev(name: &str) -> HistoryItem {
        HistoryItem::Ev(Event::nullary(name))
    }

    #[test]
    fn flatten_erases_framings() {
        let h: History = [
            ev("a"),
            HistoryItem::Open(phi()),
            ev("b"),
            HistoryItem::Close(phi()),
        ]
        .into_iter()
        .collect();
        let flat: Vec<String> = h.flatten().iter().map(|e| e.to_string()).collect();
        assert_eq!(flat, vec!["#a", "#b"]);
    }

    #[test]
    fn active_policies_multiset() {
        let mut h = History::new();
        h.push_open(phi());
        h.push_open(phi());
        assert_eq!(h.active_policies()[&phi()], 2);
        h.push_close(phi());
        assert_eq!(h.active_policies()[&phi()], 1);
        h.push_close(phi());
        assert!(h.active_policies().is_empty());
    }

    #[test]
    fn balance_detection() {
        let mut h = History::new();
        assert!(h.is_balanced());
        h.push_open(phi());
        assert!(!h.is_balanced());
        assert!(h.is_balanced_prefix());
        h.push_close(phi());
        assert!(h.is_balanced());

        let bad: History = [HistoryItem::Close(phi())].into_iter().collect();
        assert!(!bad.is_balanced_prefix());
    }

    #[test]
    fn crossing_framings_are_not_balanced() {
        let psi = PolicyRef::nullary("psi");
        let h: History = [
            HistoryItem::Open(phi()),
            HistoryItem::Open(psi.clone()),
            HistoryItem::Close(phi()),
            HistoryItem::Close(psi),
        ]
        .into_iter()
        .collect();
        assert!(!h.is_balanced());
    }

    #[test]
    fn pending_opens_tracks_the_frame_stack() {
        let psi = PolicyRef::nullary("psi");
        let mut h = History::new();
        assert!(h.pending_opens().is_empty());
        h.push_open(phi());
        h.push_open(psi.clone());
        assert_eq!(h.pending_opens(), vec![phi(), psi.clone()]);
        h.push_close(psi.clone());
        assert_eq!(h.pending_opens(), vec![phi()]);
        // Closing in reverse order balances the history.
        for p in h.pending_opens().into_iter().rev() {
            h.push_close(p);
        }
        assert!(h.is_balanced());
    }

    #[test]
    fn validity_active_violation_detected() {
        // ⌞φ read write … : the write occurs while φ is active.
        let h: History = [HistoryItem::Open(phi()), ev("read"), ev("write")]
            .into_iter()
            .collect();
        let reg = reg();
        assert!(!h.is_valid(&reg).unwrap());
        let (len, p) = h.first_violation(&reg).unwrap().unwrap();
        assert_eq!(len, 3);
        assert_eq!(p, phi());
    }

    #[test]
    fn validity_outside_framing_is_fine() {
        // read write ⌞φ … : the violation happened *before* φ activates
        // — but history dependence means opening φ *after* read·write is
        // itself a violation (the whole past must respect φ).
        let h: History = [ev("read"), ev("write"), HistoryItem::Open(phi())]
            .into_iter()
            .collect();
        let reg = reg();
        assert!(!h.is_valid(&reg).unwrap());

        // Whereas with the framing closed before the write, all is well:
        // ⌞φ read ⌟φ write (the paper's Lϕ γ Mϕ α β example).
        let h: History = [
            HistoryItem::Open(phi()),
            ev("read"),
            HistoryItem::Close(phi()),
            ev("write"),
        ]
        .into_iter()
        .collect();
        assert!(h.is_valid(&reg).unwrap());
    }

    #[test]
    fn history_dependence_on_opening() {
        // read ⌞φ write: read precedes the framing but still counts.
        let h: History = [ev("read"), HistoryItem::Open(phi()), ev("write")]
            .into_iter()
            .collect();
        assert!(!h.is_valid(&reg()).unwrap());
    }

    #[test]
    fn nested_same_policy_stays_active() {
        // ⌞φ ⌞φ ⌟φ read write: after one close the policy is still active
        // (multiset semantics), so the violation is caught.
        let h: History = [
            HistoryItem::Open(phi()),
            HistoryItem::Open(phi()),
            HistoryItem::Close(phi()),
            ev("read"),
            ev("write"),
        ]
        .into_iter()
        .collect();
        assert!(!h.is_valid(&reg()).unwrap());
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let ghost = PolicyRef::nullary("ghost");
        let h: History = [HistoryItem::Open(ghost)].into_iter().collect();
        assert!(h.is_valid(&PolicyRegistry::new()).is_err());
    }

    #[test]
    fn empty_history_is_valid() {
        assert!(History::new().is_valid(&reg()).unwrap());
        assert_eq!(History::new().to_string(), "ε");
    }

    #[test]
    fn display_shows_frames() {
        let h: History = [
            HistoryItem::Open(phi()),
            ev("read"),
            HistoryItem::Close(phi()),
        ]
        .into_iter()
        .collect();
        let s = h.to_string();
        assert!(s.contains("⌞no_write_after_read"));
        assert!(s.contains("#read"));
        assert!(s.contains("⌟no_write_after_read"));
    }
}
