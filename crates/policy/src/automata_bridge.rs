//! Bridging policy instances to the generic automata substrate: over a
//! *finite ground alphabet* (the events a system can actually fire — a
//! finite set, since services are finite syntax), an instantiated usage
//! automaton denotes an ordinary regular language of forbidden traces.
//!
//! This enables the standard automata toolbox on policies:
//!
//! * [`to_nfa`] / [`to_dfa`] — export the instance's forbidden-trace
//!   language over the given alphabet;
//! * [`subsumes`] — policy implication: `φ₁` subsumes `φ₂` (over an
//!   alphabet) when every trace forbidden by `φ₂` is already forbidden
//!   by `φ₁`, i.e. `L(φ₂) ⊆ L(φ₁)`. A plan verified under a subsuming
//!   (stricter) policy therefore stays valid under the subsumed one;
//! * [`equivalent`] — language equality of two instances.

use crate::instance::PolicyInstance;
use sufs_automata::{Dfa, Nfa};
use sufs_hexpr::Event;

/// Exports the forbidden-trace language of a policy instance as an NFA
/// over the given ground alphabet.
///
/// Trap-style completion is preserved: once offending, every extension
/// is offending (matching [`PolicyInstance::forbids`]'s prefix check, a
/// state that offends gains self-loops on the whole alphabet).
pub fn to_nfa(instance: &PolicyInstance, alphabet: &[Event]) -> Nfa<Event> {
    let mut nfa = Nfa::new();
    // Subset-construct over the instance's own state sets, which keeps
    // the default self-loop semantics exact.
    use std::collections::{BTreeSet, HashMap, VecDeque};
    let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
    let start = instance.initial();
    let q0 = nfa.add_state();
    nfa.set_start(q0);
    if instance.offends(&start) {
        nfa.set_final(q0);
    }
    index.insert(start.clone(), q0);
    let mut queue = VecDeque::from([start]);
    while let Some(set) = queue.pop_front() {
        let from = index[&set];
        if instance.offends(&set) {
            // Offending is absorbing for `forbids`: self-loop on all.
            for e in alphabet {
                nfa.add_transition(from, e.clone(), from);
            }
            continue;
        }
        for e in alphabet {
            let next = instance.step(&set, e);
            let to = match index.get(&next) {
                Some(&id) => id,
                None => {
                    let id = nfa.add_state();
                    if instance.offends(&next) {
                        nfa.set_final(id);
                    }
                    index.insert(next.clone(), id);
                    queue.push_back(next);
                    id
                }
            };
            nfa.add_transition(from, e.clone(), to);
        }
    }
    nfa
}

/// Exports the forbidden-trace language as a DFA (the construction of
/// [`to_nfa`] is already deterministic; this determinises and completes
/// it for the boolean operations).
pub fn to_dfa(instance: &PolicyInstance, alphabet: &[Event]) -> Dfa<Event> {
    to_nfa(instance, alphabet).determinize().complete()
}

/// Policy implication over a ground alphabet: `stricter` subsumes
/// `weaker` iff every trace forbidden by `weaker` is forbidden by
/// `stricter` (`L(weaker) ⊆ L(stricter)`).
pub fn subsumes(stricter: &PolicyInstance, weaker: &PolicyInstance, alphabet: &[Event]) -> bool {
    let s = to_dfa(stricter, alphabet);
    let w = to_dfa(weaker, alphabet);
    // L(w) ⊆ L(s)  ⟺  L(w) ∩ ¬L(s) = ∅
    w.intersect(&s.complement()).language_is_empty()
}

/// Language equality of two instances over a ground alphabet.
pub fn equivalent(a: &PolicyInstance, b: &PolicyInstance, alphabet: &[Event]) -> bool {
    to_dfa(a, alphabet).equivalent(&to_dfa(b, alphabet))
}

/// The ground event alphabet of a whole system: the union of the events
/// syntactically occurring in the given behaviours (e.g. a client plus
/// every published service) — the right alphabet for [`subsumes`] and
/// [`equivalent`] when comparing policies *for that system*.
pub fn system_alphabet<'a, I>(behaviours: I) -> Vec<Event>
where
    I: IntoIterator<Item = &'a sufs_hexpr::Hist>,
{
    let mut out = std::collections::BTreeSet::new();
    for h in behaviours {
        out.extend(h.events());
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::registry::PolicyRegistry;
    use sufs_hexpr::{ParamValue, PolicyRef};

    fn hotel_alphabet() -> Vec<Event> {
        let mut out = Vec::new();
        for id in 1..=4i64 {
            out.push(Event::new("sgn", [id]));
        }
        for p in [45i64, 50, 70, 90] {
            out.push(Event::new("p", [p]));
        }
        for t in [80i64, 90, 100] {
            out.push(Event::new("ta", [t]));
        }
        out
    }

    fn hotel_instance(bl: &[i64], p: i64, t: i64) -> PolicyInstance {
        let mut reg = PolicyRegistry::new();
        reg.register(catalog::hotel_policy());
        reg.instantiate(&PolicyRef::new(
            "hotel",
            [
                ParamValue::set(bl.to_vec()),
                ParamValue::int(p),
                ParamValue::int(t),
            ],
        ))
        .unwrap()
    }

    #[test]
    fn exported_language_matches_forbids() {
        let inst = hotel_instance(&[1], 45, 100);
        let alphabet = hotel_alphabet();
        let dfa = to_dfa(&inst, &alphabet);
        // Exhaustively compare on all traces of length ≤ 2 plus the
        // paper's three-event hotel traces.
        let mut words: Vec<Vec<Event>> = vec![vec![]];
        for a in &alphabet {
            words.push(vec![a.clone()]);
            for b in &alphabet {
                words.push(vec![a.clone(), b.clone()]);
            }
        }
        for (id, p, t) in [
            (1i64, 45i64, 80i64),
            (2, 70, 100),
            (3, 90, 100),
            (4, 50, 90),
        ] {
            words.push(vec![
                Event::new("sgn", [id]),
                Event::new("p", [p]),
                Event::new("ta", [t]),
            ]);
        }
        for w in words {
            assert_eq!(
                dfa.accepts(w.iter().cloned()),
                inst.forbids(w.iter()),
                "disagreement on {w:?}"
            );
        }
    }

    #[test]
    fn larger_blacklist_subsumes_smaller() {
        let alphabet = hotel_alphabet();
        let strict = hotel_instance(&[1, 3], 45, 100);
        let lax = hotel_instance(&[1], 45, 100);
        assert!(subsumes(&strict, &lax, &alphabet));
        assert!(!subsumes(&lax, &strict, &alphabet));
    }

    #[test]
    fn threshold_monotonicity() {
        let alphabet = hotel_alphabet();
        // Lower price cap forbids more.
        let strict = hotel_instance(&[], 40, 100);
        let lax = hotel_instance(&[], 70, 100);
        assert!(subsumes(&strict, &lax, &alphabet));
        assert!(!subsumes(&lax, &strict, &alphabet));
        // Incomparable instantiations subsume in neither direction.
        let a = hotel_instance(&[1], 90, 80);
        let b = hotel_instance(&[2], 45, 100);
        assert!(!subsumes(&a, &b, &alphabet));
        assert!(!subsumes(&b, &a, &alphabet));
    }

    #[test]
    fn equivalence_is_instantiation_sensitive() {
        let alphabet = hotel_alphabet();
        let a = hotel_instance(&[1], 45, 100);
        let b = hotel_instance(&[1], 45, 100);
        assert!(equivalent(&a, &b, &alphabet));
        let c = hotel_instance(&[2], 45, 100);
        assert!(!equivalent(&a, &c, &alphabet));
        // Thresholds that no alphabet event distinguishes collapse: a
        // price cap of 44 and 40 behave identically on {45,50,70,90}.
        let d = hotel_instance(&[1], 44, 100);
        let e = hotel_instance(&[1], 40, 100);
        assert!(equivalent(&d, &e, &alphabet));
    }

    #[test]
    fn system_alphabet_collects_events() {
        use sufs_hexpr::parse_hist;
        let a = parse_hist("#sgn(1); ext[x -> #p(45)]").unwrap();
        let b = parse_hist("#sgn(1); #ta(80)").unwrap();
        let alpha = system_alphabet([&a, &b]);
        let names: Vec<String> = alpha.iter().map(|e| e.to_string()).collect();
        assert_eq!(names, vec!["#p(45)", "#sgn(1)", "#ta(80)"]);
        // Policy comparison over a system alphabet: with the paper's
        // hotel events from S1–S4 the blacklist ordering shows up.
        let strict = hotel_instance(&[1, 3], 45, 100);
        let lax = hotel_instance(&[1], 45, 100);
        let system: Vec<sufs_hexpr::Hist> = (1..=4i64)
            .map(|i| parse_hist(&format!("#sgn({i}); #p(50); #ta(90)")).unwrap())
            .collect();
        let alpha = system_alphabet(system.iter());
        assert!(subsumes(&strict, &lax, &alpha));
    }

    #[test]
    fn offending_is_absorbing_in_export() {
        let inst = hotel_instance(&[1], 45, 100);
        let alphabet = hotel_alphabet();
        let dfa = to_dfa(&inst, &alphabet);
        // Once black-listed, any continuation stays forbidden.
        let mut w = vec![Event::new("sgn", [1i64])];
        assert!(dfa.accepts(w.iter().cloned()));
        w.push(Event::new("p", [45i64]));
        w.push(Event::new("ta", [100i64]));
        assert!(dfa.accepts(w.iter().cloned()));
    }
}
