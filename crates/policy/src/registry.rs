//! The policy registry: resolves policy references `φ(v̄)` to runnable
//! instances.

use std::collections::BTreeMap;
use std::fmt;

use crate::instance::{InstantiationError, PolicyInstance};
use crate::usage::UsageAutomaton;
use sufs_hexpr::PolicyRef;

/// An error raised when resolving a [`PolicyRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// No automaton registered under the referenced name.
    Unknown(String),
    /// The automaton exists but the actual parameters do not fit.
    Instantiation(InstantiationError),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Unknown(name) => write!(f, "unknown policy {name}"),
            PolicyError::Instantiation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<InstantiationError> for PolicyError {
    fn from(e: InstantiationError) -> Self {
        PolicyError::Instantiation(e)
    }
}

/// A registry of named parametric usage automata.
///
/// # Examples
///
/// ```
/// use sufs_policy::{catalog, registry::PolicyRegistry};
/// use sufs_hexpr::{ParamValue, PolicyRef};
///
/// let mut reg = PolicyRegistry::new();
/// reg.register(catalog::hotel_policy());
/// let phi = PolicyRef::new("hotel", [
///     ParamValue::set([1i64]), ParamValue::int(45), ParamValue::int(100),
/// ]);
/// let inst = reg.instantiate(&phi)?;
/// assert_eq!(inst.reference(), &phi);
/// # Ok::<(), sufs_policy::registry::PolicyError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PolicyRegistry {
    automata: BTreeMap<String, UsageAutomaton>,
}

impl PolicyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry preloaded with every [`crate::catalog`] policy
    /// (the hotel policy plus `no_after("read","write")` under their
    /// catalogue names).
    pub fn with_catalog() -> Self {
        let mut reg = Self::new();
        reg.register(crate::catalog::hotel_policy());
        reg.register(crate::catalog::no_after("read", "write"));
        reg
    }

    /// Registers an automaton under its own name, replacing any previous
    /// automaton with that name (the old one is returned).
    pub fn register(&mut self, automaton: UsageAutomaton) -> Option<UsageAutomaton> {
        self.automata.insert(automaton.name().to_owned(), automaton)
    }

    /// Looks up an automaton by name.
    pub fn get(&self, name: &str) -> Option<&UsageAutomaton> {
        self.automata.get(name)
    }

    /// Unregisters the automaton with `name`, returning it if it was
    /// registered. Histories referencing a removed policy fail to
    /// resolve from then on, exactly like any other unknown policy.
    pub fn remove(&mut self, name: &str) -> Option<UsageAutomaton> {
        self.automata.remove(name)
    }

    /// The number of registered automata.
    pub fn len(&self) -> usize {
        self.automata.len()
    }

    /// Returns `true` if no automata are registered.
    pub fn is_empty(&self) -> bool {
        self.automata.is_empty()
    }

    /// Resolves a policy reference to a runnable instance.
    ///
    /// # Errors
    ///
    /// [`PolicyError::Unknown`] if the name is unregistered,
    /// [`PolicyError::Instantiation`] on arity mismatch.
    pub fn instantiate(&self, reference: &PolicyRef) -> Result<PolicyInstance, PolicyError> {
        let ua = self
            .automata
            .get(reference.name())
            .ok_or_else(|| PolicyError::Unknown(reference.name().to_owned()))?;
        Ok(PolicyInstance::new(ua.clone(), reference.clone())?)
    }

    /// Iterates over the registered automata in name order.
    pub fn iter(&self) -> impl Iterator<Item = &UsageAutomaton> {
        self.automata.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use sufs_hexpr::ParamValue;

    #[test]
    fn register_and_lookup() {
        let mut reg = PolicyRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.register(catalog::hotel_policy()).is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.get("hotel").is_some());
        assert!(reg.get("nope").is_none());
        // Re-registering returns the old automaton.
        assert!(reg.register(catalog::hotel_policy()).is_some());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.iter().count(), 1);
    }

    #[test]
    fn unknown_policy_error() {
        let reg = PolicyRegistry::new();
        let err = reg.instantiate(&PolicyRef::nullary("ghost")).unwrap_err();
        assert_eq!(err, PolicyError::Unknown("ghost".into()));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn arity_error_is_propagated() {
        let mut reg = PolicyRegistry::new();
        reg.register(catalog::hotel_policy());
        let bad = PolicyRef::new("hotel", [ParamValue::int(45)]);
        let err = reg.instantiate(&bad).unwrap_err();
        assert!(matches!(err, PolicyError::Instantiation(_)));
    }

    #[test]
    fn with_catalog_is_preloaded() {
        let reg = PolicyRegistry::with_catalog();
        assert!(reg.get("hotel").is_some());
        assert!(reg.get("no_write_after_read").is_some());
    }
}
