//! Parametric usage automata (Bartoletti \[3\], used by the paper as the
//! policy language, e.g. the automaton `φ(bl, p, t)` of Fig. 1).
//!
//! A usage automaton is a finite automaton whose transitions are labelled
//! by an event name and a [`Guard`] over the event's arguments and the
//! automaton's formal parameters. Following the *default-accept*
//! discipline, its final states accept exactly the **forbidden** traces:
//! a history respects the policy iff the automaton never reaches a final
//! state on it. Events with no matching transition leave the state
//! unchanged (the implicit self-loops drawn as `*` in Fig. 1).

use std::fmt;

use crate::guard::Guard;
use sufs_hexpr::EventName;

/// A named state of a usage automaton.
pub type StateId = usize;

/// One guarded transition of a usage automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageTransition {
    /// Source state.
    pub from: StateId,
    /// The event name the transition reacts to; `None` is a wildcard
    /// matching every event (the explicit `*` edges).
    pub event: Option<EventName>,
    /// The guard on the event's arguments.
    pub guard: Guard,
    /// Target state.
    pub to: StateId,
}

/// A parametric usage automaton: the policy `φ(params…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageAutomaton {
    name: String,
    params: Vec<String>,
    num_states: usize,
    start: StateId,
    finals: Vec<StateId>,
    transitions: Vec<UsageTransition>,
}

/// An error raised when assembling an ill-formed usage automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsageError {
    /// A transition or marker refers to a state that was never added.
    UnknownState(StateId),
    /// A guard mentions a parameter not declared by the automaton.
    UndeclaredParam(String),
    /// The automaton has no states.
    NoStates,
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsageError::UnknownState(q) => write!(f, "unknown state q{q}"),
            UsageError::UndeclaredParam(p) => write!(f, "undeclared parameter {p}"),
            UsageError::NoStates => write!(f, "usage automaton has no states"),
        }
    }
}

impl std::error::Error for UsageError {}

/// A builder for [`UsageAutomaton`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct UsageBuilder {
    name: String,
    params: Vec<String>,
    num_states: usize,
    start: StateId,
    finals: Vec<StateId>,
    transitions: Vec<UsageTransition>,
}

impl UsageBuilder {
    /// Starts building an automaton called `name` with the given formal
    /// parameters.
    pub fn new<I, P>(name: impl Into<String>, params: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<String>,
    {
        UsageBuilder {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            num_states: 0,
            start: 0,
            finals: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds a state; the first state added is the start state by default.
    pub fn state(&mut self) -> StateId {
        let id = self.num_states;
        self.num_states += 1;
        id
    }

    /// Overrides the start state.
    pub fn start(&mut self, q: StateId) -> &mut Self {
        self.start = q;
        self
    }

    /// Marks a state as final ("offending": reached only by forbidden
    /// traces).
    pub fn offending(&mut self, q: StateId) -> &mut Self {
        self.finals.push(q);
        self
    }

    /// Adds a guarded transition on events named `event`.
    pub fn on(
        &mut self,
        from: StateId,
        event: impl Into<EventName>,
        guard: Guard,
        to: StateId,
    ) -> &mut Self {
        self.transitions.push(UsageTransition {
            from,
            event: Some(event.into()),
            guard,
            to,
        });
        self
    }

    /// Adds a wildcard transition firing on any event satisfying `guard`.
    pub fn on_any(&mut self, from: StateId, guard: Guard, to: StateId) -> &mut Self {
        self.transitions.push(UsageTransition {
            from,
            event: None,
            guard,
            to,
        });
        self
    }

    /// Finishes the automaton, validating state references and parameter
    /// usage.
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] if the automaton is ill-formed.
    pub fn build(&self) -> Result<UsageAutomaton, UsageError> {
        if self.num_states == 0 {
            return Err(UsageError::NoStates);
        }
        if self.start >= self.num_states {
            return Err(UsageError::UnknownState(self.start));
        }
        for &q in &self.finals {
            if q >= self.num_states {
                return Err(UsageError::UnknownState(q));
            }
        }
        for t in &self.transitions {
            if t.from >= self.num_states {
                return Err(UsageError::UnknownState(t.from));
            }
            if t.to >= self.num_states {
                return Err(UsageError::UnknownState(t.to));
            }
            for p in t.guard.params() {
                if !self.params.iter().any(|q| q == p) {
                    return Err(UsageError::UndeclaredParam(p.to_owned()));
                }
            }
        }
        Ok(UsageAutomaton {
            name: self.name.clone(),
            params: self.params.clone(),
            num_states: self.num_states,
            start: self.start,
            finals: self.finals.clone(),
            transitions: self.transitions.clone(),
        })
    }
}

impl UsageAutomaton {
    /// The policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The formal parameter names, in declaration order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The number of states.
    pub fn len(&self) -> usize {
        self.num_states
    }

    /// Returns `true` if the automaton has no states (never: `build`
    /// rejects that).
    pub fn is_empty(&self) -> bool {
        self.num_states == 0
    }

    /// The start state.
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// Returns `true` if `q` is an offending (final) state.
    pub fn is_offending(&self, q: StateId) -> bool {
        self.finals.contains(&q)
    }

    /// All transitions.
    pub fn transitions(&self) -> &[UsageTransition] {
        &self.transitions
    }

    /// A shortest *structural* path from the start state to an offending
    /// state, ignoring guard satisfiability: the sequence of transitions a
    /// forbidden trace would have to fire. `None` if no offending state is
    /// even graph-reachable — the policy cannot forbid anything.
    ///
    /// Used by diagnostics to explain *how* a policy would trip; whether
    /// the path is actually realisable by some system is a separate
    /// (language-level) question.
    pub fn structural_offending_path(&self) -> Option<Vec<&UsageTransition>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.num_states];
        let mut seen = vec![false; self.num_states];
        seen[self.start] = true;
        let mut queue = std::collections::VecDeque::from([self.start]);
        while let Some(q) = queue.pop_front() {
            if self.is_offending(q) {
                let mut path = Vec::new();
                let mut cur = q;
                while let Some(t) = parent[cur] {
                    path.push(&self.transitions[t]);
                    cur = self.transitions[t].from;
                }
                path.reverse();
                return Some(path);
            }
            for (i, t) in self.transitions.iter().enumerate() {
                if t.from == q && !seen[t.to] {
                    seen[t.to] = true;
                    parent[t.to] = Some(i);
                    queue.push_back(t.to);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{CmpOp, Guard, Operand};

    #[test]
    fn builder_produces_valid_automaton() {
        let mut b = UsageBuilder::new("phi", ["bl", "p", "t"]);
        let q1 = b.state();
        let q2 = b.state();
        let q6 = b.state();
        b.on(q1, "sgn", Guard::NotInSet(0, "bl".into()), q2);
        b.on(q1, "sgn", Guard::InSet(0, "bl".into()), q6);
        b.offending(q6);
        let ua = b.build().unwrap();
        assert_eq!(ua.name(), "phi");
        assert_eq!(ua.params(), &["bl", "p", "t"]);
        assert_eq!(ua.len(), 3);
        assert_eq!(ua.start_state(), q1);
        assert!(ua.is_offending(q6));
        assert!(!ua.is_offending(q2));
        assert_eq!(ua.transitions().len(), 2);
        assert!(!ua.is_empty());
    }

    #[test]
    fn undeclared_param_rejected() {
        let mut b = UsageBuilder::new("phi", ["p"]);
        let q = b.state();
        b.on(q, "e", Guard::Cmp(0, CmpOp::Le, Operand::param("q")), q);
        assert_eq!(b.build(), Err(UsageError::UndeclaredParam("q".into())));
    }

    #[test]
    fn unknown_state_rejected() {
        let mut b = UsageBuilder::new("phi", Vec::<String>::new());
        let q = b.state();
        b.on(q, "e", Guard::True, 7);
        assert_eq!(b.build(), Err(UsageError::UnknownState(7)));
        let mut b2 = UsageBuilder::new("phi", Vec::<String>::new());
        b2.state();
        b2.offending(3);
        assert_eq!(b2.build(), Err(UsageError::UnknownState(3)));
    }

    #[test]
    fn no_states_rejected() {
        let b = UsageBuilder::new("phi", Vec::<String>::new());
        assert_eq!(b.build(), Err(UsageError::NoStates));
        assert_eq!(
            UsageError::NoStates.to_string(),
            "usage automaton has no states"
        );
    }

    #[test]
    fn wildcard_transitions() {
        let mut b = UsageBuilder::new("any", Vec::<String>::new());
        let q0 = b.state();
        let q1 = b.state();
        b.on_any(q0, Guard::True, q1);
        let ua = b.build().unwrap();
        assert_eq!(ua.transitions()[0].event, None);
    }
}
