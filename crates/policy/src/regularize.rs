//! The framing regularisation of \[5,4\] (§3.1 of the paper).
//!
//! Validity of history expressions is *non-regular* because security
//! framings nest: `φ⟦ … φ⟦ … ⟧ … ⟧` generates context-free bracket
//! structure. The paper recalls the semantic-preserving transformation
//! of Bartoletti–Degano–Ferrari that removes the context-free aspects:
//! "it suffices recording the opening of policies, and removing those
//! already opened and their corresponding closures, in a stack-like
//! fashion" — once `φ` is active, re-opening it neither strengthens nor
//! weakens the constraint (the multiset `AP` only needs its *support*),
//! so inner same-policy framings are redundant.
//!
//! [`regularize`] rewrites an expression so that no framing for `φ`
//! occurs inside another framing for the same `φ`. After the rewrite,
//! along any single path, at most one opening per policy is pending —
//! the bracket structure is flat per policy, i.e. regular — while
//! validity is preserved (checked by the `validity_preserved` tests and
//! the `regularisation` ablation bench).

use sufs_hexpr::{Hist, PolicyRef};

/// Removes framings for policies that are already active at that point
/// of the expression.
///
/// The result is semantically equivalent for validity purposes: a
/// history of the original expression is valid iff the corresponding
/// history of the regularised one is.
///
/// # Examples
///
/// ```
/// use sufs_hexpr::parse_hist;
/// use sufs_policy::regularize::regularize;
///
/// let h = parse_hist("frame p [ #a; frame p [ #b ]; #c ]").unwrap();
/// let r = regularize(&h);
/// assert_eq!(r, parse_hist("frame p [ #a; #b; #c ]").unwrap());
/// ```
pub fn regularize(h: &Hist) -> Hist {
    rewrite(h, &mut Vec::new())
}

fn rewrite(h: &Hist, active: &mut Vec<PolicyRef>) -> Hist {
    match h {
        Hist::Eps | Hist::Var(_) | Hist::Ev(_) | Hist::CloseTok(..) | Hist::FrameCloseTok(_) => {
            h.clone()
        }
        Hist::Mu(v, body) => Hist::Mu(v.clone(), Box::new(rewrite(body, active))),
        Hist::Ext(bs) => Hist::Ext(
            bs.iter()
                .map(|(c, k)| (c.clone(), rewrite(k, active)))
                .collect(),
        ),
        Hist::Int(bs) => Hist::Int(
            bs.iter()
                .map(|(c, k)| (c.clone(), rewrite(k, active)))
                .collect(),
        ),
        Hist::Seq(a, b) => Hist::seq(rewrite(a, active), rewrite(b, active)),
        Hist::Req { id, policy, body } => {
            let pushed = match policy {
                Some(p) if !active.contains(p) => {
                    active.push(p.clone());
                    true
                }
                _ => false,
            };
            let body = rewrite(body, active);
            if pushed {
                active.pop();
            }
            // A session policy already active could in principle be
            // dropped too, but `open_{r,φ}` also *names* the session;
            // only the redundant φ is elided by keeping the request and
            // clearing its (redundant) policy.
            let policy = match policy {
                Some(p) if pushed => Some(p.clone()),
                Some(_) => None,
                None => None,
            };
            Hist::Req {
                id: *id,
                policy,
                body: Box::new(body),
            }
        }
        Hist::Framed(p, body) => {
            if active.contains(p) {
                // Redundant: φ is already being enforced here.
                rewrite(body, active)
            } else {
                active.push(p.clone());
                let body = rewrite(body, active);
                active.pop();
                Hist::framed(p.clone(), body)
            }
        }
    }
}

/// The maximum same-policy framing nesting depth of an expression: `0`
/// for no framings, and `1` for a fully regularised expression that has
/// any. (Different policies may still nest — that is regular.)
pub fn same_policy_nesting(h: &Hist) -> usize {
    fn walk(h: &Hist, active: &mut Vec<PolicyRef>, worst: &mut usize) {
        match h {
            Hist::Eps
            | Hist::Var(_)
            | Hist::Ev(_)
            | Hist::CloseTok(..)
            | Hist::FrameCloseTok(_) => {}
            Hist::Mu(_, body) => walk(body, active, worst),
            Hist::Ext(bs) | Hist::Int(bs) => {
                for (_, k) in bs {
                    walk(k, active, worst);
                }
            }
            Hist::Seq(a, b) => {
                walk(a, active, worst);
                walk(b, active, worst);
            }
            Hist::Req { policy, body, .. } => {
                if let Some(p) = policy {
                    active.push(p.clone());
                    let depth = active.iter().filter(|q| *q == p).count();
                    *worst = (*worst).max(depth);
                    walk(body, active, worst);
                    active.pop();
                } else {
                    walk(body, active, worst);
                }
            }
            Hist::Framed(p, body) => {
                active.push(p.clone());
                let depth = active.iter().filter(|q| *q == p).count();
                *worst = (*worst).max(depth);
                walk(body, active, worst);
                active.pop();
            }
        }
    }
    let mut worst = 0;
    walk(h, &mut Vec::new(), &mut worst);
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::registry::PolicyRegistry;
    use crate::validity::check_validity;
    use sufs_hexpr::parse_hist;
    use sufs_hexpr::semantics::successors;

    fn reg() -> PolicyRegistry {
        let mut r = PolicyRegistry::new();
        r.register(catalog::no_after("read", "write"));
        r.register(catalog::at_most("tick", 1));
        r
    }

    fn check(h: &Hist) -> bool {
        check_validity(h.clone(), |x: &Hist| successors(x), &reg(), 1 << 20)
            .unwrap()
            .is_valid()
    }

    #[test]
    fn removes_directly_nested_duplicate() {
        let h = parse_hist("frame p [ frame p [ #a ] ]").unwrap();
        assert_eq!(regularize(&h), parse_hist("frame p [ #a ]").unwrap());
    }

    #[test]
    fn keeps_distinct_policies() {
        let h = parse_hist("frame p [ frame q [ #a ] ]").unwrap();
        assert_eq!(regularize(&h), h);
    }

    #[test]
    fn keeps_sequential_reopenings() {
        // Closing then reopening is NOT redundant (φ is inactive between).
        let h = parse_hist("frame p [ #a ]; frame p [ #b ]").unwrap();
        assert_eq!(regularize(&h), h);
    }

    #[test]
    fn removes_duplicates_through_requests() {
        let h = parse_hist("open 1 phi p { ext[x -> frame p [ #a ]] }").unwrap();
        let r = regularize(&h);
        assert_eq!(r, parse_hist("open 1 phi p { ext[x -> #a] }").unwrap());
    }

    #[test]
    fn nesting_measure() {
        let nested = parse_hist("frame p [ frame p [ frame p [ #a ] ] ]").unwrap();
        assert_eq!(same_policy_nesting(&nested), 3);
        assert_eq!(same_policy_nesting(&regularize(&nested)), 1);
        assert_eq!(same_policy_nesting(&parse_hist("#a").unwrap()), 0);
    }

    #[test]
    fn validity_preserved_on_samples() {
        let sources = [
            // invalid: read-write inside the policy
            "frame no_write_after_read [ #read; frame no_write_after_read [ #write ] ]",
            // valid: the violation-shaped events never co-occur actively
            "frame no_write_after_read [ #write; frame no_write_after_read [ #read ] ]",
            // invalid through the inner frame only
            "frame at_most_1_tick [ #tick; frame at_most_1_tick [ #tick ] ]",
            // valid single tick, deeply framed
            "frame at_most_1_tick [ frame at_most_1_tick [ #tick ] ]",
            // mixed policies
            "frame no_write_after_read [ frame at_most_1_tick [ #read; #tick ]; #noop ]",
        ];
        for src in sources {
            let h = parse_hist(src).unwrap();
            let r = regularize(&h);
            assert_eq!(check(&h), check(&r), "validity changed for {src}");
            assert!(same_policy_nesting(&r) <= 1, "not flat for {src}");
        }
    }

    #[test]
    fn idempotent() {
        let h = parse_hist("frame p [ #a; frame p [ #b; frame q [ frame p [ #c ] ] ] ]").unwrap();
        let once = regularize(&h);
        assert_eq!(regularize(&once), once);
    }

    #[test]
    fn state_space_shrinks() {
        // Each redundant framing adds ⌞/⌟ states; regularisation trims
        // them.
        let mut h = parse_hist("#a").unwrap();
        for _ in 0..6 {
            h = Hist::framed(sufs_hexpr::PolicyRef::nullary("p"), h);
        }
        let before = sufs_hexpr::HistLts::build(&h).unwrap().len();
        let after = sufs_hexpr::HistLts::build(&regularize(&h)).unwrap().len();
        assert!(after < before, "expected shrink: {after} < {before}");
    }
}
