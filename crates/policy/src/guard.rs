//! Guards on usage-automaton transitions.
//!
//! A transition of a parametric usage automaton fires on an event whose
//! name matches and whose arguments satisfy the guard. Guards compare an
//! event argument against a *formal parameter* of the policy (bound to an
//! actual value at instantiation time, e.g. the black list `bl` or the
//! thresholds `p`, `t` of Fig. 1) or against a literal constant.

use std::collections::BTreeMap;
use std::fmt;

use sufs_hexpr::{Event, ParamValue, Value};

/// The right-hand side of a comparison: a formal parameter (resolved at
/// instantiation) or a literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A formal parameter of the policy, by name.
    Param(String),
    /// A literal scalar.
    Lit(Value),
}

impl Operand {
    /// A formal parameter operand.
    pub fn param(name: impl Into<String>) -> Self {
        Operand::Param(name.into())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Param(p) => write!(f, "{p}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// A comparison operator on scalar values.
///
/// Integers compare numerically; strings compare only for (in)equality —
/// an ordered comparison between a string and anything is simply false,
/// keeping guard evaluation total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        };
        f.write_str(s)
    }
}

/// A guard over the arguments of an event.
///
/// `ArgIdx`-style references select event arguments positionally:
/// `Cmp(0, Le, Param("p"))` reads "the first argument is at most `p`",
/// matching the paper's `α_p(y), y ≤ p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// Always true (a bare event-name match).
    True,
    /// The `idx`-th argument is a member of the set parameter.
    InSet(usize, String),
    /// The `idx`-th argument is *not* a member of the set parameter.
    NotInSet(usize, String),
    /// Compare the `idx`-th argument with an operand.
    Cmp(usize, CmpOp, Operand),
    /// Conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Disjunction.
    Or(Box<Guard>, Box<Guard>),
    /// Negation.
    Not(Box<Guard>),
}

impl Guard {
    /// Conjunction helper.
    pub fn and(self, other: Guard) -> Guard {
        Guard::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Guard) -> Guard {
        Guard::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Guard {
        Guard::Not(Box::new(self))
    }

    /// The formal parameters mentioned by the guard.
    pub fn params(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Guard::True => {}
            Guard::InSet(_, p) | Guard::NotInSet(_, p) => out.push(p),
            Guard::Cmp(_, _, Operand::Param(p)) => out.push(p),
            Guard::Cmp(_, _, Operand::Lit(_)) => {}
            Guard::And(a, b) | Guard::Or(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Guard::Not(a) => a.collect_params(out),
        }
    }

    /// Evaluates the guard on a ground event under a parameter
    /// environment. Missing arguments, missing parameters and
    /// kind mismatches make the guard false (evaluation is total).
    pub fn eval(&self, event: &Event, env: &BTreeMap<String, ParamValue>) -> bool {
        match self {
            Guard::True => true,
            Guard::InSet(idx, p) => match (event.args().get(*idx), env.get(p)) {
                (Some(v), Some(ParamValue::Set(s))) => s.contains(v),
                _ => false,
            },
            Guard::NotInSet(idx, p) => match (event.args().get(*idx), env.get(p)) {
                (Some(v), Some(ParamValue::Set(s))) => !s.contains(v),
                _ => false,
            },
            Guard::Cmp(idx, op, operand) => {
                let Some(lhs) = event.args().get(*idx) else {
                    return false;
                };
                let rhs = match operand {
                    Operand::Lit(v) => v.clone(),
                    Operand::Param(p) => match env.get(p) {
                        Some(ParamValue::Scalar(v)) => v.clone(),
                        _ => return false,
                    },
                };
                compare(lhs, *op, &rhs)
            }
            Guard::And(a, b) => a.eval(event, env) && b.eval(event, env),
            Guard::Or(a, b) => a.eval(event, env) || b.eval(event, env),
            Guard::Not(a) => !a.eval(event, env),
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::True => write!(f, "true"),
            Guard::InSet(i, p) => write!(f, "x{i} ∈ {p}"),
            Guard::NotInSet(i, p) => write!(f, "x{i} ∉ {p}"),
            Guard::Cmp(i, op, o) => write!(f, "x{i} {op} {o}"),
            Guard::And(a, b) => write!(f, "({a} ∧ {b})"),
            Guard::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Guard::Not(a) => write!(f, "¬({a})"),
        }
    }
}

fn compare(lhs: &Value, op: CmpOp, rhs: &Value) -> bool {
    match op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        _ => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            },
            // Ordered comparisons involving strings are false: guards
            // stay total without inventing a string ordering.
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, ParamValue)]) -> BTreeMap<String, ParamValue> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn true_guard() {
        let e = Event::nullary("a");
        assert!(Guard::True.eval(&e, &BTreeMap::new()));
    }

    #[test]
    fn set_membership() {
        let env = env(&[("bl", ParamValue::set([1i64, 2]))]);
        let in_bl = Guard::InSet(0, "bl".into());
        let not_in_bl = Guard::NotInSet(0, "bl".into());
        assert!(in_bl.eval(&Event::new("sgn", [1i64]), &env));
        assert!(!in_bl.eval(&Event::new("sgn", [3i64]), &env));
        assert!(not_in_bl.eval(&Event::new("sgn", [3i64]), &env));
        assert!(!not_in_bl.eval(&Event::new("sgn", [2i64]), &env));
    }

    #[test]
    fn comparisons_against_params() {
        let env = env(&[("p", ParamValue::int(45))]);
        let le = Guard::Cmp(0, CmpOp::Le, Operand::param("p"));
        let gt = Guard::Cmp(0, CmpOp::Gt, Operand::param("p"));
        assert!(le.eval(&Event::new("price", [45i64]), &env));
        assert!(le.eval(&Event::new("price", [10i64]), &env));
        assert!(!le.eval(&Event::new("price", [46i64]), &env));
        assert!(gt.eval(&Event::new("price", [46i64]), &env));
    }

    #[test]
    fn comparisons_against_literals() {
        let g = Guard::Cmp(0, CmpOp::Eq, Operand::Lit(Value::str("admin")));
        assert!(g.eval(
            &Event::new("login", [Value::str("admin")]),
            &BTreeMap::new()
        ));
        assert!(!g.eval(
            &Event::new("login", [Value::str("guest")]),
            &BTreeMap::new()
        ));
    }

    #[test]
    fn missing_argument_is_false() {
        let g = Guard::Cmp(2, CmpOp::Eq, Operand::Lit(Value::Int(1)));
        assert!(!g.eval(&Event::new("e", [1i64]), &BTreeMap::new()));
    }

    #[test]
    fn missing_parameter_is_false() {
        let g = Guard::Cmp(0, CmpOp::Le, Operand::param("nope"));
        assert!(!g.eval(&Event::new("e", [1i64]), &BTreeMap::new()));
        let g = Guard::InSet(0, "nope".into());
        assert!(!g.eval(&Event::new("e", [1i64]), &BTreeMap::new()));
    }

    #[test]
    fn kind_mismatch_is_false() {
        // Scalar param used as set.
        let env = env(&[("p", ParamValue::int(1))]);
        assert!(!Guard::InSet(0, "p".into()).eval(&Event::new("e", [1i64]), &env));
        // Ordered comparison against a string.
        let g = Guard::Cmp(0, CmpOp::Lt, Operand::Lit(Value::str("zzz")));
        assert!(!g.eval(&Event::new("e", [1i64]), &env));
    }

    #[test]
    fn boolean_connectives() {
        let env = env(&[("p", ParamValue::int(10))]);
        let lt = Guard::Cmp(0, CmpOp::Lt, Operand::param("p"));
        let ge = Guard::Cmp(0, CmpOp::Ge, Operand::param("p"));
        let e5 = Event::new("e", [5i64]);
        assert!(lt.clone().or(ge.clone()).eval(&e5, &env));
        assert!(!lt.clone().and(ge.clone()).eval(&e5, &env));
        assert!(ge.not().eval(&e5, &env));
    }

    #[test]
    fn params_are_collected() {
        let g = Guard::InSet(0, "bl".into()).and(Guard::Cmp(1, CmpOp::Le, Operand::param("p")));
        let mut ps = g.params();
        ps.sort_unstable();
        assert_eq!(ps, vec!["bl", "p"]);
    }

    #[test]
    fn display_is_readable() {
        let g = Guard::InSet(0, "bl".into()).and(Guard::Cmp(1, CmpOp::Gt, Operand::param("p")));
        assert_eq!(g.to_string(), "(x0 ∈ bl ∧ x1 > p)");
    }
}
