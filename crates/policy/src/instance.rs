//! Instantiated policies: a usage automaton with its formal parameters
//! bound to actual values, runnable on ground events.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::usage::{StateId, UsageAutomaton};
use sufs_hexpr::{Event, ParamValue, PolicyRef};

/// An error raised when instantiating a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstantiationError {
    /// The reference supplies a different number of actuals than the
    /// automaton declares formals.
    ArityMismatch {
        /// The policy name.
        name: String,
        /// Number of declared formal parameters.
        expected: usize,
        /// Number of supplied actual parameters.
        found: usize,
    },
}

impl fmt::Display for InstantiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiationError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "policy {name} takes {expected} parameter(s), {found} supplied"
            ),
        }
    }
}

impl std::error::Error for InstantiationError {}

/// A policy instance: the automaton plus an environment binding each
/// formal parameter to an actual value.
///
/// Instances run over ground events with *nondeterministic* semantics: a
/// state-set is tracked and an event moves each state along every
/// matching transition; a state with no matching transition stays put
/// (the implicit self-loops of usage automata). The instance *offends* as
/// soon as the state set touches an offending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyInstance {
    automaton: UsageAutomaton,
    env: BTreeMap<String, ParamValue>,
    reference: PolicyRef,
    /// Transition indices grouped by source state, so stepping is
    /// proportional to the out-degree rather than the automaton size.
    by_state: Vec<Vec<usize>>,
}

impl PolicyInstance {
    /// Instantiates `automaton` with the actual parameters of `reference`.
    ///
    /// # Errors
    ///
    /// Returns [`InstantiationError::ArityMismatch`] if the number of
    /// actuals differs from the number of formals.
    pub fn new(
        automaton: UsageAutomaton,
        reference: PolicyRef,
    ) -> Result<PolicyInstance, InstantiationError> {
        if automaton.params().len() != reference.args().len() {
            return Err(InstantiationError::ArityMismatch {
                name: automaton.name().to_owned(),
                expected: automaton.params().len(),
                found: reference.args().len(),
            });
        }
        let env = automaton
            .params()
            .iter()
            .cloned()
            .zip(reference.args().iter().cloned())
            .collect();
        let mut by_state = vec![Vec::new(); automaton.len()];
        for (i, t) in automaton.transitions().iter().enumerate() {
            by_state[t.from].push(i);
        }
        Ok(PolicyInstance {
            automaton,
            env,
            reference,
            by_state,
        })
    }

    /// The policy reference this instance was built from.
    pub fn reference(&self) -> &PolicyRef {
        &self.reference
    }

    /// The initial state set: the singleton start state.
    pub fn initial(&self) -> BTreeSet<StateId> {
        BTreeSet::from([self.automaton.start_state()])
    }

    /// Steps a state set on a ground event.
    pub fn step(&self, states: &BTreeSet<StateId>, event: &Event) -> BTreeSet<StateId> {
        let mut out = BTreeSet::new();
        for &q in states {
            let mut moved = false;
            for &i in &self.by_state[q] {
                let t = &self.automaton.transitions()[i];
                if let Some(name) = &t.event {
                    if name != event.name() {
                        continue;
                    }
                }
                if t.guard.eval(event, &self.env) {
                    out.insert(t.to);
                    moved = true;
                }
            }
            if !moved {
                out.insert(q); // implicit self-loop
            }
        }
        out
    }

    /// Returns `true` if the state set includes an offending state.
    pub fn offends(&self, states: &BTreeSet<StateId>) -> bool {
        states.iter().any(|&q| self.automaton.is_offending(q))
    }

    /// Runs the instance over a whole event trace, returning the final
    /// state set.
    pub fn run<'a, I>(&self, trace: I) -> BTreeSet<StateId>
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut s = self.initial();
        for e in trace {
            s = self.step(&s, e);
        }
        s
    }

    /// Returns `true` if the trace is **forbidden** by the policy, i.e.
    /// some prefix drives the automaton into an offending state.
    ///
    /// Offending states are checked prefix-wise (not only at the end):
    /// once a violation occurs it cannot be unwound by later events, per
    /// the safety reading of policies.
    pub fn forbids<'a, I>(&self, trace: I) -> bool
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut s = self.initial();
        if self.offends(&s) {
            return true;
        }
        for e in trace {
            s = self.step(&s, e);
            if self.offends(&s) {
                return true;
            }
        }
        false
    }

    /// Returns `true` if the trace *respects* the policy (`η♭ ⊨ φ`).
    pub fn respects<'a, I>(&self, trace: I) -> bool
    where
        I: IntoIterator<Item = &'a Event>,
    {
        !self.forbids(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::hotel_policy;
    use crate::guard::Guard;
    use crate::usage::UsageBuilder;

    fn simple_ref() -> PolicyRef {
        PolicyRef::nullary("one_shot")
    }

    /// "the event `fire` may happen at most once"
    fn one_shot() -> UsageAutomaton {
        let mut b = UsageBuilder::new("one_shot", Vec::<String>::new());
        let q0 = b.state();
        let q1 = b.state();
        let q2 = b.state();
        b.on(q0, "fire", Guard::True, q1);
        b.on(q1, "fire", Guard::True, q2);
        b.offending(q2);
        b.build().unwrap()
    }

    #[test]
    fn arity_mismatch_detected() {
        let err = PolicyInstance::new(one_shot(), PolicyRef::new("one_shot", [ParamValue::int(1)]))
            .unwrap_err();
        assert!(matches!(err, InstantiationError::ArityMismatch { .. }));
        assert!(err.to_string().contains("one_shot"));
    }

    #[test]
    fn default_self_loop_on_unmatched_events() {
        let inst = PolicyInstance::new(one_shot(), simple_ref()).unwrap();
        let trace = [Event::nullary("other"), Event::nullary("fire")];
        assert!(inst.respects(trace.iter()));
        let s = inst.run(trace.iter());
        assert_eq!(s, BTreeSet::from([1]));
    }

    #[test]
    fn offending_prefix_detected() {
        let inst = PolicyInstance::new(one_shot(), simple_ref()).unwrap();
        let bad = [
            Event::nullary("fire"),
            Event::nullary("fire"),
            Event::nullary("calm"),
        ];
        assert!(inst.forbids(bad.iter()));
        // ...even though the final state set also matters, the middle
        // prefix alone is already enough:
        assert!(inst.forbids(bad[..2].iter()));
        assert!(inst.respects(bad[..1].iter()));
    }

    #[test]
    fn hotel_policy_fig1_semantics() {
        // φ(bl = {1}, p = 45, t = 100): exactly C1's instantiation.
        let phi = PolicyRef::new(
            "hotel",
            [
                ParamValue::set([1i64]),
                ParamValue::int(45),
                ParamValue::int(100),
            ],
        );
        let inst = PolicyInstance::new(hotel_policy(), phi).unwrap();

        let s1 = [
            Event::new("sgn", [1i64]),
            Event::new("p", [45i64]),
            Event::new("ta", [80i64]),
        ];
        assert!(inst.forbids(s1.iter()), "S1 is black-listed for C1");

        let s3 = [
            Event::new("sgn", [3i64]),
            Event::new("p", [90i64]),
            Event::new("ta", [100i64]),
        ];
        assert!(
            inst.respects(s3.iter()),
            "S3: price 90 > 45 but rating 100 ≥ 100 is acceptable"
        );

        let s4 = [
            Event::new("sgn", [4i64]),
            Event::new("p", [50i64]),
            Event::new("ta", [90i64]),
        ];
        assert!(
            inst.forbids(s4.iter()),
            "S4 violates both thresholds: 50 > 45 and 90 < 100"
        );
    }

    #[test]
    fn hotel_policy_second_client() {
        // φ(bl = {1,3}, p = 40, t = 70): C2's instantiation.
        let phi = PolicyRef::new(
            "hotel",
            [
                ParamValue::set([1i64, 3]),
                ParamValue::int(40),
                ParamValue::int(70),
            ],
        );
        let inst = PolicyInstance::new(hotel_policy(), phi).unwrap();
        let s3 = [
            Event::new("sgn", [3i64]),
            Event::new("p", [90i64]),
            Event::new("ta", [100i64]),
        ];
        assert!(inst.forbids(s3.iter()), "S3 is black-listed for C2");
        let s4 = [
            Event::new("sgn", [4i64]),
            Event::new("p", [50i64]),
            Event::new("ta", [90i64]),
        ];
        assert!(
            inst.respects(s4.iter()),
            "S4: price 50 > 40 but rating 90 ≥ 70 is acceptable for C2"
        );
        let s2 = [
            Event::new("sgn", [2i64]),
            Event::new("p", [70i64]),
            Event::new("ta", [100i64]),
        ];
        assert!(inst.respects(s2.iter()), "S2 satisfies C2's thresholds");
    }
}
