//! Property tests for the quantitative extension: on deterministic
//! (choice-free) expressions the static worst-case accumulated cost
//! equals what the run-time cost monitor observes along the unique
//! trace; on branching expressions the monitor is bounded by the static
//! worst case.

use proptest::prelude::*;

use sufs_hexpr::semantics::successors;
use sufs_hexpr::{Channel, Event, Hist, Label, PolicyRef};
use sufs_policy::cost::{check_cost_bound, CostBound, CostModel, CostMonitor, CostVerdict};

fn wallet() -> PolicyRef {
    PolicyRef::nullary("wallet")
}

fn bound(b: u64) -> CostBound {
    CostBound {
        policy: wallet(),
        model: CostModel::new().by_arg("spend", 0),
        bound: b,
    }
}

/// Choice-free expressions: events and framings in sequence.
fn arb_straightline() -> impl Strategy<Value = Hist> {
    let leaf = (0i64..20).prop_map(|n| Hist::ev(Event::new("spend", [n])));
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Hist::seq(a, b)),
            inner.prop_map(|h| Hist::framed(PolicyRef::nullary("wallet"), h)),
        ]
    })
}

/// Expressions with external choices added on top.
fn arb_branching() -> impl Strategy<Value = Hist> {
    arb_straightline().prop_recursive(3, 12, 2, |inner| {
        (
            proptest::sample::subsequence(vec!["x", "y"], 1..=2),
            proptest::collection::vec(inner, 2),
        )
            .prop_map(|(chans, conts)| {
                let bs: Vec<(Channel, Hist)> =
                    chans.into_iter().map(Channel::new).zip(conts).collect();
                Hist::Ext(bs)
            })
    })
}

/// Follows one maximal path of `h`, feeding every label to the monitor,
/// and returns the maximal accumulated cost observed. Branches are
/// resolved by always taking the `pick`-th successor (mod arity).
fn monitor_max_on_path(h: &Hist, cb: &CostBound, pick: usize) -> u64 {
    let mut monitor = CostMonitor::new(cb.clone());
    let mut state = h.clone();
    let mut max = 0;
    for _ in 0..10_000 {
        let succ = successors(&state);
        if succ.is_empty() {
            break;
        }
        let (label, next): (Label, Hist) = succ[pick % succ.len()].clone();
        monitor.observe(&label);
        max = max.max(monitor.accumulated());
        state = next;
    }
    max
}

proptest! {
    /// Deterministic expressions: static worst == dynamic max.
    #[test]
    fn static_equals_dynamic_on_straightline(h in arb_straightline()) {
        let cb = bound(u64::MAX / 2);
        let CostVerdict::Within { worst } =
            check_cost_bound(&h, &cb, 1 << 18).unwrap()
        else {
            panic!("huge budget cannot be exceeded");
        };
        let observed = monitor_max_on_path(&h, &cb, 0);
        prop_assert_eq!(worst, observed);
    }

    /// Branching expressions: every path's dynamic max is bounded by the
    /// static worst case, and some path attains a positive cost whenever
    /// the worst case is positive on a fair sample of paths.
    #[test]
    fn dynamic_bounded_by_static_on_branching(h in arb_branching(), picks in 0usize..8) {
        let cb = bound(u64::MAX / 2);
        let CostVerdict::Within { worst } =
            check_cost_bound(&h, &cb, 1 << 18).unwrap()
        else {
            panic!("huge budget cannot be exceeded");
        };
        let observed = monitor_max_on_path(&h, &cb, picks);
        prop_assert!(
            observed <= worst,
            "path cost {observed} exceeds static worst {worst}"
        );
    }

    /// The static verdict's threshold behaviour is exact: with the bound
    /// set to `worst`, the expression is within budget; any smaller
    /// bound (when `worst > 0`) is exceeded.
    #[test]
    fn threshold_exactness(h in arb_straightline()) {
        let probe = bound(u64::MAX / 2);
        let CostVerdict::Within { worst } =
            check_cost_bound(&h, &probe, 1 << 18).unwrap()
        else {
            panic!("huge budget cannot be exceeded");
        };
        let at = check_cost_bound(&h, &bound(worst), 1 << 18).unwrap();
        prop_assert!(at.is_within());
        if worst > 0 {
            let below = check_cost_bound(&h, &bound(worst - 1), 1 << 18).unwrap();
            prop_assert!(!below.is_within());
        }
    }
}
