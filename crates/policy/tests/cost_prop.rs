//! Randomised tests for the quantitative extension: on deterministic
//! (choice-free) expressions the static worst-case accumulated cost
//! equals what the run-time cost monitor observes along the unique
//! trace; on branching expressions the monitor is bounded by the static
//! worst case. Every case is deterministic in its seed.

use sufs_hexpr::semantics::successors;
use sufs_hexpr::{Channel, Event, Hist, Label, PolicyRef};
use sufs_policy::cost::{check_cost_bound, CostBound, CostModel, CostMonitor, CostVerdict};
use sufs_rng::{Rng, SeedableRng, StdRng};

fn wallet() -> PolicyRef {
    PolicyRef::nullary("wallet")
}

fn bound(b: u64) -> CostBound {
    CostBound {
        policy: wallet(),
        model: CostModel::new().by_arg("spend", 0),
        bound: b,
    }
}

/// Choice-free expressions: events and framings in sequence.
fn random_straightline(depth: usize, r: &mut StdRng) -> Hist {
    if depth == 0 || r.gen_bool(0.3) {
        return Hist::ev(Event::new("spend", [r.gen_range(0i64..20)]));
    }
    if r.gen_bool(0.5) {
        Hist::seq(
            random_straightline(depth - 1, r),
            random_straightline(depth - 1, r),
        )
    } else {
        Hist::framed(wallet(), random_straightline(depth - 1, r))
    }
}

/// Expressions with external choices added on top.
fn random_branching(depth: usize, r: &mut StdRng) -> Hist {
    if depth == 0 {
        return random_straightline(3, r);
    }
    let chans = r.subsequence(&["x", "y"], 1, 2);
    let bs: Vec<(Channel, Hist)> = chans
        .into_iter()
        .map(|c| (Channel::new(c), random_branching(depth - 1, r)))
        .collect();
    Hist::Ext(bs)
}

/// Follows one maximal path of `h`, feeding every label to the monitor,
/// and returns the maximal accumulated cost observed. Branches are
/// resolved by always taking the `pick`-th successor (mod arity).
fn monitor_max_on_path(h: &Hist, cb: &CostBound, pick: usize) -> u64 {
    let mut monitor = CostMonitor::new(cb.clone());
    let mut state = h.clone();
    let mut max = 0;
    for _ in 0..10_000 {
        let succ = successors(&state);
        if succ.is_empty() {
            break;
        }
        let (label, next): (Label, Hist) = succ[pick % succ.len()].clone();
        monitor.observe(&label);
        max = max.max(monitor.accumulated());
        state = next;
    }
    max
}

const CASES: u64 = 200;

/// Deterministic expressions: static worst == dynamic max.
#[test]
fn static_equals_dynamic_on_straightline() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_straightline(4, &mut r);
        let cb = bound(u64::MAX / 2);
        let CostVerdict::Within { worst } = check_cost_bound(&h, &cb, 1 << 18).unwrap() else {
            panic!("huge budget cannot be exceeded");
        };
        let observed = monitor_max_on_path(&h, &cb, 0);
        assert_eq!(worst, observed, "seed {seed}: {h}");
    }
}

/// Branching expressions: every path's dynamic max is bounded by the
/// static worst case.
#[test]
fn dynamic_bounded_by_static_on_branching() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_branching(3, &mut r);
        let picks = r.gen_range(0usize..8);
        let cb = bound(u64::MAX / 2);
        let CostVerdict::Within { worst } = check_cost_bound(&h, &cb, 1 << 18).unwrap() else {
            panic!("huge budget cannot be exceeded");
        };
        let observed = monitor_max_on_path(&h, &cb, picks);
        assert!(
            observed <= worst,
            "seed {seed}: path cost {observed} exceeds static worst {worst}"
        );
    }
}

/// The static verdict's threshold behaviour is exact: with the bound
/// set to `worst`, the expression is within budget; any smaller bound
/// (when `worst > 0`) is exceeded.
#[test]
fn threshold_exactness() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_straightline(4, &mut r);
        let probe = bound(u64::MAX / 2);
        let CostVerdict::Within { worst } = check_cost_bound(&h, &probe, 1 << 18).unwrap() else {
            panic!("huge budget cannot be exceeded");
        };
        let at = check_cost_bound(&h, &bound(worst), 1 << 18).unwrap();
        assert!(at.is_within(), "seed {seed}");
        if worst > 0 {
            let below = check_cost_bound(&h, &bound(worst - 1), 1 << 18).unwrap();
            assert!(!below.is_within(), "seed {seed}");
        }
    }
}
