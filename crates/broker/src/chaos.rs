//! A deterministic byte-level fault proxy for crash testing.
//!
//! [`ChaosProxy`] sits between a [`crate::BrokerClient`] and a broker,
//! forwarding TCP bytes while injecting transport faults chosen by a
//! seeded RNG: torn frames, mid-frame disconnects, delayed and
//! duplicated tail bytes, garbage injection, and slow-loris trickle.
//! Every fault ends by severing the connection, so a corrupted stream
//! never silently re-synchronises — the client sees a transport error
//! and retries with the same `req_id`, which is exactly the path the
//! idempotency window must make safe.
//!
//! Determinism: connection `i` draws its fault plan from
//! `SplitMix64(seed ⊕ mix(i))`, so a failing test seed replays the
//! identical byte-level schedule every time.
//!
//! For *multi-node* chaos, [`ChaosLink`] is the complementary tool: a
//! proxy with no random schedule but a [`LinkControl`] handle the test
//! drives explicitly — partition/heal, asymmetric blackholing per
//! direction, and added latency. Put one in front of each follower's
//! upstream address and the harness can cut, degrade, and heal every
//! link of a cluster deterministically.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use sufs_rng::{Rng, SeedableRng, StdRng};

/// One fault plan, chosen per proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything untouched.
    None,
    /// Forward only a prefix of the client's bytes, then sever — the
    /// server sees a torn frame.
    TearRequest {
        /// Client bytes forwarded before the cut.
        after_bytes: usize,
    },
    /// Forward the request intact but sever before the server's reply
    /// reaches the client — the canonical dropped-ack.
    DropReply,
    /// Forward a prefix, then inject garbage bytes and sever.
    GarbageThenClose {
        /// Client bytes forwarded before the garbage.
        after_bytes: usize,
    },
    /// Forward the first chunk twice (a duplicated retransmit), then
    /// sever.
    DuplicateThenClose,
    /// Forward byte by byte with a delay between each — a slow-loris
    /// client. The connection survives; only time is lost.
    Trickle {
        /// Sleep between bytes.
        delay: Duration,
        /// Bytes trickled before reverting to normal forwarding.
        bytes: usize,
    },
    /// Hold the first client chunk back until the *second* arrives,
    /// then forward both in swapped order and sever.
    ReorderThenClose,
}

/// Draws the fault plan for connection `index` — public so tests can
/// predict the schedule for a given seed.
pub fn fault_for(seed: u64, index: u64) -> Fault {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    match rng.gen_range(0..10u32) {
        0..=2 => Fault::None,
        3 => Fault::TearRequest {
            after_bytes: rng.gen_range(1..64usize),
        },
        4 => Fault::DropReply,
        5 => Fault::GarbageThenClose {
            after_bytes: rng.gen_range(0..32usize),
        },
        6 => Fault::DuplicateThenClose,
        7 => Fault::Trickle {
            delay: Duration::from_micros(rng.gen_range(50..500u64)),
            bytes: rng.gen_range(8..64usize),
        },
        8 => Fault::ReorderThenClose,
        _ => Fault::DropReply,
    }
}

/// A seeded fault-injecting TCP proxy in front of a broker.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding to the
    /// broker at `upstream` with faults drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, seed: u64) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&connections);
        let acceptor = thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let index = accept_conns.fetch_add(1, Ordering::SeqCst);
                let fault = fault_for(seed, index);
                workers.retain(|w| !w.is_finished());
                workers.push(thread::spawn(move || {
                    let _ = proxy_connection(client, upstream, fault);
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Severs both directions of both sockets.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Runs one proxied connection to completion under its fault plan.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let _ = server.set_nodelay(true);
    let _ = client.set_nodelay(true);

    // Server → client: plain forwarding, except DropReply which severs
    // as soon as the server has anything to say.
    let (srv_read, cli_write) = (server.try_clone()?, client.try_clone()?);
    let (cli_guard, srv_guard) = (client.try_clone()?, server.try_clone()?);
    let drop_reply = fault == Fault::DropReply;
    let downstream = thread::spawn(move || {
        let mut from = srv_read;
        let mut to = cli_write;
        let mut buf = [0u8; 4096];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if drop_reply {
                        // The reply exists (the server committed the
                        // mutation) but the client never sees it.
                        break;
                    }
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        sever(&cli_guard, &srv_guard);
    });

    // Client → server: the faulty direction.
    let result = forward_upstream(&client, &server, fault);
    sever(&client, &server);
    let _ = downstream.join();
    result
}

/// Forwards client bytes to the server under the fault plan.
fn forward_upstream(client: &TcpStream, server: &TcpStream, fault: Fault) -> io::Result<()> {
    let mut from = client.try_clone()?;
    let mut to = server.try_clone()?;
    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    let mut first_chunk: Option<Vec<u8>> = None;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => return Ok(()),
            Ok(n) => n,
        };
        let chunk = &buf[..n];
        match fault {
            Fault::None | Fault::DropReply => to.write_all(chunk)?,
            Fault::TearRequest { after_bytes } => {
                let keep = chunk.len().min(after_bytes.saturating_sub(forwarded));
                to.write_all(&chunk[..keep])?;
                if forwarded + chunk.len() >= after_bytes {
                    return Ok(()); // sever: the frame stays torn
                }
            }
            Fault::GarbageThenClose { after_bytes } => {
                let keep = chunk.len().min(after_bytes.saturating_sub(forwarded));
                to.write_all(&chunk[..keep])?;
                if forwarded + chunk.len() >= after_bytes {
                    // Garbage that can never be a valid frame head: an
                    // oversized length prefix followed by noise.
                    to.write_all(&[0xff, 0xff, 0xff, 0xff, 0xde, 0xad])?;
                    return Ok(());
                }
            }
            Fault::DuplicateThenClose => {
                to.write_all(chunk)?;
                to.write_all(chunk)?;
                return Ok(());
            }
            Fault::Trickle { delay, bytes } => {
                if forwarded >= bytes {
                    to.write_all(chunk)?;
                } else {
                    for (i, b) in chunk.iter().enumerate() {
                        if forwarded + i < bytes {
                            thread::sleep(delay);
                        }
                        to.write_all(std::slice::from_ref(b))?;
                    }
                }
            }
            Fault::ReorderThenClose => match first_chunk.take() {
                None => {
                    first_chunk = Some(chunk.to_vec());
                    // A client that sends one frame and then waits for
                    // its reply would deadlock against us here; give
                    // the second chunk a short window, then sever
                    // (quiet clients degrade to a torn request).
                    from.set_read_timeout(Some(Duration::from_millis(20)))?;
                }
                Some(held) => {
                    to.write_all(chunk)?;
                    to.write_all(&held)?;
                    return Ok(());
                }
            },
        }
        forwarded += n;
    }
}

/// The control handle of a [`ChaosLink`]: flip link conditions while
/// traffic flows. All switches take effect on the next chunk each
/// forwarding thread moves; `partition` additionally severs every live
/// connection, so both ends observe the cut immediately.
#[derive(Debug, Default)]
pub struct LinkControl {
    partitioned: AtomicBool,
    drop_up: AtomicBool,
    drop_down: AtomicBool,
    delay_us: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
}

impl LinkControl {
    /// Cuts the link: live connections are severed, new ones are
    /// refused until [`LinkControl::heal`].
    pub fn partition(&self) {
        self.partitioned.store(true, Ordering::SeqCst);
        let mut conns = self.conns.lock().expect("conns lock");
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Restores the link. Severed connections stay dead — the peers
    /// redial through the healed link, which for a replication follower
    /// means a fresh snapshot bootstrap.
    pub fn heal(&self) {
        self.partitioned.store(false, Ordering::SeqCst);
        self.drop_up.store(false, Ordering::SeqCst);
        self.drop_down.store(false, Ordering::SeqCst);
        self.delay_us.store(0, Ordering::SeqCst);
    }

    /// Asymmetric loss: silently discard bytes flowing client→upstream
    /// (`true` blackholes that direction). The reverse direction keeps
    /// flowing — the classic half-working link.
    pub fn drop_upstream(&self, on: bool) {
        self.drop_up.store(on, Ordering::SeqCst);
    }

    /// Asymmetric loss for the upstream→client direction.
    pub fn drop_downstream(&self, on: bool) {
        self.drop_down.store(on, Ordering::SeqCst);
    }

    /// Adds a per-chunk forwarding delay in both directions — a slow
    /// link that lags a follower without killing it.
    pub fn set_delay(&self, delay: Duration) {
        self.delay_us
            .store(delay.as_micros() as u64, Ordering::SeqCst);
    }

    /// `true` while the link is cut.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    fn register(&self, conn: TcpStream) {
        let mut conns = self.conns.lock().expect("conns lock");
        conns.retain(|c| c.peer_addr().is_ok());
        conns.push(conn);
    }
}

/// A controllable proxy for one network link of a multi-node cluster.
///
/// Unlike [`ChaosProxy`] — which draws a random per-connection fault
/// plan — a `ChaosLink` forwards faithfully until the test flips a
/// switch on its [`LinkControl`]. Blackholed bytes are *discarded*, not
/// delayed: a framed peer that missed part of the stream fails to parse
/// the next frame and redials, which is exactly how the replication
/// protocol is designed to heal.
pub struct ChaosLink {
    addr: SocketAddr,
    control: Arc<LinkControl>,
    upstream: Arc<Mutex<Option<SocketAddr>>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosLink {
    /// Starts a link proxy on an ephemeral loopback port forwarding to
    /// `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr) -> io::Result<ChaosLink> {
        let link = ChaosLink::spawn_floating()?;
        link.set_upstream(upstream);
        Ok(link)
    }

    /// Starts a link proxy with no upstream yet: its address is stable
    /// from birth, and [`ChaosLink::set_upstream`] points (or
    /// re-points) it later. Connections arriving before an upstream is
    /// set are refused. This is what lets a cluster harness give every
    /// node a *fixed* public address across restarts: the node behind
    /// the link can be killed and respawned on a fresh ephemeral port,
    /// and the link simply re-targets.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn_floating() -> io::Result<ChaosLink> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let control = Arc::new(LinkControl::default());
        let upstream: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_control = Arc::clone(&control);
        let accept_upstream = Arc::clone(&upstream);
        let accept_stop = Arc::clone(&stop);
        let acceptor = thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                if accept_control.is_partitioned() {
                    continue; // refused: dropping the stream closes it
                }
                let Some(target) = *accept_upstream.lock().expect("upstream lock") else {
                    continue; // no upstream yet: refused like a partition
                };
                let control = Arc::clone(&accept_control);
                workers.retain(|w| !w.is_finished());
                workers.push(thread::spawn(move || {
                    let _ = link_connection(client, target, &control);
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(ChaosLink {
            addr,
            control,
            upstream,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// Points the link at `upstream`. Live connections keep their old
    /// target; new ones dial the new one.
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *self.upstream.lock().expect("upstream lock") = Some(upstream);
    }

    /// The link's listening address — point the downstream node here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The control handle; clone freely into the test harness.
    pub fn control(&self) -> Arc<LinkControl> {
        Arc::clone(&self.control)
    }
}

impl Drop for ChaosLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.control.partition(); // sever everything in flight
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Direction of travel through a [`ChaosLink`], used to pick which
/// blackhole switch applies.
#[derive(Clone, Copy)]
enum LinkDir {
    /// client → upstream
    Up,
    /// upstream → client
    Down,
}

/// Forwards one direction of a [`ChaosLink`] connection, honouring the
/// control switches per chunk. Severs both sockets on exit so the
/// opposite pump unblocks too.
fn link_forward(mut from: TcpStream, mut to: TcpStream, control: &LinkControl, dir: LinkDir) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if control.is_partitioned() {
                    break;
                }
                let delay = control.delay_us.load(Ordering::SeqCst);
                if delay > 0 {
                    thread::sleep(Duration::from_micros(delay));
                }
                let dropped = match dir {
                    LinkDir::Up => control.drop_up.load(Ordering::SeqCst),
                    LinkDir::Down => control.drop_down.load(Ordering::SeqCst),
                };
                if dropped {
                    continue; // blackhole: bytes vanish
                }
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    sever(&from, &to);
}

/// Runs one proxied connection of a [`ChaosLink`]: dials the upstream,
/// registers both sockets with the control (so `partition()` can sever
/// them mid-flight) and pumps the two directions on separate threads.
fn link_connection(
    client: TcpStream,
    upstream: SocketAddr,
    control: &Arc<LinkControl>,
) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let _ = server.set_nodelay(true);
    let _ = client.set_nodelay(true);
    control.register(client.try_clone()?);
    control.register(server.try_clone()?);

    let up_control = Arc::clone(control);
    let (up_from, up_to) = (client.try_clone()?, server.try_clone()?);
    let up = thread::spawn(move || link_forward(up_from, up_to, &up_control, LinkDir::Up));
    link_forward(server, client, control, LinkDir::Down);
    let _ = up.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let a: Vec<Fault> = (0..32).map(|i| fault_for(0xfeed, i)).collect();
        let b: Vec<Fault> = (0..32).map(|i| fault_for(0xfeed, i)).collect();
        assert_eq!(a, b);
        let c: Vec<Fault> = (0..32).map(|i| fault_for(0xbeef, i)).collect();
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    fn schedule_covers_every_fault_kind() {
        let mut kinds = [false; 7];
        for i in 0..512 {
            let k = match fault_for(42, i) {
                Fault::None => 0,
                Fault::TearRequest { .. } => 1,
                Fault::DropReply => 2,
                Fault::GarbageThenClose { .. } => 3,
                Fault::DuplicateThenClose => 4,
                Fault::Trickle { .. } => 5,
                Fault::ReorderThenClose => 6,
            };
            kinds[k] = true;
        }
        assert!(
            kinds.iter().all(|&k| k),
            "512 draws hit every kind: {kinds:?}"
        );
    }

    #[test]
    fn passthrough_proxy_forwards_bytes_exactly() {
        // An echo server upstream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let echo = thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 256];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 || s.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        // Seed chosen so connection 0 draws Fault::None.
        let seed = (0..).find(|&s| fault_for(s, 0) == Fault::None).unwrap();
        let proxy = ChaosProxy::spawn(upstream, seed).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"hello through the storm").unwrap();
        let mut back = [0u8; 23];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello through the storm");
        drop(conn);
        drop(proxy);
        let _ = echo.join();
    }

    /// Echo server that serves every connection until dropped.
    fn spawn_echo() -> (SocketAddr, JoinHandle<()>, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let echo_stop = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            for stream in listener.incoming() {
                if echo_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut s) = stream else { continue };
                thread::spawn(move || {
                    let mut buf = [0u8; 256];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle, stop)
    }

    fn stop_echo(addr: SocketAddr, handle: JoinHandle<()>, stop: &Arc<AtomicBool>) {
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let _ = handle.join();
    }

    #[test]
    fn link_partition_severs_and_refuses_until_heal() {
        let (upstream, echo, stop) = spawn_echo();
        let link = ChaosLink::spawn(upstream).unwrap();
        let ctl = link.control();

        // Healthy link forwards round trips.
        let mut conn = TcpStream::connect(link.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");

        // Partition: the live connection dies...
        ctl.partition();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let dead = match conn.read(&mut back) {
            Ok(0) | Err(_) => true,
            Ok(_) => false,
        };
        assert!(dead, "partition severs in-flight connections");

        // ...and new dials get no service (accepted-then-closed or refused).
        let mut probe = TcpStream::connect(link.addr()).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        probe.write_all(b"ping").unwrap();
        let refused = match probe.read(&mut back) {
            Ok(0) | Err(_) => true,
            Ok(_) => false,
        };
        assert!(refused, "partitioned link serves no new connections");

        // Heal: fresh connections flow again.
        ctl.heal();
        let mut conn = TcpStream::connect(link.addr()).unwrap();
        conn.write_all(b"pong").unwrap();
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"pong");

        drop(conn);
        drop(link);
        stop_echo(upstream, echo, &stop);
    }

    #[test]
    fn link_blackhole_is_asymmetric() {
        let (upstream, echo, stop) = spawn_echo();
        let link = ChaosLink::spawn(upstream).unwrap();
        let ctl = link.control();

        let mut conn = TcpStream::connect(link.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();

        // Upstream direction blackholed: the echo never hears us.
        ctl.drop_upstream(true);
        conn.write_all(b"lost").unwrap();
        let mut back = [0u8; 4];
        assert!(
            conn.read_exact(&mut back).is_err(),
            "blackholed request produces no echo"
        );

        // Heal the direction: later bytes flow, earlier ones stay lost.
        ctl.drop_upstream(false);
        conn.write_all(b"kept").unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"kept");

        drop(conn);
        drop(link);
        stop_echo(upstream, echo, &stop);
    }
}
