//! A deterministic byte-level fault proxy for crash testing.
//!
//! [`ChaosProxy`] sits between a [`crate::BrokerClient`] and a broker,
//! forwarding TCP bytes while injecting transport faults chosen by a
//! seeded RNG: torn frames, mid-frame disconnects, delayed and
//! duplicated tail bytes, garbage injection, and slow-loris trickle.
//! Every fault ends by severing the connection, so a corrupted stream
//! never silently re-synchronises — the client sees a transport error
//! and retries with the same `req_id`, which is exactly the path the
//! idempotency window must make safe.
//!
//! Determinism: connection `i` draws its fault plan from
//! `SplitMix64(seed ⊕ mix(i))`, so a failing test seed replays the
//! identical byte-level schedule every time.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use sufs_rng::{Rng, SeedableRng, StdRng};

/// One fault plan, chosen per proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything untouched.
    None,
    /// Forward only a prefix of the client's bytes, then sever — the
    /// server sees a torn frame.
    TearRequest {
        /// Client bytes forwarded before the cut.
        after_bytes: usize,
    },
    /// Forward the request intact but sever before the server's reply
    /// reaches the client — the canonical dropped-ack.
    DropReply,
    /// Forward a prefix, then inject garbage bytes and sever.
    GarbageThenClose {
        /// Client bytes forwarded before the garbage.
        after_bytes: usize,
    },
    /// Forward the first chunk twice (a duplicated retransmit), then
    /// sever.
    DuplicateThenClose,
    /// Forward byte by byte with a delay between each — a slow-loris
    /// client. The connection survives; only time is lost.
    Trickle {
        /// Sleep between bytes.
        delay: Duration,
        /// Bytes trickled before reverting to normal forwarding.
        bytes: usize,
    },
    /// Hold the first client chunk back until the *second* arrives,
    /// then forward both in swapped order and sever.
    ReorderThenClose,
}

/// Draws the fault plan for connection `index` — public so tests can
/// predict the schedule for a given seed.
pub fn fault_for(seed: u64, index: u64) -> Fault {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    match rng.gen_range(0..10u32) {
        0..=2 => Fault::None,
        3 => Fault::TearRequest {
            after_bytes: rng.gen_range(1..64usize),
        },
        4 => Fault::DropReply,
        5 => Fault::GarbageThenClose {
            after_bytes: rng.gen_range(0..32usize),
        },
        6 => Fault::DuplicateThenClose,
        7 => Fault::Trickle {
            delay: Duration::from_micros(rng.gen_range(50..500u64)),
            bytes: rng.gen_range(8..64usize),
        },
        8 => Fault::ReorderThenClose,
        _ => Fault::DropReply,
    }
}

/// A seeded fault-injecting TCP proxy in front of a broker.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding to the
    /// broker at `upstream` with faults drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, seed: u64) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&connections);
        let acceptor = thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let index = accept_conns.fetch_add(1, Ordering::SeqCst);
                let fault = fault_for(seed, index);
                workers.retain(|w| !w.is_finished());
                workers.push(thread::spawn(move || {
                    let _ = proxy_connection(client, upstream, fault);
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Severs both directions of both sockets.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Runs one proxied connection to completion under its fault plan.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let _ = server.set_nodelay(true);
    let _ = client.set_nodelay(true);

    // Server → client: plain forwarding, except DropReply which severs
    // as soon as the server has anything to say.
    let (srv_read, cli_write) = (server.try_clone()?, client.try_clone()?);
    let (cli_guard, srv_guard) = (client.try_clone()?, server.try_clone()?);
    let drop_reply = fault == Fault::DropReply;
    let downstream = thread::spawn(move || {
        let mut from = srv_read;
        let mut to = cli_write;
        let mut buf = [0u8; 4096];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if drop_reply {
                        // The reply exists (the server committed the
                        // mutation) but the client never sees it.
                        break;
                    }
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        sever(&cli_guard, &srv_guard);
    });

    // Client → server: the faulty direction.
    let result = forward_upstream(&client, &server, fault);
    sever(&client, &server);
    let _ = downstream.join();
    result
}

/// Forwards client bytes to the server under the fault plan.
fn forward_upstream(client: &TcpStream, server: &TcpStream, fault: Fault) -> io::Result<()> {
    let mut from = client.try_clone()?;
    let mut to = server.try_clone()?;
    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    let mut first_chunk: Option<Vec<u8>> = None;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => return Ok(()),
            Ok(n) => n,
        };
        let chunk = &buf[..n];
        match fault {
            Fault::None | Fault::DropReply => to.write_all(chunk)?,
            Fault::TearRequest { after_bytes } => {
                let keep = chunk.len().min(after_bytes.saturating_sub(forwarded));
                to.write_all(&chunk[..keep])?;
                if forwarded + chunk.len() >= after_bytes {
                    return Ok(()); // sever: the frame stays torn
                }
            }
            Fault::GarbageThenClose { after_bytes } => {
                let keep = chunk.len().min(after_bytes.saturating_sub(forwarded));
                to.write_all(&chunk[..keep])?;
                if forwarded + chunk.len() >= after_bytes {
                    // Garbage that can never be a valid frame head: an
                    // oversized length prefix followed by noise.
                    to.write_all(&[0xff, 0xff, 0xff, 0xff, 0xde, 0xad])?;
                    return Ok(());
                }
            }
            Fault::DuplicateThenClose => {
                to.write_all(chunk)?;
                to.write_all(chunk)?;
                return Ok(());
            }
            Fault::Trickle { delay, bytes } => {
                if forwarded >= bytes {
                    to.write_all(chunk)?;
                } else {
                    for (i, b) in chunk.iter().enumerate() {
                        if forwarded + i < bytes {
                            thread::sleep(delay);
                        }
                        to.write_all(std::slice::from_ref(b))?;
                    }
                }
            }
            Fault::ReorderThenClose => match first_chunk.take() {
                None => {
                    first_chunk = Some(chunk.to_vec());
                    // A client that sends one frame and then waits for
                    // its reply would deadlock against us here; give
                    // the second chunk a short window, then sever
                    // (quiet clients degrade to a torn request).
                    from.set_read_timeout(Some(Duration::from_millis(20)))?;
                }
                Some(held) => {
                    to.write_all(chunk)?;
                    to.write_all(&held)?;
                    return Ok(());
                }
            },
        }
        forwarded += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let a: Vec<Fault> = (0..32).map(|i| fault_for(0xfeed, i)).collect();
        let b: Vec<Fault> = (0..32).map(|i| fault_for(0xfeed, i)).collect();
        assert_eq!(a, b);
        let c: Vec<Fault> = (0..32).map(|i| fault_for(0xbeef, i)).collect();
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    fn schedule_covers_every_fault_kind() {
        let mut kinds = [false; 7];
        for i in 0..512 {
            let k = match fault_for(42, i) {
                Fault::None => 0,
                Fault::TearRequest { .. } => 1,
                Fault::DropReply => 2,
                Fault::GarbageThenClose { .. } => 3,
                Fault::DuplicateThenClose => 4,
                Fault::Trickle { .. } => 5,
                Fault::ReorderThenClose => 6,
            };
            kinds[k] = true;
        }
        assert!(
            kinds.iter().all(|&k| k),
            "512 draws hit every kind: {kinds:?}"
        );
    }

    #[test]
    fn passthrough_proxy_forwards_bytes_exactly() {
        // An echo server upstream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let echo = thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 256];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 || s.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        // Seed chosen so connection 0 draws Fault::None.
        let seed = (0..).find(|&s| fault_for(s, 0) == Fault::None).unwrap();
        let proxy = ChaosProxy::spawn(upstream, seed).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"hello through the storm").unwrap();
        let mut back = [0u8; 23];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello through the storm");
        drop(conn);
        drop(proxy);
        let _ = echo.join();
    }
}
