//! Snapshot compaction for the broker's durable state.
//!
//! The write-ahead journal ([`crate::wal`]) grows with every mutation;
//! past a size/record threshold the broker compacts it into a full
//! snapshot of the live state — repository, policy registry, and the
//! idempotency window — and empties the journal. The swap is atomic:
//! the snapshot is written to a temporary file, fsynced, and
//! `rename(2)`d over the previous one, so a crash at any point leaves
//! either the old snapshot or the new one, never a torn hybrid.
//!
//! Recovery is `load` + journal replay: the snapshot carries the
//! sequence number of the last journal record it covers, and replay
//! skips records at or below it — which also makes the crash window
//! *between* the snapshot rename and the journal truncation harmless.
//!
//! Services are stored as history-expression text (the same
//! [`Display`](std::fmt::Display) form the wire protocol carries);
//! policies are stored as `policy … { … }` scenario declarations
//! rendered by [`policy_text`], so the whole snapshot replays through
//! the same parsers the live `publish` path uses.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use sufs_core::scenario::parse_scenario;
use sufs_hexpr::{parse_hist, Hist};
use sufs_net::Repository;
use sufs_policy::{CmpOp, Guard, Operand, PolicyRegistry, UsageAutomaton};

use crate::json::{self, Json};

/// The snapshot file name inside the state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// The journal file name inside the state directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// A loaded snapshot: the compacted state plus the journal coverage
/// mark.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Sequence number of the last journal record this snapshot
    /// covers; replay skips records with `seq <= covered_seq`.
    pub covered_seq: u64,
    /// The repository at snapshot time.
    pub repository: Repository,
    /// The policy registry at snapshot time.
    pub registry: PolicyRegistry,
    /// The registered client behaviours at snapshot time (the
    /// population the repository-wide lint passes analyze), stored as
    /// history-expression text like services. Absent in pre-PR-7
    /// snapshots, which load as an empty set.
    pub clients: Vec<(String, Hist)>,
    /// The idempotency window at snapshot time: `(req_id, reply)` in
    /// insertion order, so a mutation retried across a snapshot
    /// boundary is still recognised as already applied.
    pub dedup: Vec<(String, Json)>,
}

/// Serialises a usage automaton back into the `policy name(params) {
/// … }` scenario declaration the parser accepts. States are named
/// `q0…qN` by their internal ids; the parser re-materialises them in
/// first-mention order, which renames ids but preserves the automaton
/// graph exactly (start, offending set, transitions and guards).
pub fn policy_text(ua: &UsageAutomaton) -> String {
    let mut out = String::new();
    out.push_str("policy ");
    out.push_str(ua.name());
    if !ua.params().is_empty() {
        out.push('(');
        out.push_str(&ua.params().join(", "));
        out.push(')');
    }
    out.push_str(" {\n");
    out.push_str(&format!("  start q{};\n", ua.start_state()));
    for t in ua.transitions() {
        let event = match &t.event {
            Some(name) => name.as_ref().to_owned(),
            None => "*".to_owned(),
        };
        match guard_text(&t.guard) {
            Some(g) => out.push_str(&format!("  q{} -- {event} if {g} -> q{};\n", t.from, t.to)),
            None => out.push_str(&format!("  q{} -- {event} -> q{};\n", t.from, t.to)),
        }
    }
    let offending: Vec<String> = (0..ua.len())
        .filter(|&q| ua.is_offending(q))
        .map(|q| format!("q{q}"))
        .collect();
    if !offending.is_empty() {
        out.push_str(&format!("  offending {};\n", offending.join(" ")));
    }
    out.push_str("}\n");
    out
}

/// A guard in the scenario grammar; `None` for [`Guard::True`] (a bare
/// transition with no `if` clause).
fn guard_text(guard: &Guard) -> Option<String> {
    match guard {
        Guard::True => None,
        _ => Some(guard_term(guard)),
    }
}

fn guard_term(guard: &Guard) -> String {
    match guard {
        // `true` has no literal in the grammar; `x0 == x0` would be
        // wrong, but True only occurs at the top (handled above) or
        // under And/Or built by code that never nests True there.
        Guard::True => "(x0 == x0)".to_owned(),
        Guard::InSet(i, p) => format!("x{i} in {p}"),
        Guard::NotInSet(i, p) => format!("x{i} not_in {p}"),
        Guard::Cmp(i, op, operand) => {
            let op = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            let rhs = match operand {
                Operand::Param(p) => p.clone(),
                Operand::Lit(v) => v.to_string(),
            };
            format!("x{i} {op} {rhs}")
        }
        Guard::And(a, b) => format!("({} and {})", guard_term(a), guard_term(b)),
        Guard::Or(a, b) => format!("({} or {})", guard_term(a), guard_term(b)),
        Guard::Not(a) => format!("not ({})", guard_term(a)),
    }
}

/// Renders the snapshot JSON document. Besides being what `write`
/// persists, this is the bootstrap payload a replication primary ships
/// to a joining follower, so the wire and disk formats are one format.
pub fn render_doc(
    covered_seq: u64,
    repository: &Repository,
    registry: &PolicyRegistry,
    clients: &[(String, Hist)],
    dedup: &[(String, Json)],
) -> Json {
    let services: Vec<Json> = repository
        .export()
        .map(|(loc, service, capacity)| {
            let entry = Json::obj()
                .with("location", loc.to_string())
                .with("service", service.to_string());
            match capacity {
                Some(cap) => entry.with("capacity", cap),
                None => entry,
            }
        })
        .collect();
    let policies: Vec<Json> = registry
        .iter()
        .map(|ua| Json::str(policy_text(ua)))
        .collect();
    let clients: Vec<Json> = clients
        .iter()
        .map(|(name, hist)| {
            Json::obj()
                .with("name", name.as_str())
                .with("hist", hist.to_string())
        })
        .collect();
    let dedup: Vec<Json> = dedup
        .iter()
        .map(|(id, reply)| {
            Json::obj()
                .with("id", id.as_str())
                .with("reply", reply.clone())
        })
        .collect();
    Json::obj()
        .with("schema_version", 1u64)
        .with("seq", covered_seq)
        .with("services", services)
        .with("policies", policies)
        .with("clients", clients)
        .with("dedup", dedup)
}

/// Writes a snapshot of the given state, atomically replacing any
/// previous one: `write tmp + fsync + rename + fsync(dir)`.
///
/// # Errors
///
/// Propagates I/O errors; on error the previous snapshot (if any) is
/// still intact.
pub fn write(
    dir: &Path,
    covered_seq: u64,
    repository: &Repository,
    registry: &PolicyRegistry,
    clients: &[(String, Hist)],
    dedup: &[(String, Json)],
) -> io::Result<()> {
    let doc = render_doc(covered_seq, repository, registry, clients, dedup).to_string();
    let tmp: PathBuf = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let dst: PathBuf = dir.join(SNAPSHOT_FILE);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(doc.as_bytes())?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &dst)?;
    // Persist the rename itself: fsync the directory entry.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads the snapshot from `dir`, if one exists.
///
/// # Errors
///
/// `Ok(None)` when no snapshot file exists. An *unreadable* snapshot
/// is a hard error: the file was swapped in atomically, so corruption
/// here is not a torn tail but real damage — refusing loudly beats
/// silently recovering an empty repository.
pub fn load(dir: &Path) -> io::Result<Option<Snapshot>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut text = String::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let doc = json::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt snapshot {}: {e}", path.display()),
        )
    })?;
    parse_doc(&doc).map(Some)
}

/// Rebuilds a [`Snapshot`] from its JSON document — the inverse of
/// [`render_doc`]. Used both for the on-disk snapshot and for the
/// bootstrap payload a follower receives over the replication stream.
///
/// # Errors
///
/// `InvalidData` when a required field is missing or a stored service
/// or policy fails to re-parse.
pub fn parse_doc(doc: &Json) -> io::Result<Snapshot> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut snapshot = Snapshot {
        covered_seq: doc
            .u64_field("seq")
            .ok_or_else(|| bad("snapshot lacks a `seq` field".into()))?,
        ..Snapshot::default()
    };
    for entry in doc.get("services").and_then(Json::as_arr).unwrap_or(&[]) {
        let loc = entry
            .str_field("location")
            .ok_or_else(|| bad("snapshot service lacks `location`".into()))?;
        let text = entry
            .str_field("service")
            .ok_or_else(|| bad("snapshot service lacks `service`".into()))?;
        let service = parse_hist(text)
            .map_err(|e| bad(format!("snapshot service at {loc} does not parse: {e}")))?;
        snapshot
            .repository
            .restore(
                loc,
                service,
                entry.u64_field("capacity").map(|c| c as usize),
            )
            .map_err(|e| bad(format!("snapshot service rejected: {e}")))?;
    }
    for entry in doc.get("policies").and_then(Json::as_arr).unwrap_or(&[]) {
        let text = entry
            .as_str()
            .ok_or_else(|| bad("snapshot policy is not a string".into()))?;
        let sc = parse_scenario(text)
            .map_err(|e| bad(format!("snapshot policy does not parse: {e}")))?;
        for ua in sc.registry.iter() {
            snapshot.registry.register(ua.clone());
        }
    }
    for entry in doc.get("clients").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = entry
            .str_field("name")
            .ok_or_else(|| bad("snapshot client lacks `name`".into()))?;
        let text = entry
            .str_field("hist")
            .ok_or_else(|| bad("snapshot client lacks `hist`".into()))?;
        let hist = parse_hist(text)
            .map_err(|e| bad(format!("snapshot client {name} does not parse: {e}")))?;
        snapshot.clients.push((name.to_owned(), hist));
    }
    for entry in doc.get("dedup").and_then(Json::as_arr).unwrap_or(&[]) {
        let id = entry
            .str_field("id")
            .ok_or_else(|| bad("snapshot dedup entry lacks `id`".into()))?;
        let reply = entry
            .get("reply")
            .cloned()
            .ok_or_else(|| bad("snapshot dedup entry lacks `reply`".into()))?;
        snapshot.dedup.push((id.to_owned(), reply));
    }
    Ok(snapshot)
}

/// `true` when `path` (the journal) should be compacted into a
/// snapshot: the journal holds at least `max_records` records or
/// `max_bytes` payload bytes.
pub fn due(records: u64, bytes: u64, max_records: u64, max_bytes: u64) -> bool {
    records >= max_records || bytes >= max_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_policy::catalog;

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sufs-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    /// Round-tripping a policy through the scenario grammar must reach
    /// a fixpoint: parse(text) re-serialises to the identical text
    /// (state ids may be renamed once, then stay stable).
    #[test]
    fn policy_text_round_trips_catalog_policies() {
        for ua in [
            catalog::hotel_policy(),
            catalog::no_after("read", "write"),
            catalog::at_most("tick", 3),
            catalog::blacklist("boom"),
            catalog::must_precede("auth", "pay"),
            catalog::chinese_wall("touch"),
            catalog::separation_of_duty("sign", "audit"),
        ] {
            let once = policy_text(&ua);
            let sc = parse_scenario(&once).unwrap_or_else(|e| panic!("{once}\n{e}"));
            let reparsed = sc.registry.get(ua.name()).expect("policy registered");
            assert_eq!(reparsed.params(), ua.params());
            assert_eq!(reparsed.transitions().len(), ua.transitions().len());
            let twice = policy_text(reparsed);
            let sc2 = parse_scenario(&twice).unwrap();
            let thrice = policy_text(sc2.registry.get(ua.name()).unwrap());
            assert_eq!(twice, thrice, "round-trip of {} is a fixpoint", ua.name());
        }
    }

    #[test]
    fn snapshot_write_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut repo = Repository::new();
        repo.publish("a", parse_hist("ext[x -> eps]").unwrap());
        repo.publish_bounded("b", parse_hist("eps").unwrap(), 2);
        let mut registry = PolicyRegistry::new();
        registry.register(catalog::hotel_policy());
        let dedup = vec![("id-1".to_owned(), Json::obj().with("ok", true))];
        let clients = vec![("c1".to_owned(), parse_hist("int[go -> eps]").unwrap())];
        write(&dir, 42, &repo, &registry, &clients, &dedup).unwrap();

        let snap = load(&dir).unwrap().expect("snapshot exists");
        assert_eq!(snap.covered_seq, 42);
        assert_eq!(snap.repository, repo);
        assert!(snap.registry.get("hotel").is_some());
        assert_eq!(snap.clients, clients);
        assert_eq!(snap.dedup, dedup);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Pre-PR-7 snapshots carry no `clients` field; they load with an
    /// empty client set instead of erroring.
    #[test]
    fn snapshot_without_clients_field_loads_empty() {
        let doc = render_doc(3, &Repository::new(), &PolicyRegistry::new(), &[], &[]);
        let text = doc.to_string().replace(",\"clients\":[]", "");
        let old = crate::json::parse(&text).unwrap();
        assert!(old.get("clients").is_none(), "{text}");
        let snap = parse_doc(&old).unwrap();
        assert!(snap.clients.is_empty());
    }

    #[test]
    fn missing_snapshot_is_none_corrupt_snapshot_is_an_error() {
        let dir = tmp_dir("corrupt");
        assert!(load(&dir).unwrap().is_none());
        fs::write(dir.join(SNAPSHOT_FILE), "{not json").unwrap();
        assert!(load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_swap_replaces_previous_snapshot() {
        let dir = tmp_dir("swap");
        let repo = Repository::new();
        let registry = PolicyRegistry::new();
        write(&dir, 1, &repo, &registry, &[], &[]).unwrap();
        let mut repo2 = Repository::new();
        repo2.publish("s", parse_hist("eps").unwrap());
        write(&dir, 7, &repo2, &registry, &[], &[]).unwrap();
        let snap = load(&dir).unwrap().unwrap();
        assert_eq!(snap.covered_seq, 7);
        assert_eq!(snap.repository.len(), 1);
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn due_thresholds() {
        assert!(!due(3, 100, 10, 1000));
        assert!(due(10, 100, 10, 1000));
        assert!(due(3, 1000, 10, 1000));
    }
}
