//! WAL-shipping replication: primaries stream journal records to
//! followers; followers can be promoted when the primary is lost.
//!
//! # Design
//!
//! Replication reuses the crash-recovery machinery end to end. A
//! follower joining (or *re*-joining) a primary always receives a full
//! snapshot bootstrap — the exact JSON document
//! [`crate::snapshot::write`] persists — followed by the live stream of
//! journal records, each shipped as the same `{seq, req, reply}` tuple
//! the on-disk journal holds. The follower applies every record through
//! the same request handlers startup replay uses, journals it under the
//! *primary's* sequence number, and acknowledges the applied sequence.
//! Because bootstrap replaces the follower's entire state, a node that
//! diverged (e.g. an old primary that applied mutations which never
//! reached quorum before it was killed) converges simply by rejoining:
//! no epochs or truncation protocol are needed for correctness.
//!
//! # Acknowledgement modes
//!
//! Under `AckMode::Local` a mutation is acknowledged once the local
//! fsync completes (PR-5 behaviour). Under `AckMode::Quorum` the reply
//! additionally waits until a majority of the configured cluster —
//! `cluster_size / 2` followers besides the primary itself — has
//! acknowledged the record, and reports the outcome in a `"quorum"`
//! field. A timeout degrades to `"quorum": false` (the mutation *is*
//! applied and journaled locally); clients that need machine-loss
//! durability retry the same `req_id` until they see `"quorum": true` —
//! the idempotency window re-evaluates quorum on every retry, so the
//! retry is cheap and exactly-once.
//!
//! # Ordering
//!
//! Records are broadcast to follower queues *while the WAL append lock
//! is held*, and appends happen while the mutated resource's write lock
//! is held, so every follower observes records in exactly the journal
//! order. Follower registration takes the same resource → dedup → wal →
//! followers lock chain as the snapshotter, which freezes the journal
//! tip while the bootstrap document is rendered: a joining follower can
//! neither miss a record nor receive one twice (records at or below the
//! bootstrap's coverage are skipped by sequence number).
//!
//! # Promotion
//!
//! `promote` severs the follower's upstream link, joins its pull
//! thread, flips the role to primary, and bumps the *cluster epoch*;
//! its journal already continues the primary's numbering, so new
//! mutations extend the same sequence. The new primary's announcer
//! thread then re-points the surviving followers at it — no restarts.
//! Operators (or the chaos harness) promote the follower with the
//! highest `applied_seq`: the stream is a journal prefix, so that
//! follower contains every record any quorum ever acknowledged.
//!
//! # Election
//!
//! With `--election auto` nobody has to run `promote`. A follower
//! whose upstream goes silent for the heartbeat timeout (4 replication
//! ticks) becomes a candidate: it sleeps a seeded random slice of
//! `--election-timeout` (simultaneous detectors converge instead of
//! splitting every vote), bumps its *term* past the highest term or
//! epoch it has seen, votes for itself, and canvasses its known peers
//! with `{"cmd":"vote","term":T,"ballot":B,"node":ID,"epoch":E}` where
//! the ballot `B` is its `applied_seq`. A peer grants iff the
//! candidate's epoch is current, the term is not behind its own, its
//! own upstream is also silent, `(ballot, node)` is at least its own
//! `(applied_seq, advertise)` — highest replicated prefix wins, node
//! id breaks ties — and it has not already voted for someone else in
//! that term (the vote is persisted in `cluster.meta`, so a crashed
//! voter cannot double-vote after restart). A strict majority of the
//! configured cluster — own vote included — promotes the candidate
//! with `epoch = term`.
//!
//! Safety: any vote majority intersects any quorum-ack majority, and
//! the ballot rule means the winner's prefix contains every
//! quorum-acked record; one-vote-per-term plus the epoch check inside
//! promotion gives at most one primary per epoch. Liveness: losers
//! retry with fresh randomized delays, and a candidate that reaches a
//! live primary during the canvass re-points at it instead.
//!
//! The winner's announcer broadcasts `{"cmd":"announce","epoch":E,
//! "primary":ID}`: followers of the dead primary re-point their
//! stream, and a *stale* primary healing from a partition demotes
//! itself on the higher epoch (fencing) — or, if it can dial out but
//! not be dialed, learns the same from the refusal reply to its own
//! announce. Re-joining always bootstraps a full snapshot, so a stale
//! primary's un-replicated tail (never quorum-acked, by majority
//! intersection) is discarded.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sufs_rng::{Rng, SeedableRng, StdRng};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::proto::{self, encode_frame, read_frame, write_frame};
use crate::server::{handle_request_from, BrokerConfig, Shared, Source};
use crate::snapshot;

/// Frames a slow follower may have queued before the primary declares
/// it lost; past this the connection is severed and the follower
/// re-bootstraps when it redials.
const QUEUE_CAP: usize = 65_536;

/// Upper bound on one upstream connection attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Consecutive announce failures before a peer address is dropped from
/// the announcer's target set (it is re-learned if the node ever
/// rejoins the replication stream).
const PEER_PRUNE_FAILURES: u32 = 40;

/// File under the state directory holding the persisted cluster
/// metadata: epoch, term, and the last granted vote. Persisting the
/// vote is what keeps "one vote per term" true across a crash-restart
/// inside a single election.
pub(crate) const META_FILE: &str = "cluster.meta";

/// Whether followers elect a new primary on their own when the
/// upstream dies, or wait for an operator's `promote`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionMode {
    /// PR-6 behaviour: promotion is an explicit operator action.
    Manual,
    /// Followers that lose the upstream heartbeat run a seeded
    /// randomized-timeout election; the winner promotes itself and the
    /// losers re-point their replication stream at it.
    Auto,
}

impl ElectionMode {
    /// Parses the `--election` CLI value.
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "manual" => Ok(ElectionMode::Manual),
            "auto" => Ok(ElectionMode::Auto),
            other => Err(format!(
                "unknown election mode `{other}` (want auto|manual)"
            )),
        }
    }

    /// The wire/CLI name of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            ElectionMode::Manual => "manual",
            ElectionMode::Auto => "auto",
        }
    }
}

/// How a mutation is acknowledged to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Acknowledge after the local WAL fsync (single-node durability).
    Local,
    /// Additionally wait for a majority of the configured cluster to
    /// acknowledge the record; the reply's `"quorum"` field reports
    /// whether the wait succeeded within the timeout.
    Quorum,
}

impl AckMode {
    /// Parses the `--ack` CLI value.
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "local" => Ok(AckMode::Local),
            "quorum" => Ok(AckMode::Quorum),
            other => Err(format!("unknown ack mode `{other}` (want local|quorum)")),
        }
    }

    /// The wire/CLI name of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            AckMode::Local => "local",
            AckMode::Quorum => "quorum",
        }
    }
}

/// Which side of the replication stream this broker is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations and serves `replicate` streams.
    Primary,
    /// Applies the upstream's records; rejects client mutations with
    /// `not_primary`.
    Follower {
        /// The primary's address, re-dialled until promotion.
        upstream: String,
    },
}

impl Role {
    /// The wire name of this role.
    pub fn name(&self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower { .. } => "follower",
        }
    }
}

/// Primary-side state for one connected follower.
pub(crate) struct FollowerConn {
    /// The follower's peer address, for `stats`.
    pub(crate) peer: String,
    /// The replication connection; the writer thread drains `queue`
    /// into it, the `serve_replica` thread reads acks from it.
    stream: TcpStream,
    /// Encoded record frames awaiting the writer thread.
    queue: Mutex<VecDeque<Vec<u8>>>,
    qcv: Condvar,
    /// Abandon: stop shipping, drop the queue.
    closed: AtomicBool,
    /// Drain: ship everything queued, then stop.
    draining: AtomicBool,
    /// Highest sequence number the follower acknowledged.
    pub(crate) acked_seq: AtomicU64,
    /// Highest sequence number queued for shipping.
    pub(crate) sent_seq: AtomicU64,
    /// Ship times of in-flight records, popped on ack to feed the
    /// replication-latency histogram.
    inflight: Mutex<VecDeque<(u64, Instant)>>,
    /// The address *other nodes* can dial this follower at, from its
    /// `replicate` handshake; feeds the heartbeat peer list and lets
    /// the announcer skip nodes that already follow us.
    pub(crate) advertise: Option<String>,
}

impl FollowerConn {
    fn new(peer: String, stream: TcpStream, baseline_seq: u64, advertise: Option<String>) -> Self {
        FollowerConn {
            peer,
            stream,
            queue: Mutex::new(VecDeque::new()),
            qcv: Condvar::new(),
            closed: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            acked_seq: AtomicU64::new(0),
            sent_seq: AtomicU64::new(baseline_seq),
            inflight: Mutex::new(VecDeque::new()),
            advertise,
        }
    }

    fn enqueue(&self, seq: u64, frame: &[u8]) {
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.len() >= QUEUE_CAP {
            // The follower is too far behind to catch up by streaming;
            // sever so it re-bootstraps from a fresh snapshot instead
            // of growing an unbounded queue on the primary.
            drop(queue);
            self.abandon();
            return;
        }
        queue.push_back(frame.to_vec());
        self.sent_seq.store(seq, Ordering::SeqCst);
        self.inflight
            .lock()
            .expect("inflight lock")
            .push_back((seq, Instant::now()));
        self.qcv.notify_all();
    }

    fn abandon(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.queue.lock().expect("queue lock").clear();
        let _ = self.stream.shutdown(Shutdown::Both);
        self.qcv.notify_all();
    }

    /// The writer thread: ships queued frames, emits a heartbeat after
    /// `tick` of idleness, exits once closed (immediately) or draining
    /// (after the queue empties). Heartbeats carry the primary's epoch
    /// (fencing: a follower drops a stale upstream on sight) and its
    /// live peer view (how followers learn who to canvass when the
    /// primary later dies).
    fn writer_loop(self: &Arc<Self>, shared: &Shared) {
        let tick = shared.repl.tick;
        let mut stream = &self.stream;
        // Heartbeats carry the epoch and the peer view. They must keep
        // flowing *under load* too — once per tick alongside the record
        // stream — or a follower that bootstrapped from a momentarily
        // thin view would never learn who else to canvass when the
        // primary dies.
        let mut last_hb = Instant::now();
        loop {
            let frame = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.closed.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(frame) = queue.pop_front() {
                        break Some(frame);
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        return; // queue flushed; the broker is draining
                    }
                    if last_hb.elapsed() >= tick {
                        break None; // fall through to the heartbeat send
                    }
                    let (guard, _) = self.qcv.wait_timeout(queue, tick).expect("queue lock");
                    queue = guard;
                }
            };
            let frame = match frame {
                Some(frame) => frame,
                None => {
                    let hb = Json::obj()
                        .with("hb", self.sent_seq.load(Ordering::SeqCst))
                        .with("epoch", shared.repl.epoch.load(Ordering::SeqCst))
                        .with("peers", cluster_view(shared));
                    last_hb = Instant::now();
                    match encode_frame(&hb) {
                        Ok(frame) => frame,
                        Err(_) => continue,
                    }
                }
            };
            if std::io::Write::write_all(&mut stream, &frame).is_err() {
                self.closed.store(true, Ordering::SeqCst);
                return;
            }
            if last_hb.elapsed() >= tick {
                let hb = Json::obj()
                    .with("hb", self.sent_seq.load(Ordering::SeqCst))
                    .with("epoch", shared.repl.epoch.load(Ordering::SeqCst))
                    .with("peers", cluster_view(shared));
                last_hb = Instant::now();
                if let Ok(frame) = encode_frame(&hb) {
                    if std::io::Write::write_all(&mut stream, &frame).is_err() {
                        self.closed.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }
    }
}

/// Replication state shared by every connection thread of a broker.
pub(crate) struct Replication {
    /// Primary or follower; flipped (once) by `promote`.
    pub(crate) role: std::sync::RwLock<Role>,
    pub(crate) ack_mode: AckMode,
    /// Total voting nodes the operator configured, primary included.
    pub(crate) cluster_size: usize,
    /// How long a quorum-mode mutation waits for follower acks.
    pub(crate) ack_timeout: Duration,
    /// Follower redial backoff.
    pub(crate) follow_retry: Duration,
    /// Heartbeat interval; followers treat `4 * tick` of silence as a
    /// dead upstream and redial.
    pub(crate) tick: Duration,
    /// Connected followers (primary side). Also the condvar anchor for
    /// quorum waits.
    pub(crate) followers: Mutex<Vec<Arc<FollowerConn>>>,
    ack_cv: Condvar,
    /// Highest journal sequence applied on this node.
    pub(crate) applied_seq: AtomicU64,
    /// Highest sequence known quorum-acknowledged; monotone.
    pub(crate) committed_seq: AtomicU64,
    /// Cluster epoch: set to the winning term by every promotion
    /// (elected or manual) and adopted from higher-epoch primaries.
    /// Fencing key: a primary that sees a higher epoch is stale and
    /// demotes itself.
    pub(crate) epoch: AtomicU64,
    /// Highest election term this node has participated in (as
    /// candidate or voter); monotone, always `>= epoch`.
    pub(crate) term: AtomicU64,
    /// `(term, node)` of the last granted vote — one vote per term.
    voted: Mutex<(u64, String)>,
    /// Auto-elect on upstream loss, or wait for the operator.
    pub(crate) election: ElectionMode,
    /// Base of the randomized candidacy delay: after detecting primary
    /// loss a follower waits a seeded random `0..election_timeout`
    /// before canvassing votes, so simultaneous detectors converge.
    pub(crate) election_timeout: Duration,
    /// Seeded randomness for candidacy delays (per-node, so two nodes
    /// with the same config seed still diverge via their advertise
    /// address).
    election_rng: Mutex<StdRng>,
    election_seed: u64,
    /// This node's address as peers should dial it (the bound address
    /// unless the config overrides it).
    advertise: Mutex<String>,
    /// Known peer addresses → consecutive probe failures. Grown from
    /// `replicate` handshakes, votes, and heartbeat peer views (always
    /// merged, never replaced); shrunk only by announce/canvass
    /// failures.
    peers: Mutex<BTreeMap<String, u32>>,
    /// Serializes role transitions (promotion, demotion, re-point) so
    /// an election win, a manual `promote`, and an `announce` adoption
    /// can never interleave.
    transition: Mutex<()>,
    /// Last instant a frame arrived from the upstream; a follower whose
    /// upstream spoke within `4 × tick` denies votes (leader
    /// stickiness — a flaky candidate cannot depose a live primary).
    last_upstream_ok: Mutex<Option<Instant>>,
    /// At most one announcer thread per broker.
    announcer_spawned: AtomicBool,
    /// Bumped to stop the pull loop (promotion, re-point, shutdown);
    /// a pure thread-generation counter, unrelated to the cluster
    /// epoch.
    puller_gen: AtomicU64,
    /// The live upstream connection, severed on promote/shutdown.
    upstream_conn: Mutex<Option<TcpStream>>,
    /// The pull-loop thread, joined on promote/shutdown.
    puller: Mutex<Option<JoinHandle<()>>>,
}

impl Replication {
    pub(crate) fn new(config: &BrokerConfig) -> Self {
        let role = match &config.follow {
            Some(upstream) => Role::Follower {
                upstream: upstream.clone(),
            },
            None => Role::Primary,
        };
        Replication {
            role: std::sync::RwLock::new(role),
            ack_mode: config.ack,
            cluster_size: config.cluster_size.max(1),
            ack_timeout: config.ack_timeout,
            follow_retry: config.follow_retry,
            tick: config.replication_tick,
            followers: Mutex::new(Vec::new()),
            ack_cv: Condvar::new(),
            applied_seq: AtomicU64::new(0),
            committed_seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            term: AtomicU64::new(0),
            voted: Mutex::new((0, String::new())),
            election: config.election,
            election_timeout: config.election_timeout.max(Duration::from_millis(1)),
            election_rng: Mutex::new(StdRng::seed_from_u64(config.election_seed)),
            election_seed: config.election_seed,
            advertise: Mutex::new(String::new()),
            peers: Mutex::new(BTreeMap::new()),
            transition: Mutex::new(()),
            last_upstream_ok: Mutex::new(None),
            announcer_spawned: AtomicBool::new(false),
            puller_gen: AtomicU64::new(0),
            upstream_conn: Mutex::new(None),
            puller: Mutex::new(None),
        }
    }

    /// Fixes this node's advertised address (known only after bind) and
    /// derives its per-node election randomness from it, so a cluster
    /// sharing one config seed still gets divergent candidacy delays.
    pub(crate) fn set_advertise(&self, addr: String) {
        *self.election_rng.lock().expect("rng lock") =
            StdRng::seed_from_u64(self.election_seed ^ fnv1a(&addr));
        *self.advertise.lock().expect("advertise lock") = addr;
    }

    pub(crate) fn advertise(&self) -> String {
        self.advertise.lock().expect("advertise lock").clone()
    }

    /// Remembers a peer address (a follower's advertise, a candidate's
    /// node id) for announcing and canvassing. Never records self.
    pub(crate) fn note_peer(&self, addr: &str) {
        if addr.is_empty() || addr == self.advertise() {
            return;
        }
        self.peers
            .lock()
            .expect("peers lock")
            .entry(addr.to_owned())
            .or_insert(0);
    }

    /// Merges the primary's peer view (minus self) into the known set.
    /// A merge — never a replacement — because a view legitimately
    /// thins while a node is down, and adopting that thin view would
    /// forget the rejoining node exactly when the next failure needs
    /// it: two survivors each knowing only a dead primary can never
    /// elect. Surplus stale addresses are garbage-collected by the
    /// probe paths instead ([`Replication::peer_failed`] after enough
    /// consecutive announce or canvass failures, never below a full
    /// cluster's worth).
    fn merge_peers(&self, view: &[Json]) {
        let me = self.advertise();
        let mut peers = self.peers.lock().expect("peers lock");
        for addr in view.iter().filter_map(Json::as_str) {
            if !addr.is_empty() && addr != me {
                peers.entry(addr.to_owned()).or_insert(0);
            }
        }
    }

    /// A probe (announce, canvass) reached `addr`: reset its failure
    /// count.
    fn peer_ok(&self, addr: &str) {
        if let Some(fails) = self.peers.lock().expect("peers lock").get_mut(addr) {
            *fails = 0;
        }
    }

    /// A probe could not reach `addr`; after enough consecutive
    /// failures the address is dropped — but never below the
    /// `cluster_size - 1` entries a full cluster needs. A crashed node
    /// that will restart at the same address must stay known however
    /// long it is down (forgetting it can wedge the next election);
    /// only *surplus* addresses — nodes that rejoined somewhere else —
    /// are garbage, and only they are collected.
    fn peer_failed(&self, addr: &str) {
        let mut peers = self.peers.lock().expect("peers lock");
        if let Some(fails) = peers.get_mut(addr) {
            *fails += 1;
            if *fails > PEER_PRUNE_FAILURES && peers.len() > self.cluster_size.saturating_sub(1) {
                peers.remove(addr);
            }
        }
    }

    /// The peer addresses to canvass or announce to, excluding self.
    pub(crate) fn peer_list(&self) -> Vec<String> {
        let me = self.advertise();
        self.peers
            .lock()
            .expect("peers lock")
            .keys()
            .filter(|a| **a != me)
            .cloned()
            .collect()
    }

    /// Votes (own included) a candidate needs: a strict majority of the
    /// configured cluster.
    pub(crate) fn majority(&self) -> usize {
        self.cluster_size / 2 + 1
    }

    /// Whether the upstream spoke recently enough that this follower
    /// should refuse to help depose it.
    fn upstream_healthy(&self) -> bool {
        if self.is_primary() {
            return false;
        }
        self.last_upstream_ok
            .lock()
            .expect("upstream-ok lock")
            .is_some_and(|t| t.elapsed() < self.tick * 4)
    }

    fn touch_upstream(&self) {
        *self.last_upstream_ok.lock().expect("upstream-ok lock") = Some(Instant::now());
    }

    fn last_contact(&self) -> Option<Instant> {
        *self.last_upstream_ok.lock().expect("upstream-ok lock")
    }

    /// Adopts a higher epoch observed on the wire (handshake,
    /// heartbeat); returns whether anything changed.
    fn adopt_epoch(&self, epoch: u64) -> bool {
        let prev = self.epoch.fetch_max(epoch, Ordering::SeqCst);
        self.term.fetch_max(epoch, Ordering::SeqCst);
        prev < epoch
    }

    pub(crate) fn is_primary(&self) -> bool {
        matches!(*self.role.read().expect("role lock"), Role::Primary)
    }

    /// The upstream address while a follower; `None` once primary.
    pub(crate) fn upstream(&self) -> Option<String> {
        match &*self.role.read().expect("role lock") {
            Role::Primary => None,
            Role::Follower { upstream } => Some(upstream.clone()),
        }
    }

    /// Follower acknowledgements a quorum needs besides the primary's
    /// own fsync: a majority of `cluster_size` voters.
    pub(crate) fn needed_acks(&self) -> usize {
        self.cluster_size / 2
    }

    /// Fans one encoded record frame out to every live follower queue.
    /// The caller holds the WAL lock, which makes broadcast order
    /// exactly journal order.
    pub(crate) fn broadcast(&self, seq: u64, frame: &[u8], metrics: &Metrics) {
        let followers = self.followers.lock().expect("followers lock");
        if followers.is_empty() {
            return;
        }
        metrics.records_shipped.fetch_add(1, Ordering::Relaxed);
        for follower in followers.iter() {
            if !follower.closed.load(Ordering::SeqCst) {
                follower.enqueue(seq, frame);
            }
        }
    }

    /// Records a follower's acknowledgement: advances its acked mark,
    /// observes ship→ack latency, refreshes `committed_seq`, and wakes
    /// quorum waiters.
    fn note_ack(&self, follower: &FollowerConn, seq: u64, metrics: &Metrics) {
        follower.acked_seq.fetch_max(seq, Ordering::SeqCst);
        {
            let mut inflight = follower.inflight.lock().expect("inflight lock");
            while inflight.front().is_some_and(|&(s, _)| s <= seq) {
                let (_, shipped) = inflight.pop_front().expect("non-empty");
                metrics.observe_replication(shipped.elapsed());
            }
        }
        let followers = self.followers.lock().expect("followers lock");
        let acked: Vec<u64> = followers
            .iter()
            .filter(|f| !f.closed.load(Ordering::SeqCst))
            .map(|f| f.acked_seq.load(Ordering::SeqCst))
            .collect();
        if let Some(committed) = committed_from(acked, self.needed_acks()) {
            self.committed_seq.fetch_max(committed, Ordering::SeqCst);
        }
        self.ack_cv.notify_all();
    }

    /// Blocks until `seq` is quorum-acknowledged, the timeout passes,
    /// or the broker drains. Called with no locks held (the mutation's
    /// resource write lock excepted).
    pub(crate) fn wait_quorum(&self, seq: u64, shutting_down: &AtomicBool) -> bool {
        if self.needed_acks() == 0 {
            self.committed_seq.fetch_max(seq, Ordering::SeqCst);
            return true;
        }
        let deadline = Instant::now() + self.ack_timeout;
        let mut followers = self.followers.lock().expect("followers lock");
        loop {
            if self.committed_seq.load(Ordering::SeqCst) >= seq {
                return true;
            }
            if shutting_down.load(Ordering::SeqCst) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .ack_cv
                .wait_timeout(followers, deadline - now)
                .expect("followers lock");
            followers = guard;
        }
    }

    fn unregister(&self, follower: &Arc<FollowerConn>) {
        let mut followers = self.followers.lock().expect("followers lock");
        followers.retain(|f| !Arc::ptr_eq(f, follower));
        self.ack_cv.notify_all();
    }

    /// Marks every follower queue as draining (flush, then stop) and
    /// wakes quorum waiters; part of graceful shutdown.
    pub(crate) fn drain_followers(&self) {
        let followers = self.followers.lock().expect("followers lock");
        for follower in followers.iter() {
            follower.draining.store(true, Ordering::SeqCst);
            follower.qcv.notify_all();
        }
        self.ack_cv.notify_all();
    }
}

/// The sequence number acknowledged by at least `needed` followers:
/// the `needed`-th largest element, or `None` when `needed == 0` or too
/// few followers are connected.
fn committed_from(mut acked: Vec<u64>, needed: usize) -> Option<u64> {
    if needed == 0 || acked.len() < needed {
        return None;
    }
    acked.sort_unstable_by(|a, b| b.cmp(a));
    Some(acked[needed - 1])
}

/// The `not_primary` error for a mutation (or `replicate`) reaching a
/// follower, carrying the upstream address as a redirect hint.
pub(crate) fn not_primary(shared: &Shared) -> Json {
    let mut reply = proto::error("not_primary", "this broker is a follower");
    if let Some(upstream) = shared.repl.upstream() {
        reply.set("primary", upstream);
    }
    reply
}

/// Every cluster address this node knows: itself, every live
/// registered follower, and the accumulated peer set — the view
/// heartbeats carry and the replication handshake returns. Deliberately
/// a superset of who is *connected*: a node bootstrapping while a
/// third is down must still learn that third address, or it cannot
/// canvass it in the election that follows the next failure.
pub(crate) fn cluster_view(shared: &Shared) -> Vec<Json> {
    let mut view: BTreeSet<String> = BTreeSet::new();
    let me = shared.repl.advertise();
    if !me.is_empty() {
        view.insert(me);
    }
    for f in shared.repl.followers.lock().expect("followers lock").iter() {
        if !f.closed.load(Ordering::SeqCst) {
            if let Some(a) = &f.advertise {
                view.insert(a.clone());
            }
        }
    }
    view.extend(shared.repl.peer_list());
    view.into_iter().map(Json::str).collect()
}

/// Serves one `replicate` request: registers the follower under the
/// snapshotter's lock chain (freezing the journal tip), ships the
/// bootstrap snapshot, then streams records from a writer thread while
/// this thread consumes acks. Returns when the connection dies or the
/// broker drains.
pub(crate) fn serve_replica(stream: &mut TcpStream, request: &Json, shared: &Shared) {
    if !shared.repl.is_primary() {
        let _ = write_frame(stream, &not_primary(shared));
        return;
    }
    // Epoch fencing on the data path: a follower that already saw a
    // newer primary refuses to bootstrap from this one, and telling a
    // deposed primary so (rather than silently serving) lets it heal.
    let my_epoch = shared.repl.epoch.load(Ordering::SeqCst);
    if let Some(e) = request.u64_field("epoch") {
        if e > my_epoch {
            let _ = write_frame(
                stream,
                &proto::error(
                    "stale_epoch",
                    format!("this primary's epoch {my_epoch} is behind the cluster's {e}"),
                )
                .with("epoch", my_epoch),
            );
            return;
        }
    }
    if let Some(advertise) = request.str_field("advertise") {
        shared.repl.note_peer(advertise);
    }
    let Some(d) = shared.durability.as_ref() else {
        let _ = write_frame(
            stream,
            &proto::error(
                "not_durable",
                "replication requires --state-dir on the primary (the journal is the stream)",
            ),
        );
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_owned());
    let (follower, handshake) = {
        let repo = shared.repo.read().expect("repo lock");
        let registry = shared.registry.read().expect("registry lock");
        let clients = shared.clients.read().expect("clients lock");
        let dedup = d.dedup.lock().expect("dedup lock");
        let wal = d.wal.lock().expect("wal lock");
        let covered = wal.next_seq().saturating_sub(1);
        let doc = snapshot::render_doc(covered, &repo, &registry, &clients, &dedup.export());
        let advertise = request.str_field("advertise").map(str::to_owned);
        let follower = Arc::new(FollowerConn::new(peer, write_half, covered, advertise));
        shared
            .repl
            .followers
            .lock()
            .expect("followers lock")
            .push(Arc::clone(&follower));
        (
            follower,
            proto::ok()
                .with("snapshot", doc)
                .with("seq", covered)
                .with("epoch", my_epoch)
                .with("peers", cluster_view(shared)),
        )
    };
    shared
        .metrics
        .follower_connects
        .fetch_add(1, Ordering::Relaxed);
    if write_frame(stream, &handshake).is_err() {
        shared.repl.unregister(&follower);
        return;
    }
    let Some(shared_arc) = shared.strong() else {
        shared.repl.unregister(&follower);
        return;
    };
    let writer = {
        let follower = Arc::clone(&follower);
        std::thread::spawn(move || follower.writer_loop(&shared_arc))
    };
    while let Ok(Some(frame)) = read_frame(stream) {
        if let Some(seq) = frame.u64_field("ack") {
            shared.repl.note_ack(&follower, seq, &shared.metrics);
        }
    }
    if shared.shutting_down.load(Ordering::SeqCst) {
        // Graceful drain: ship everything already journaled, then stop.
        follower.draining.store(true, Ordering::SeqCst);
    } else {
        follower.closed.store(true, Ordering::SeqCst);
    }
    follower.qcv.notify_all();
    let _ = writer.join();
    let _ = follower.stream.shutdown(Shutdown::Both);
    shared.repl.unregister(&follower);
}

/// Spawns the follower's pull loop: dial the upstream, bootstrap from
/// its snapshot, apply + ack the record stream, redial on any failure.
/// Under `--election auto` a dead upstream additionally triggers a
/// candidacy (see [`run_election`]). Exits when the puller generation
/// is bumped (promotion/re-point) or the broker drains.
pub(crate) fn spawn_puller(shared: &Arc<Shared>, upstream: String) {
    let my_gen = shared.repl.puller_gen.load(Ordering::SeqCst);
    let handle = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || pull_loop(&shared, upstream, my_gen))
    };
    *shared.repl.puller.lock().expect("puller lock") = Some(handle);
}

fn pull_loop(shared: &Arc<Shared>, mut upstream: String, my_gen: u64) {
    shared.repl.note_peer(&upstream);
    let mut first = true;
    // When the outage began: set on the first failed session after a
    // healthy one, cleared on contact. Feeds the detect→elected
    // histogram.
    let mut down_since: Option<Instant> = None;
    while !stopped(shared, my_gen) {
        if !first {
            std::thread::sleep(shared.repl.follow_retry);
        }
        first = false;
        let session_start = Instant::now();
        let _ = pull_once(shared, &mut upstream, my_gen);
        if stopped(shared, my_gen) {
            return;
        }
        let made_contact = shared
            .repl
            .last_contact()
            .is_some_and(|t| t >= session_start);
        if made_contact {
            down_since = None;
        }
        if shared.repl.election == ElectionMode::Auto {
            let detected = *down_since.get_or_insert_with(Instant::now);
            match run_election(shared, my_gen, detected) {
                ElectionOutcome::Won | ElectionOutcome::Stopped => return,
                ElectionOutcome::RePointed(addr) => {
                    upstream = addr;
                    down_since = None;
                }
                // Lost (or no quorum reachable): keep redialling the
                // old upstream; a winner's announce re-points us, a
                // healed upstream resumes the stream, and the next
                // round of this loop runs a fresh candidacy.
                ElectionOutcome::Lost => {}
            }
        }
    }
}

fn stopped(shared: &Shared, my_gen: u64) -> bool {
    shared.shutting_down.load(Ordering::SeqCst)
        || shared.repl.puller_gen.load(Ordering::SeqCst) != my_gen
}

/// One upstream session: connect → handshake → bootstrap → apply/ack
/// until the stream dies. Every error path just returns; the caller
/// redials. A `not_primary` refusal with a redirect hint re-points
/// `upstream` in place — chasing the hint chain is how a freshly
/// (re)started follower finds the primary across past elections.
fn pull_once(shared: &Arc<Shared>, upstream: &mut String, my_gen: u64) -> io::Result<()> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let addr = upstream
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad(format!("upstream `{upstream}` does not resolve")))?;
    let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    let _ = stream.set_nodelay(true);
    // Heartbeats arrive every `tick`; a silent upstream is a dead or
    // partitioned one, and redialling is how a follower heals.
    let _ = stream.set_read_timeout(Some(shared.repl.tick * 4));
    *shared.repl.upstream_conn.lock().expect("upstream lock") = Some(stream.try_clone()?);
    if stopped(shared, my_gen) {
        return Ok(());
    }
    write_frame(
        &mut stream,
        &Json::obj()
            .with("cmd", "replicate")
            .with("from_seq", shared.repl.applied_seq.load(Ordering::SeqCst))
            .with("epoch", shared.repl.epoch.load(Ordering::SeqCst))
            .with("advertise", shared.repl.advertise()),
    )?;
    let handshake = read_frame(&mut stream)?
        .ok_or_else(|| bad("upstream closed before the replication handshake".into()))?;
    if handshake.bool_field("ok") != Some(true) {
        if handshake.str_field("kind") == Some("not_primary") {
            if let Some(hint) = handshake.str_field("primary") {
                let me = shared.repl.advertise();
                if !hint.is_empty() && hint != upstream.as_str() && hint != me {
                    repoint_inline(shared, upstream, hint);
                    return Err(bad(format!("redirected to primary at {hint}")));
                }
            }
        }
        // `busy`, `shutting_down`, `stale_epoch`, … — redial; an
        // election or an announce re-points us if it persists.
        return Err(bad(format!("upstream refused replication: {handshake}")));
    }
    // Epoch fencing before adopting any data: never bootstrap from a
    // primary that is behind the cluster epoch this node already saw.
    if let Some(up_epoch) = handshake.u64_field("epoch") {
        let mine = shared.repl.epoch.load(Ordering::SeqCst);
        if up_epoch < mine {
            return Err(bad(format!(
                "upstream epoch {up_epoch} is stale (cluster is at {mine})"
            )));
        }
        if shared.repl.adopt_epoch(up_epoch) {
            persist_meta(shared);
        }
    }
    if let Some(view) = handshake.get("peers").and_then(Json::as_arr) {
        shared.repl.merge_peers(view);
    }
    let doc = handshake
        .get("snapshot")
        .ok_or_else(|| bad("replication handshake lacks `snapshot`".into()))?;
    bootstrap(shared, doc)?;
    shared.repl.touch_upstream();
    shared
        .metrics
        .bootstraps_received
        .fetch_add(1, Ordering::Relaxed);
    let ack = |stream: &mut TcpStream, seq: u64| write_frame(stream, &Json::obj().with("ack", seq));
    ack(&mut stream, shared.repl.applied_seq.load(Ordering::SeqCst))?;
    loop {
        if stopped(shared, my_gen) {
            return Ok(());
        }
        let frame = match read_frame(&mut stream)? {
            Some(frame) => frame,
            None => return Ok(()), // upstream drained cleanly
        };
        if let Some(record) = frame.get("rec") {
            apply_replicated(shared, record)?;
            shared.repl.touch_upstream();
            ack(&mut stream, shared.repl.applied_seq.load(Ordering::SeqCst))?;
        } else if frame.get("hb").is_some() {
            if let Some(e) = frame.u64_field("epoch") {
                let mine = shared.repl.epoch.load(Ordering::SeqCst);
                if e < mine {
                    return Err(bad(format!(
                        "upstream heartbeat epoch {e} is stale (cluster is at {mine})"
                    )));
                }
                if shared.repl.adopt_epoch(e) {
                    persist_meta(shared);
                }
            }
            if let Some(view) = frame.get("peers").and_then(Json::as_arr) {
                shared.repl.merge_peers(view);
            }
            shared.repl.touch_upstream();
            ack(&mut stream, shared.repl.applied_seq.load(Ordering::SeqCst))?;
        }
    }
}

/// Re-points the pull loop's own upstream in place (redirect chasing,
/// election loss): no thread dance, just the role's upstream field and
/// the loop variable. Handler-side re-points go through
/// [`repoint_locked`] instead.
fn repoint_inline(shared: &Shared, upstream: &mut String, hint: &str) {
    {
        let mut role = shared.repl.role.write().expect("role lock");
        if let Role::Follower { upstream: u } = &mut *role {
            *u = hint.to_owned();
        }
    }
    *upstream = hint.to_owned();
    shared.repl.note_peer(hint);
    shared.metrics.repoints.fetch_add(1, Ordering::Relaxed);
}

/// Replaces this follower's entire state with the primary's bootstrap
/// snapshot. Full replacement — not a diff — is what makes rejoin after
/// divergence correct: whatever this node applied that the primary's
/// journal does not contain is discarded here.
fn bootstrap(shared: &Shared, doc: &Json) -> io::Result<()> {
    let snap = snapshot::parse_doc(doc)?;
    let mut repo = shared.repo.write().expect("repo lock");
    let mut registry = shared.registry.write().expect("registry lock");
    let mut clients = shared.clients.write().expect("clients lock");
    // Evict verdicts naming any location of the old *or* new state, and
    // the whole registry layer: the swap invalidates both worlds.
    for loc in repo.locations() {
        shared.cache.invalidate_location(loc);
    }
    for (loc, _, _) in snap.repository.export() {
        shared.cache.invalidate_location(loc);
    }
    shared.cache.invalidate_registry();
    let covered = snap.covered_seq;
    *repo = snap.repository;
    *registry = snap.registry;
    *clients = snap.clients;
    if let Some(d) = shared.durability.as_ref() {
        let mut dedup = d.dedup.lock().expect("dedup lock");
        dedup.replace(snap.dedup);
        let mut wal = d.wal.lock().expect("wal lock");
        snapshot::write(&d.dir, covered, &repo, &registry, &clients, &dedup.export())?;
        wal.truncate()?;
        wal.ensure_seq_at_least(covered + 1);
    }
    shared.repl.applied_seq.store(covered, Ordering::SeqCst);
    Ok(())
}

/// Applies one replicated record: re-run the request through the
/// regular handlers (as startup replay does), journal it under the
/// primary's sequence number, and record the *primary's* reply in the
/// idempotency window so a client retry answered here matches what the
/// primary said.
fn apply_replicated(shared: &Shared, record: &Json) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let seq = record
        .u64_field("seq")
        .ok_or_else(|| bad("replicated record lacks `seq`"))?;
    let request = record
        .get("req")
        .ok_or_else(|| bad("replicated record lacks `req`"))?;
    let reply = record
        .get("reply")
        .ok_or_else(|| bad("replicated record lacks `reply`"))?;
    if seq <= shared.repl.applied_seq.load(Ordering::SeqCst) {
        // Straddles the bootstrap boundary (or a primary retransmit):
        // the snapshot already covers it.
        return Ok(());
    }
    let local = handle_request_from(request, shared, Source::Replication);
    if local.bool_field("ok") != Some(true) && reply.bool_field("ok") == Some(true) {
        eprintln!("sufs-broker: replicated record {seq} diverged from the primary: {local}");
    }
    if let Some(d) = shared.durability.as_ref() {
        if let Some(id) = request.str_field("req_id") {
            d.dedup
                .lock()
                .expect("dedup lock")
                .insert(id.to_owned(), reply.clone());
        }
        d.wal
            .lock()
            .expect("wal lock")
            .append_at(seq, request, reply)?;
    }
    shared.repl.applied_seq.store(seq, Ordering::SeqCst);
    shared
        .metrics
        .replicated_records
        .fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Stops the pull loop deterministically: bump the generation, sever
/// the upstream socket, join the thread. Used by promotion, re-points,
/// and both shutdown paths (a "killed" node must not keep applying
/// records). Safe to call *from* the pull thread itself (an election
/// win promotes in place): the handle is dropped instead of joined and
/// the loop exits on the bumped generation.
pub(crate) fn stop_puller(shared: &Shared) {
    shared.repl.puller_gen.fetch_add(1, Ordering::SeqCst);
    if let Some(conn) = shared
        .repl
        .upstream_conn
        .lock()
        .expect("upstream lock")
        .take()
    {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let handle = shared.repl.puller.lock().expect("puller lock").take();
    if let Some(handle) = handle {
        if handle.thread().id() == std::thread::current().id() {
            // Joining ourselves would deadlock; the bumped generation
            // already guarantees the loop exits right after the caller
            // returns.
            drop(handle);
        } else {
            let _ = handle.join();
        }
    }
}

/// FNV-1a over the advertise address: a stable per-node perturbation
/// for the election RNG seed.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Persists epoch, term, and the last granted vote to the state
/// directory (no-op in-memory). The vote *must* survive a crash inside
/// an election — a restarted node double-voting in the same term could
/// elect two primaries with one epoch.
pub(crate) fn persist_meta(shared: &Shared) {
    let Some(d) = shared.durability.as_ref() else {
        return;
    };
    let repl = &shared.repl;
    // The voted lock also serializes concurrent persists, so the file
    // always holds some thread's consistent view, never a torn merge.
    let voted = repl.voted.lock().expect("voted lock");
    let doc = Json::obj()
        .with("epoch", repl.epoch.load(Ordering::SeqCst))
        .with("term", repl.term.load(Ordering::SeqCst))
        .with("voted_term", voted.0)
        .with("voted_for", voted.1.as_str());
    let tmp = d.dir.join("cluster.meta.tmp");
    if let Ok(mut f) = std::fs::File::create(&tmp) {
        use std::io::Write as _;
        if f.write_all(doc.to_string().as_bytes())
            .and_then(|()| f.sync_all())
            .is_ok()
        {
            let _ = std::fs::rename(&tmp, d.dir.join(META_FILE));
        }
    }
}

/// Loads persisted cluster metadata at startup (if any).
pub(crate) fn load_meta(shared: &Shared) {
    let Some(d) = shared.durability.as_ref() else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(d.dir.join(META_FILE)) else {
        return;
    };
    let Ok(doc) = crate::json::parse(&text) else {
        return;
    };
    let repl = &shared.repl;
    repl.epoch
        .store(doc.u64_field("epoch").unwrap_or(0), Ordering::SeqCst);
    repl.term
        .store(doc.u64_field("term").unwrap_or(0), Ordering::SeqCst);
    *repl.voted.lock().expect("voted lock") = (
        doc.u64_field("voted_term").unwrap_or(0),
        doc.str_field("voted_for").unwrap_or("").to_owned(),
    );
}

/// One request/reply round trip to a peer — votes and announcements.
fn call_peer(addr: &str, request: &Json, timeout: Duration) -> io::Result<Json> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad(format!("peer `{addr}` does not resolve")))?;
    let mut stream = TcpStream::connect_timeout(&sock, CONNECT_TIMEOUT)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    write_frame(&mut stream, request)?;
    read_frame(&mut stream)?.ok_or_else(|| bad(format!("peer {addr} closed without replying")))
}

/// Sleeps `dur` in small chunks, bailing early if the pull loop was
/// stopped; returns whether the full sleep completed.
fn sleep_unless_stopped(shared: &Shared, my_gen: u64, dur: Duration) -> bool {
    let deadline = Instant::now() + dur;
    loop {
        if stopped(shared, my_gen) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// How one candidacy attempt ended.
enum ElectionOutcome {
    /// This node won and promoted itself in place.
    Won,
    /// Not enough votes (split vote, unreachable quorum); retry later.
    Lost,
    /// A live primary answered the canvass: follow it instead.
    RePointed(String),
    /// The pull loop was stopped (shutdown, or a concurrent transition
    /// already re-pointed this node).
    Stopped,
}

/// One candidacy: wait a seeded random slice of the election timeout
/// (so simultaneous detectors converge instead of splitting every
/// vote), then canvass every known peer with `(term, ballot)` where the
/// ballot is this node's `applied_seq`. A majority of the configured
/// cluster (own vote included) wins and promotes in place.
fn run_election(shared: &Arc<Shared>, my_gen: u64, detected: Instant) -> ElectionOutcome {
    let repl = &shared.repl;
    let span = repl.election_timeout.as_millis().max(1) as u64;
    let delay = {
        let mut rng = repl.election_rng.lock().expect("rng lock");
        rng.gen_range(0..span)
    };
    if !sleep_unless_stopped(shared, my_gen, Duration::from_millis(delay)) {
        return ElectionOutcome::Stopped;
    }
    // An announce may have healed the cluster during the wait.
    if repl.upstream_healthy() {
        return ElectionOutcome::Lost;
    }
    let epoch_at_start = repl.epoch.load(Ordering::SeqCst);
    let term = repl
        .term
        .load(Ordering::SeqCst)
        .max(epoch_at_start)
        .saturating_add(1);
    repl.term.store(term, Ordering::SeqCst);
    let ballot = repl.applied_seq.load(Ordering::SeqCst);
    let me = repl.advertise();
    {
        let mut voted = repl.voted.lock().expect("voted lock");
        *voted = (term, me.clone());
    }
    persist_meta(shared);
    shared
        .metrics
        .elections_started
        .fetch_add(1, Ordering::Relaxed);
    let request = Json::obj()
        .with("cmd", "vote")
        .with("term", term)
        .with("ballot", ballot)
        .with("node", me.as_str())
        .with("epoch", epoch_at_start);
    let mut votes = 1usize; // own ballot
    for peer in repl.peer_list() {
        if stopped(shared, my_gen) {
            return ElectionOutcome::Stopped;
        }
        let Ok(reply) = call_peer(&peer, &request, repl.tick * 4) else {
            repl.peer_failed(&peer);
            continue;
        };
        repl.peer_ok(&peer);
        if reply.bool_field("granted") == Some(true) {
            votes += 1;
            continue;
        }
        let peer_epoch = reply.u64_field("epoch").unwrap_or(0);
        if reply.str_field("role") == Some("primary") && peer_epoch >= epoch_at_start {
            // A live primary is reachable — this was a false alarm (or
            // the cluster already healed). Stand down and follow it.
            return ElectionOutcome::RePointed(peer);
        }
        if let Some(t) = reply.u64_field("term") {
            repl.term.fetch_max(t, Ordering::SeqCst);
        }
    }
    if votes < repl.majority() {
        return ElectionOutcome::Lost;
    }
    // Promote under the transition lock, yielding to any concurrent
    // handler-side transition (which will have bumped our generation).
    loop {
        if stopped(shared, my_gen) {
            return ElectionOutcome::Stopped;
        }
        let Ok(_guard) = repl.transition.try_lock() else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        if !become_primary_locked(shared, term) {
            // A higher epoch landed while the votes were counted.
            return ElectionOutcome::Lost;
        }
        shared.metrics.elections_won.fetch_add(1, Ordering::Relaxed);
        shared.metrics.observe_election(detected.elapsed());
        eprintln!(
            "sufs-broker: won election for term {term} with {votes}/{} votes at seq {ballot} ({:.1}ms after detecting primary loss)",
            repl.cluster_size,
            detected.elapsed().as_secs_f64() * 1e3,
        );
        return ElectionOutcome::Won;
    }
}

/// Flips this node to primary at `term`, under the caller-held
/// transition lock. Returns `false` (no flip) if the cluster epoch
/// already reached `term` — one-vote-per-term plus this check is what
/// makes "at most one primary per epoch" hold.
fn become_primary_locked(shared: &Shared, term: u64) -> bool {
    let repl = &shared.repl;
    if repl.epoch.load(Ordering::SeqCst) >= term {
        return false;
    }
    stop_puller(shared);
    *repl.role.write().expect("role lock") = Role::Primary;
    repl.epoch.store(term, Ordering::SeqCst);
    repl.term.fetch_max(term, Ordering::SeqCst);
    *repl.last_upstream_ok.lock().expect("upstream-ok lock") = None;
    persist_meta(shared);
    shared.metrics.promotions.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .role_transitions
        .fetch_add(1, Ordering::Relaxed);
    if let Some(arc) = shared.strong() {
        spawn_announcer(&arc);
    }
    true
}

/// Handler-side re-point: stop the current pull loop and start one at
/// `new_upstream`. Caller holds the transition lock.
fn repoint_locked(shared: &Shared, new_upstream: &str) {
    stop_puller(shared);
    *shared.repl.role.write().expect("role lock") = Role::Follower {
        upstream: new_upstream.to_owned(),
    };
    shared.repl.note_peer(new_upstream);
    shared.metrics.repoints.fetch_add(1, Ordering::Relaxed);
    if let Some(arc) = shared.strong() {
        spawn_puller(&arc, new_upstream.to_owned());
    }
}

/// Demotes a stale primary to a follower of `new_primary`. Caller
/// holds the transition lock and has already adopted the new epoch.
/// The fencing half of self-healing: a primary that heals from a
/// partition stops accepting writes the moment it learns of the
/// higher epoch, and its un-replicated tail is discarded by the
/// bootstrap it performs as a follower.
fn demote_locked(shared: &Shared, new_primary: &str) {
    stop_puller(shared); // harmless on a primary; resets the generation
    *shared.repl.role.write().expect("role lock") = Role::Follower {
        upstream: new_primary.to_owned(),
    };
    // Whatever was still following this node belongs to a deposed
    // leadership; sever so those nodes redial and chase the redirect.
    {
        let followers = shared.repl.followers.lock().expect("followers lock");
        for f in followers.iter() {
            f.abandon();
        }
    }
    shared.repl.note_peer(new_primary);
    shared.metrics.demotions.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .role_transitions
        .fetch_add(1, Ordering::Relaxed);
    persist_meta(shared);
    eprintln!(
        "sufs-broker: demoted to follower of {new_primary} (cluster epoch {})",
        shared.repl.epoch.load(Ordering::SeqCst)
    );
    if let Some(arc) = shared.strong() {
        spawn_puller(&arc, new_primary.to_owned());
    }
}

/// Spawns the announcer thread (once per broker): while this node is
/// primary, it periodically announces `(epoch, self)` to every known
/// peer that is not already a registered follower. This is what
/// re-points survivors after a *manual* promotion and what heals a
/// stale primary after a partition — the stale node either receives
/// the announce (and demotes) or answers one with its lower epoch
/// (and is told the truth in the reply).
pub(crate) fn spawn_announcer(shared: &Arc<Shared>) {
    if shared.repl.announcer_spawned.swap(true, Ordering::SeqCst) {
        return;
    }
    let shared = Arc::clone(shared);
    std::thread::spawn(move || loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        if shared.repl.is_primary() {
            announce_round(&shared);
        }
        std::thread::sleep(shared.repl.tick);
    });
}

/// One announcer pass over the peers that do not currently follow us.
fn announce_round(shared: &Arc<Shared>) {
    let repl = &shared.repl;
    let epoch = repl.epoch.load(Ordering::SeqCst);
    let me = repl.advertise();
    let following: BTreeSet<String> = repl
        .followers
        .lock()
        .expect("followers lock")
        .iter()
        .filter(|f| !f.closed.load(Ordering::SeqCst))
        .filter_map(|f| f.advertise.clone())
        .collect();
    let targets: Vec<String> = repl
        .peer_list()
        .into_iter()
        .filter(|p| !following.contains(p))
        .collect();
    let request = Json::obj()
        .with("cmd", "announce")
        .with("epoch", epoch)
        .with("primary", me.as_str());
    for peer in targets {
        if shared.shutting_down.load(Ordering::SeqCst) || !repl.is_primary() {
            return;
        }
        match call_peer(&peer, &request, repl.tick * 4) {
            Ok(reply) => {
                repl.peer_ok(&peer);
                let peer_epoch = reply.u64_field("epoch").unwrap_or(0);
                if reply.bool_field("accepted") != Some(true) && peer_epoch > epoch {
                    // The cluster moved on without us: we are the stale
                    // primary. Demote towards whoever the peer says is
                    // in charge (or the peer itself).
                    let target = reply
                        .str_field("primary")
                        .filter(|p| !p.is_empty() && *p != me)
                        .unwrap_or(&peer)
                        .to_owned();
                    let _guard = repl.transition.lock().expect("transition lock");
                    if repl.is_primary() && repl.epoch.load(Ordering::SeqCst) < peer_epoch {
                        repl.adopt_epoch(peer_epoch);
                        demote_locked(shared, &target);
                    }
                    return;
                }
            }
            Err(_) => repl.peer_failed(&peer),
        }
    }
}

/// The `vote` command: grant or deny a candidate's ballot. Grant rules
/// (all must hold): the candidate's epoch is current, its term is not
/// behind ours, this node is a follower whose upstream has gone
/// silent, its `(ballot, node)` is at least ours — highest replicated
/// prefix wins, node id breaks ties — and this node has not voted for
/// a different candidate in the same term.
pub(crate) fn cmd_vote(request: &Json, shared: &Shared) -> Json {
    let repl = &shared.repl;
    let term = request.u64_field("term").unwrap_or(0);
    let ballot = request.u64_field("ballot").unwrap_or(0);
    let node = request.str_field("node").unwrap_or("").to_owned();
    let cand_epoch = request.u64_field("epoch").unwrap_or(0);
    repl.note_peer(&node);
    let my_epoch = repl.epoch.load(Ordering::SeqCst);
    let base = |granted: bool| {
        let mut reply = proto::ok()
            .with("granted", granted)
            .with("term", repl.term.load(Ordering::SeqCst))
            .with("epoch", my_epoch)
            .with("role", repl.role.read().expect("role lock").name());
        if repl.is_primary() {
            reply.set("primary", repl.advertise());
        } else if let Some(upstream) = repl.upstream() {
            reply.set("primary", upstream);
        }
        reply
    };
    let deny = |reason: &str| base(false).with("reason", reason);
    if repl.is_primary() {
        // Leader stickiness: a live primary never helps depose itself;
        // the candidate sees `role: "primary"` and stands down.
        return deny("primary");
    }
    if cand_epoch < my_epoch {
        return deny("stale_epoch");
    }
    if term < repl.term.load(Ordering::SeqCst) {
        return deny("old_term");
    }
    if repl.upstream_healthy() {
        return deny("upstream_alive");
    }
    let my_applied = repl.applied_seq.load(Ordering::SeqCst);
    let me = repl.advertise();
    if (ballot, node.as_str()) < (my_applied, me.as_str()) {
        // The candidate's replicated prefix is behind ours: electing it
        // could lose a quorum-acked record we hold.
        return deny("ballot_behind");
    }
    {
        let mut voted = repl.voted.lock().expect("voted lock");
        if voted.0 == term && voted.1 != node {
            return deny("already_voted");
        }
        *voted = (term, node.clone());
    }
    repl.term.fetch_max(term, Ordering::SeqCst);
    persist_meta(shared);
    shared.metrics.votes_granted.fetch_add(1, Ordering::Relaxed);
    base(true)
}

/// The `announce` command: a (newly promoted) primary telling this
/// node `(epoch, primary)`. A higher-or-equal epoch is adopted: a
/// follower re-points its stream, a stale primary demotes itself. A
/// lower epoch is refused, and the reply carries this node's epoch and
/// primary so the stale announcer can heal itself.
pub(crate) fn cmd_announce(request: &Json, shared: &Shared) -> Json {
    let repl = &shared.repl;
    let epoch = request.u64_field("epoch").unwrap_or(0);
    let Some(primary) = request
        .str_field("primary")
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
    else {
        return proto::error("bad_request", "announce lacks a `primary` address");
    };
    repl.note_peer(&primary);
    let me = repl.advertise();
    let refuse = |repl: &Replication| {
        let mut reply = proto::ok()
            .with("accepted", false)
            .with("epoch", repl.epoch.load(Ordering::SeqCst))
            .with("role", repl.role.read().expect("role lock").name());
        if repl.is_primary() {
            reply.set("primary", repl.advertise());
        } else if let Some(upstream) = repl.upstream() {
            reply.set("primary", upstream);
        }
        reply
    };
    if epoch < repl.epoch.load(Ordering::SeqCst) {
        return refuse(repl);
    }
    let _guard = repl.transition.lock().expect("transition lock");
    // Re-check under the lock: a concurrent adoption may have advanced
    // the epoch past this announce.
    let mine = repl.epoch.load(Ordering::SeqCst);
    if epoch < mine || (epoch == mine && repl.is_primary() && primary != me) {
        return refuse(repl);
    }
    let epoch_changed = repl.adopt_epoch(epoch);
    let was_primary = repl.is_primary();
    if was_primary && primary != me {
        demote_locked(shared, &primary);
    } else if !was_primary && repl.upstream().as_deref() != Some(primary.as_str()) {
        repoint_locked(shared, &primary);
    } else if epoch_changed {
        persist_meta(shared);
    }
    proto::ok()
        .with("accepted", true)
        .with("epoch", repl.epoch.load(Ordering::SeqCst))
        .with("role", repl.role.read().expect("role lock").name())
}

/// The `promote` command: turn this follower into a primary at a
/// freshly bumped epoch and let the announcer re-point the survivors —
/// no restarts required. Idempotent — promoting a primary is an
/// acknowledged no-op.
pub(crate) fn cmd_promote(shared: &Shared) -> Json {
    let repl = &shared.repl;
    let already = || {
        proto::ok()
            .with("role", "primary")
            .with("changed", false)
            .with("epoch", repl.epoch.load(Ordering::SeqCst))
            .with("applied_seq", repl.applied_seq.load(Ordering::SeqCst))
    };
    if repl.is_primary() {
        return already();
    }
    let _guard = repl.transition.lock().expect("transition lock");
    if repl.is_primary() {
        return already();
    }
    let term = repl
        .term
        .load(Ordering::SeqCst)
        .max(repl.epoch.load(Ordering::SeqCst))
        .saturating_add(1);
    repl.term.store(term, Ordering::SeqCst);
    if !become_primary_locked(shared, term) {
        return proto::error(
            "stale_epoch",
            format!(
                "cluster epoch {} already passed this node's term {term}",
                repl.epoch.load(Ordering::SeqCst)
            ),
        );
    }
    let applied = repl.applied_seq.load(Ordering::SeqCst);
    eprintln!("sufs-broker: promoted to primary at seq {applied} (epoch {term})");
    proto::ok()
        .with("role", "primary")
        .with("changed", true)
        .with("epoch", term)
        .with("applied_seq", applied)
}

/// The `replication` section of the `stats` reply: role, ack mode,
/// sequence marks, and per-follower lag.
pub(crate) fn stats_section(shared: &Shared) -> Json {
    let repl = &shared.repl;
    let followers: Vec<Json> = repl
        .followers
        .lock()
        .expect("followers lock")
        .iter()
        .map(|f| {
            let sent = f.sent_seq.load(Ordering::SeqCst);
            let acked = f.acked_seq.load(Ordering::SeqCst);
            Json::obj()
                .with("peer", f.peer.as_str())
                .with("sent_seq", sent)
                .with("acked_seq", acked)
                .with("lag", sent.saturating_sub(acked))
        })
        .collect();
    let peers: Vec<Json> = repl.peer_list().into_iter().map(Json::str).collect();
    let mut out = Json::obj()
        .with("role", repl.role.read().expect("role lock").name())
        .with("ack_mode", repl.ack_mode.as_str())
        .with("cluster_size", repl.cluster_size)
        .with("epoch", repl.epoch.load(Ordering::SeqCst))
        .with("term", repl.term.load(Ordering::SeqCst))
        .with("election", repl.election.as_str())
        .with("applied_seq", repl.applied_seq.load(Ordering::SeqCst))
        .with("committed_seq", repl.committed_seq.load(Ordering::SeqCst))
        .with("follower_count", followers.len())
        .with("followers", followers)
        .with("peers", peers);
    if let Some(upstream) = repl.upstream() {
        out.set("upstream", upstream);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_mode_parses_both_values_and_rejects_others() {
        assert_eq!(AckMode::parse("local"), Ok(AckMode::Local));
        assert_eq!(AckMode::parse("quorum"), Ok(AckMode::Quorum));
        assert!(AckMode::parse("paxos").is_err());
        assert_eq!(AckMode::Quorum.as_str(), "quorum");
    }

    #[test]
    fn committed_seq_is_the_kth_largest_ack() {
        // cluster_size 3 → 1 follower ack suffices: the *largest* ack.
        assert_eq!(committed_from(vec![4, 9], 1), Some(9));
        // cluster_size 5 → 2 follower acks: the 2nd largest.
        assert_eq!(committed_from(vec![4, 9, 7, 2], 2), Some(7));
        // Not enough followers connected yet.
        assert_eq!(committed_from(vec![4], 2), None);
        // Local mode / single-node cluster: quorum is trivial.
        assert_eq!(committed_from(vec![], 0), None);
    }

    #[test]
    fn majority_math_matches_cluster_size() {
        for (cluster, needed) in [(1, 0), (2, 1), (3, 1), (4, 2), (5, 2), (7, 3)] {
            let config = BrokerConfig {
                cluster_size: cluster,
                ..BrokerConfig::default()
            };
            assert_eq!(
                Replication::new(&config).needed_acks(),
                needed,
                "cluster of {cluster}"
            );
        }
    }

    #[test]
    fn election_mode_parses_both_values_and_rejects_others() {
        assert_eq!(ElectionMode::parse("auto"), Ok(ElectionMode::Auto));
        assert_eq!(ElectionMode::parse("manual"), Ok(ElectionMode::Manual));
        assert!(ElectionMode::parse("raft").is_err());
        assert_eq!(ElectionMode::Auto.as_str(), "auto");
        assert_eq!(ElectionMode::Manual.as_str(), "manual");
    }

    #[test]
    fn ballot_ordering_prefers_longer_prefix_then_node_id() {
        // (applied_seq, node) tuples order exactly as the grant rule
        // compares them: prefix first, advertise string as tie-break.
        assert!((5u64, "127.0.0.1:9001") < (6u64, "127.0.0.1:9000"));
        assert!((6u64, "127.0.0.1:9000") < (6u64, "127.0.0.1:9001"));
        assert!((6u64, "127.0.0.1:9001") >= (6u64, "127.0.0.1:9001"));
    }

    #[test]
    fn majority_includes_self_vote() {
        for (cluster, needed) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3)] {
            let config = BrokerConfig {
                cluster_size: cluster,
                ..BrokerConfig::default()
            };
            assert_eq!(Replication::new(&config).majority(), needed);
        }
    }

    #[test]
    fn fnv1a_perturbs_distinct_advertise_addresses() {
        assert_ne!(fnv1a("127.0.0.1:9000"), fnv1a("127.0.0.1:9001"));
        assert_eq!(fnv1a("a"), fnv1a("a"));
    }

    #[test]
    fn role_follows_config() {
        let primary = Replication::new(&BrokerConfig::default());
        assert!(primary.is_primary());
        assert_eq!(primary.upstream(), None);
        let follower = Replication::new(&BrokerConfig {
            follow: Some("127.0.0.1:9".to_owned()),
            ..BrokerConfig::default()
        });
        assert!(!follower.is_primary());
        assert_eq!(follower.upstream(), Some("127.0.0.1:9".to_owned()));
    }
}
