//! WAL-shipping replication: primaries stream journal records to
//! followers; followers can be promoted when the primary is lost.
//!
//! # Design
//!
//! Replication reuses the crash-recovery machinery end to end. A
//! follower joining (or *re*-joining) a primary always receives a full
//! snapshot bootstrap — the exact JSON document
//! [`crate::snapshot::write`] persists — followed by the live stream of
//! journal records, each shipped as the same `{seq, req, reply}` tuple
//! the on-disk journal holds. The follower applies every record through
//! the same request handlers startup replay uses, journals it under the
//! *primary's* sequence number, and acknowledges the applied sequence.
//! Because bootstrap replaces the follower's entire state, a node that
//! diverged (e.g. an old primary that applied mutations which never
//! reached quorum before it was killed) converges simply by rejoining:
//! no epochs or truncation protocol are needed for correctness.
//!
//! # Acknowledgement modes
//!
//! Under `AckMode::Local` a mutation is acknowledged once the local
//! fsync completes (PR-5 behaviour). Under `AckMode::Quorum` the reply
//! additionally waits until a majority of the configured cluster —
//! `cluster_size / 2` followers besides the primary itself — has
//! acknowledged the record, and reports the outcome in a `"quorum"`
//! field. A timeout degrades to `"quorum": false` (the mutation *is*
//! applied and journaled locally); clients that need machine-loss
//! durability retry the same `req_id` until they see `"quorum": true` —
//! the idempotency window re-evaluates quorum on every retry, so the
//! retry is cheap and exactly-once.
//!
//! # Ordering
//!
//! Records are broadcast to follower queues *while the WAL append lock
//! is held*, and appends happen while the mutated resource's write lock
//! is held, so every follower observes records in exactly the journal
//! order. Follower registration takes the same resource → dedup → wal →
//! followers lock chain as the snapshotter, which freezes the journal
//! tip while the bootstrap document is rendered: a joining follower can
//! neither miss a record nor receive one twice (records at or below the
//! bootstrap's coverage are skipped by sequence number).
//!
//! # Promotion
//!
//! `promote` severs the follower's upstream link, joins its pull
//! thread, and flips the role to primary; its journal already continues
//! the primary's numbering, so new mutations extend the same sequence.
//! Operators (or the chaos harness) promote the follower with the
//! highest `applied_seq`: the stream is a journal prefix, so that
//! follower contains every record any quorum ever acknowledged.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::proto::{self, encode_frame, read_frame, write_frame};
use crate::server::{handle_request_from, BrokerConfig, Shared, Source};
use crate::snapshot;

/// Frames a slow follower may have queued before the primary declares
/// it lost; past this the connection is severed and the follower
/// re-bootstraps when it redials.
const QUEUE_CAP: usize = 65_536;

/// Upper bound on one upstream connection attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// How a mutation is acknowledged to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Acknowledge after the local WAL fsync (single-node durability).
    Local,
    /// Additionally wait for a majority of the configured cluster to
    /// acknowledge the record; the reply's `"quorum"` field reports
    /// whether the wait succeeded within the timeout.
    Quorum,
}

impl AckMode {
    /// Parses the `--ack` CLI value.
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "local" => Ok(AckMode::Local),
            "quorum" => Ok(AckMode::Quorum),
            other => Err(format!("unknown ack mode `{other}` (want local|quorum)")),
        }
    }

    /// The wire/CLI name of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            AckMode::Local => "local",
            AckMode::Quorum => "quorum",
        }
    }
}

/// Which side of the replication stream this broker is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations and serves `replicate` streams.
    Primary,
    /// Applies the upstream's records; rejects client mutations with
    /// `not_primary`.
    Follower {
        /// The primary's address, re-dialled until promotion.
        upstream: String,
    },
}

impl Role {
    /// The wire name of this role.
    pub fn name(&self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower { .. } => "follower",
        }
    }
}

/// Primary-side state for one connected follower.
pub(crate) struct FollowerConn {
    /// The follower's peer address, for `stats`.
    pub(crate) peer: String,
    /// The replication connection; the writer thread drains `queue`
    /// into it, the `serve_replica` thread reads acks from it.
    stream: TcpStream,
    /// Encoded record frames awaiting the writer thread.
    queue: Mutex<VecDeque<Vec<u8>>>,
    qcv: Condvar,
    /// Abandon: stop shipping, drop the queue.
    closed: AtomicBool,
    /// Drain: ship everything queued, then stop.
    draining: AtomicBool,
    /// Highest sequence number the follower acknowledged.
    pub(crate) acked_seq: AtomicU64,
    /// Highest sequence number queued for shipping.
    pub(crate) sent_seq: AtomicU64,
    /// Ship times of in-flight records, popped on ack to feed the
    /// replication-latency histogram.
    inflight: Mutex<VecDeque<(u64, Instant)>>,
}

impl FollowerConn {
    fn new(peer: String, stream: TcpStream, baseline_seq: u64) -> Self {
        FollowerConn {
            peer,
            stream,
            queue: Mutex::new(VecDeque::new()),
            qcv: Condvar::new(),
            closed: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            acked_seq: AtomicU64::new(0),
            sent_seq: AtomicU64::new(baseline_seq),
            inflight: Mutex::new(VecDeque::new()),
        }
    }

    fn enqueue(&self, seq: u64, frame: &[u8]) {
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.len() >= QUEUE_CAP {
            // The follower is too far behind to catch up by streaming;
            // sever so it re-bootstraps from a fresh snapshot instead
            // of growing an unbounded queue on the primary.
            drop(queue);
            self.abandon();
            return;
        }
        queue.push_back(frame.to_vec());
        self.sent_seq.store(seq, Ordering::SeqCst);
        self.inflight
            .lock()
            .expect("inflight lock")
            .push_back((seq, Instant::now()));
        self.qcv.notify_all();
    }

    fn abandon(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.queue.lock().expect("queue lock").clear();
        let _ = self.stream.shutdown(Shutdown::Both);
        self.qcv.notify_all();
    }

    /// The writer thread: ships queued frames, emits a heartbeat after
    /// `tick` of idleness, exits once closed (immediately) or draining
    /// (after the queue empties).
    fn writer_loop(self: &Arc<Self>, tick: Duration) {
        let mut stream = &self.stream;
        loop {
            let frame = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.closed.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(frame) = queue.pop_front() {
                        break Some(frame);
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        return; // queue flushed; the broker is draining
                    }
                    let (guard, timeout) = self.qcv.wait_timeout(queue, tick).expect("queue lock");
                    queue = guard;
                    if timeout.timed_out() && queue.is_empty() {
                        let hb = Json::obj().with("hb", self.sent_seq.load(Ordering::SeqCst));
                        break encode_frame(&hb).ok();
                    }
                }
            };
            let Some(frame) = frame else { continue };
            if std::io::Write::write_all(&mut stream, &frame).is_err() {
                self.closed.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// Replication state shared by every connection thread of a broker.
pub(crate) struct Replication {
    /// Primary or follower; flipped (once) by `promote`.
    pub(crate) role: std::sync::RwLock<Role>,
    pub(crate) ack_mode: AckMode,
    /// Total voting nodes the operator configured, primary included.
    pub(crate) cluster_size: usize,
    /// How long a quorum-mode mutation waits for follower acks.
    pub(crate) ack_timeout: Duration,
    /// Follower redial backoff.
    pub(crate) follow_retry: Duration,
    /// Heartbeat interval; followers treat `4 * tick` of silence as a
    /// dead upstream and redial.
    pub(crate) tick: Duration,
    /// Connected followers (primary side). Also the condvar anchor for
    /// quorum waits.
    pub(crate) followers: Mutex<Vec<Arc<FollowerConn>>>,
    ack_cv: Condvar,
    /// Highest journal sequence applied on this node.
    pub(crate) applied_seq: AtomicU64,
    /// Highest sequence known quorum-acknowledged; monotone.
    pub(crate) committed_seq: AtomicU64,
    /// Bumped by `promote` (and shutdown) to stop the pull loop.
    pub(crate) epoch: AtomicU64,
    /// The live upstream connection, severed on promote/shutdown.
    upstream_conn: Mutex<Option<TcpStream>>,
    /// The pull-loop thread, joined on promote/shutdown.
    puller: Mutex<Option<JoinHandle<()>>>,
}

impl Replication {
    pub(crate) fn new(config: &BrokerConfig) -> Self {
        let role = match &config.follow {
            Some(upstream) => Role::Follower {
                upstream: upstream.clone(),
            },
            None => Role::Primary,
        };
        Replication {
            role: std::sync::RwLock::new(role),
            ack_mode: config.ack,
            cluster_size: config.cluster_size.max(1),
            ack_timeout: config.ack_timeout,
            follow_retry: config.follow_retry,
            tick: config.replication_tick,
            followers: Mutex::new(Vec::new()),
            ack_cv: Condvar::new(),
            applied_seq: AtomicU64::new(0),
            committed_seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            upstream_conn: Mutex::new(None),
            puller: Mutex::new(None),
        }
    }

    pub(crate) fn is_primary(&self) -> bool {
        matches!(*self.role.read().expect("role lock"), Role::Primary)
    }

    /// The upstream address while a follower; `None` once primary.
    pub(crate) fn upstream(&self) -> Option<String> {
        match &*self.role.read().expect("role lock") {
            Role::Primary => None,
            Role::Follower { upstream } => Some(upstream.clone()),
        }
    }

    /// Follower acknowledgements a quorum needs besides the primary's
    /// own fsync: a majority of `cluster_size` voters.
    pub(crate) fn needed_acks(&self) -> usize {
        self.cluster_size / 2
    }

    /// Fans one encoded record frame out to every live follower queue.
    /// The caller holds the WAL lock, which makes broadcast order
    /// exactly journal order.
    pub(crate) fn broadcast(&self, seq: u64, frame: &[u8], metrics: &Metrics) {
        let followers = self.followers.lock().expect("followers lock");
        if followers.is_empty() {
            return;
        }
        metrics.records_shipped.fetch_add(1, Ordering::Relaxed);
        for follower in followers.iter() {
            if !follower.closed.load(Ordering::SeqCst) {
                follower.enqueue(seq, frame);
            }
        }
    }

    /// Records a follower's acknowledgement: advances its acked mark,
    /// observes ship→ack latency, refreshes `committed_seq`, and wakes
    /// quorum waiters.
    fn note_ack(&self, follower: &FollowerConn, seq: u64, metrics: &Metrics) {
        follower.acked_seq.fetch_max(seq, Ordering::SeqCst);
        {
            let mut inflight = follower.inflight.lock().expect("inflight lock");
            while inflight.front().is_some_and(|&(s, _)| s <= seq) {
                let (_, shipped) = inflight.pop_front().expect("non-empty");
                metrics.observe_replication(shipped.elapsed());
            }
        }
        let followers = self.followers.lock().expect("followers lock");
        let acked: Vec<u64> = followers
            .iter()
            .filter(|f| !f.closed.load(Ordering::SeqCst))
            .map(|f| f.acked_seq.load(Ordering::SeqCst))
            .collect();
        if let Some(committed) = committed_from(acked, self.needed_acks()) {
            self.committed_seq.fetch_max(committed, Ordering::SeqCst);
        }
        self.ack_cv.notify_all();
    }

    /// Blocks until `seq` is quorum-acknowledged, the timeout passes,
    /// or the broker drains. Called with no locks held (the mutation's
    /// resource write lock excepted).
    pub(crate) fn wait_quorum(&self, seq: u64, shutting_down: &AtomicBool) -> bool {
        if self.needed_acks() == 0 {
            self.committed_seq.fetch_max(seq, Ordering::SeqCst);
            return true;
        }
        let deadline = Instant::now() + self.ack_timeout;
        let mut followers = self.followers.lock().expect("followers lock");
        loop {
            if self.committed_seq.load(Ordering::SeqCst) >= seq {
                return true;
            }
            if shutting_down.load(Ordering::SeqCst) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .ack_cv
                .wait_timeout(followers, deadline - now)
                .expect("followers lock");
            followers = guard;
        }
    }

    fn unregister(&self, follower: &Arc<FollowerConn>) {
        let mut followers = self.followers.lock().expect("followers lock");
        followers.retain(|f| !Arc::ptr_eq(f, follower));
        self.ack_cv.notify_all();
    }

    /// Marks every follower queue as draining (flush, then stop) and
    /// wakes quorum waiters; part of graceful shutdown.
    pub(crate) fn drain_followers(&self) {
        let followers = self.followers.lock().expect("followers lock");
        for follower in followers.iter() {
            follower.draining.store(true, Ordering::SeqCst);
            follower.qcv.notify_all();
        }
        self.ack_cv.notify_all();
    }
}

/// The sequence number acknowledged by at least `needed` followers:
/// the `needed`-th largest element, or `None` when `needed == 0` or too
/// few followers are connected.
fn committed_from(mut acked: Vec<u64>, needed: usize) -> Option<u64> {
    if needed == 0 || acked.len() < needed {
        return None;
    }
    acked.sort_unstable_by(|a, b| b.cmp(a));
    Some(acked[needed - 1])
}

/// The `not_primary` error for a mutation (or `replicate`) reaching a
/// follower, carrying the upstream address as a redirect hint.
pub(crate) fn not_primary(shared: &Shared) -> Json {
    let mut reply = proto::error("not_primary", "this broker is a follower");
    if let Some(upstream) = shared.repl.upstream() {
        reply.set("primary", upstream);
    }
    reply
}

/// Serves one `replicate` request: registers the follower under the
/// snapshotter's lock chain (freezing the journal tip), ships the
/// bootstrap snapshot, then streams records from a writer thread while
/// this thread consumes acks. Returns when the connection dies or the
/// broker drains.
pub(crate) fn serve_replica(stream: &mut TcpStream, shared: &Shared) {
    if !shared.repl.is_primary() {
        let _ = write_frame(stream, &not_primary(shared));
        return;
    }
    let Some(d) = shared.durability.as_ref() else {
        let _ = write_frame(
            stream,
            &proto::error(
                "not_durable",
                "replication requires --state-dir on the primary (the journal is the stream)",
            ),
        );
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_owned());
    let (follower, handshake) = {
        let repo = shared.repo.read().expect("repo lock");
        let registry = shared.registry.read().expect("registry lock");
        let clients = shared.clients.read().expect("clients lock");
        let dedup = d.dedup.lock().expect("dedup lock");
        let wal = d.wal.lock().expect("wal lock");
        let covered = wal.next_seq().saturating_sub(1);
        let doc = snapshot::render_doc(covered, &repo, &registry, &clients, &dedup.export());
        let follower = Arc::new(FollowerConn::new(peer, write_half, covered));
        shared
            .repl
            .followers
            .lock()
            .expect("followers lock")
            .push(Arc::clone(&follower));
        (
            follower,
            proto::ok().with("snapshot", doc).with("seq", covered),
        )
    };
    shared
        .metrics
        .follower_connects
        .fetch_add(1, Ordering::Relaxed);
    if write_frame(stream, &handshake).is_err() {
        shared.repl.unregister(&follower);
        return;
    }
    let writer = {
        let follower = Arc::clone(&follower);
        let tick = shared.repl.tick;
        std::thread::spawn(move || follower.writer_loop(tick))
    };
    while let Ok(Some(frame)) = read_frame(stream) {
        if let Some(seq) = frame.u64_field("ack") {
            shared.repl.note_ack(&follower, seq, &shared.metrics);
        }
    }
    if shared.shutting_down.load(Ordering::SeqCst) {
        // Graceful drain: ship everything already journaled, then stop.
        follower.draining.store(true, Ordering::SeqCst);
    } else {
        follower.closed.store(true, Ordering::SeqCst);
    }
    follower.qcv.notify_all();
    let _ = writer.join();
    let _ = follower.stream.shutdown(Shutdown::Both);
    shared.repl.unregister(&follower);
}

/// Spawns the follower's pull loop: dial the upstream, bootstrap from
/// its snapshot, apply + ack the record stream, redial on any failure.
/// Exits when the epoch is bumped (promotion) or the broker drains.
pub(crate) fn spawn_puller(shared: &Arc<Shared>, upstream: String) {
    let my_epoch = shared.repl.epoch.load(Ordering::SeqCst);
    let handle = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut first = true;
            while !stopped(&shared, my_epoch) {
                if !first {
                    std::thread::sleep(shared.repl.follow_retry);
                }
                first = false;
                let _ = pull_once(&shared, &upstream, my_epoch);
            }
        })
    };
    *shared.repl.puller.lock().expect("puller lock") = Some(handle);
}

fn stopped(shared: &Shared, my_epoch: u64) -> bool {
    shared.shutting_down.load(Ordering::SeqCst)
        || shared.repl.epoch.load(Ordering::SeqCst) != my_epoch
}

/// One upstream session: connect → handshake → bootstrap → apply/ack
/// until the stream dies. Every error path just returns; the caller
/// redials.
fn pull_once(shared: &Arc<Shared>, upstream: &str, my_epoch: u64) -> io::Result<()> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let addr = upstream
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad(format!("upstream `{upstream}` does not resolve")))?;
    let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    let _ = stream.set_nodelay(true);
    // Heartbeats arrive every `tick`; a silent upstream is a dead or
    // partitioned one, and redialling is how a follower heals.
    let _ = stream.set_read_timeout(Some(shared.repl.tick * 4));
    *shared.repl.upstream_conn.lock().expect("upstream lock") = Some(stream.try_clone()?);
    if stopped(shared, my_epoch) {
        return Ok(());
    }
    write_frame(
        &mut stream,
        &Json::obj()
            .with("cmd", "replicate")
            .with("from_seq", shared.repl.applied_seq.load(Ordering::SeqCst)),
    )?;
    let handshake = read_frame(&mut stream)?
        .ok_or_else(|| bad("upstream closed before the replication handshake".into()))?;
    if handshake.bool_field("ok") != Some(true) {
        // `not_primary`, `busy`, `shutting_down`, … — redial and let
        // the operator (or harness) re-point us if it persists.
        return Err(bad(format!("upstream refused replication: {handshake}")));
    }
    let doc = handshake
        .get("snapshot")
        .ok_or_else(|| bad("replication handshake lacks `snapshot`".into()))?;
    bootstrap(shared, doc)?;
    shared
        .metrics
        .bootstraps_received
        .fetch_add(1, Ordering::Relaxed);
    let ack = |stream: &mut TcpStream, seq: u64| write_frame(stream, &Json::obj().with("ack", seq));
    ack(&mut stream, shared.repl.applied_seq.load(Ordering::SeqCst))?;
    loop {
        if stopped(shared, my_epoch) {
            return Ok(());
        }
        let frame = match read_frame(&mut stream)? {
            Some(frame) => frame,
            None => return Ok(()), // upstream drained cleanly
        };
        if let Some(record) = frame.get("rec") {
            apply_replicated(shared, record)?;
            ack(&mut stream, shared.repl.applied_seq.load(Ordering::SeqCst))?;
        } else if frame.get("hb").is_some() {
            ack(&mut stream, shared.repl.applied_seq.load(Ordering::SeqCst))?;
        }
    }
}

/// Replaces this follower's entire state with the primary's bootstrap
/// snapshot. Full replacement — not a diff — is what makes rejoin after
/// divergence correct: whatever this node applied that the primary's
/// journal does not contain is discarded here.
fn bootstrap(shared: &Shared, doc: &Json) -> io::Result<()> {
    let snap = snapshot::parse_doc(doc)?;
    let mut repo = shared.repo.write().expect("repo lock");
    let mut registry = shared.registry.write().expect("registry lock");
    let mut clients = shared.clients.write().expect("clients lock");
    // Evict verdicts naming any location of the old *or* new state, and
    // the whole registry layer: the swap invalidates both worlds.
    for loc in repo.locations() {
        shared.cache.invalidate_location(loc);
    }
    for (loc, _, _) in snap.repository.export() {
        shared.cache.invalidate_location(loc);
    }
    shared.cache.invalidate_registry();
    let covered = snap.covered_seq;
    *repo = snap.repository;
    *registry = snap.registry;
    *clients = snap.clients;
    if let Some(d) = shared.durability.as_ref() {
        let mut dedup = d.dedup.lock().expect("dedup lock");
        dedup.replace(snap.dedup);
        let mut wal = d.wal.lock().expect("wal lock");
        snapshot::write(&d.dir, covered, &repo, &registry, &clients, &dedup.export())?;
        wal.truncate()?;
        wal.ensure_seq_at_least(covered + 1);
    }
    shared.repl.applied_seq.store(covered, Ordering::SeqCst);
    Ok(())
}

/// Applies one replicated record: re-run the request through the
/// regular handlers (as startup replay does), journal it under the
/// primary's sequence number, and record the *primary's* reply in the
/// idempotency window so a client retry answered here matches what the
/// primary said.
fn apply_replicated(shared: &Shared, record: &Json) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let seq = record
        .u64_field("seq")
        .ok_or_else(|| bad("replicated record lacks `seq`"))?;
    let request = record
        .get("req")
        .ok_or_else(|| bad("replicated record lacks `req`"))?;
    let reply = record
        .get("reply")
        .ok_or_else(|| bad("replicated record lacks `reply`"))?;
    if seq <= shared.repl.applied_seq.load(Ordering::SeqCst) {
        // Straddles the bootstrap boundary (or a primary retransmit):
        // the snapshot already covers it.
        return Ok(());
    }
    let local = handle_request_from(request, shared, Source::Replication);
    if local.bool_field("ok") != Some(true) && reply.bool_field("ok") == Some(true) {
        eprintln!("sufs-broker: replicated record {seq} diverged from the primary: {local}");
    }
    if let Some(d) = shared.durability.as_ref() {
        if let Some(id) = request.str_field("req_id") {
            d.dedup
                .lock()
                .expect("dedup lock")
                .insert(id.to_owned(), reply.clone());
        }
        d.wal
            .lock()
            .expect("wal lock")
            .append_at(seq, request, reply)?;
    }
    shared.repl.applied_seq.store(seq, Ordering::SeqCst);
    shared
        .metrics
        .replicated_records
        .fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Stops the pull loop deterministically: bump the epoch, sever the
/// upstream socket, join the thread. Used by promotion and by both
/// shutdown paths (a "killed" node must not keep applying records).
pub(crate) fn stop_puller(shared: &Shared) {
    shared.repl.epoch.fetch_add(1, Ordering::SeqCst);
    if let Some(conn) = shared
        .repl
        .upstream_conn
        .lock()
        .expect("upstream lock")
        .take()
    {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let handle = shared.repl.puller.lock().expect("puller lock").take();
    if let Some(handle) = handle {
        let _ = handle.join();
    }
}

/// The `promote` command: turn this follower into a primary. Idempotent
/// — promoting a primary is an acknowledged no-op.
pub(crate) fn cmd_promote(shared: &Shared) -> Json {
    if shared.repl.is_primary() {
        return proto::ok()
            .with("role", "primary")
            .with("changed", false)
            .with(
                "applied_seq",
                shared.repl.applied_seq.load(Ordering::SeqCst),
            );
    }
    stop_puller(shared);
    *shared.repl.role.write().expect("role lock") = Role::Primary;
    shared.metrics.promotions.fetch_add(1, Ordering::Relaxed);
    let applied = shared.repl.applied_seq.load(Ordering::SeqCst);
    eprintln!("sufs-broker: promoted to primary at seq {applied}");
    proto::ok()
        .with("role", "primary")
        .with("changed", true)
        .with("applied_seq", applied)
}

/// The `replication` section of the `stats` reply: role, ack mode,
/// sequence marks, and per-follower lag.
pub(crate) fn stats_section(shared: &Shared) -> Json {
    let repl = &shared.repl;
    let followers: Vec<Json> = repl
        .followers
        .lock()
        .expect("followers lock")
        .iter()
        .map(|f| {
            let sent = f.sent_seq.load(Ordering::SeqCst);
            let acked = f.acked_seq.load(Ordering::SeqCst);
            Json::obj()
                .with("peer", f.peer.as_str())
                .with("sent_seq", sent)
                .with("acked_seq", acked)
                .with("lag", sent.saturating_sub(acked))
        })
        .collect();
    let mut out = Json::obj()
        .with("role", repl.role.read().expect("role lock").name())
        .with("ack_mode", repl.ack_mode.as_str())
        .with("cluster_size", repl.cluster_size)
        .with("epoch", repl.epoch.load(Ordering::SeqCst))
        .with("applied_seq", repl.applied_seq.load(Ordering::SeqCst))
        .with("committed_seq", repl.committed_seq.load(Ordering::SeqCst))
        .with("follower_count", followers.len())
        .with("followers", followers);
    if let Some(upstream) = repl.upstream() {
        out.set("upstream", upstream);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_mode_parses_both_values_and_rejects_others() {
        assert_eq!(AckMode::parse("local"), Ok(AckMode::Local));
        assert_eq!(AckMode::parse("quorum"), Ok(AckMode::Quorum));
        assert!(AckMode::parse("paxos").is_err());
        assert_eq!(AckMode::Quorum.as_str(), "quorum");
    }

    #[test]
    fn committed_seq_is_the_kth_largest_ack() {
        // cluster_size 3 → 1 follower ack suffices: the *largest* ack.
        assert_eq!(committed_from(vec![4, 9], 1), Some(9));
        // cluster_size 5 → 2 follower acks: the 2nd largest.
        assert_eq!(committed_from(vec![4, 9, 7, 2], 2), Some(7));
        // Not enough followers connected yet.
        assert_eq!(committed_from(vec![4], 2), None);
        // Local mode / single-node cluster: quorum is trivial.
        assert_eq!(committed_from(vec![], 0), None);
    }

    #[test]
    fn majority_math_matches_cluster_size() {
        for (cluster, needed) in [(1, 0), (2, 1), (3, 1), (4, 2), (5, 2), (7, 3)] {
            let config = BrokerConfig {
                cluster_size: cluster,
                ..BrokerConfig::default()
            };
            assert_eq!(
                Replication::new(&config).needed_acks(),
                needed,
                "cluster of {cluster}"
            );
        }
    }

    #[test]
    fn role_follows_config() {
        let primary = Replication::new(&BrokerConfig::default());
        assert!(primary.is_primary());
        assert_eq!(primary.upstream(), None);
        let follower = Replication::new(&BrokerConfig {
            follow: Some("127.0.0.1:9".to_owned()),
            ..BrokerConfig::default()
        });
        assert!(!follower.is_primary());
        assert_eq!(follower.upstream(), Some("127.0.0.1:9".to_owned()));
    }
}
