//! The broker's write-ahead journal.
//!
//! Durability for the dynamic repository rests on one rule: a
//! state-mutating request is appended here — length-prefixed,
//! CRC32-checksummed, and **fsynced** — *before* its reply frame goes
//! out. A reply the client has seen therefore implies a record the
//! disk has seen, and a crashed broker recovers every acknowledged
//! mutation by replaying the journal over the last snapshot.
//!
//! # On-disk format
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic "SUFSWAL1"
//! then, per record:
//!      0     4  payload length `len` (big-endian u32, ≤ 16 MiB)
//!      4     4  CRC32 (IEEE) over the payload bytes (big-endian)
//!      8   len  payload: one JSON object
//!                 {"seq":N,"req":{…original request…},"reply":{…}}
//! ```
//!
//! The payload is the *request itself* (plus the reply it produced, so
//! recovery can repopulate the idempotency window with exact replies);
//! replay re-applies requests through the same handlers the live
//! server uses, so journal semantics can never drift from wire
//! semantics.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a torn final record: a short header, a
//! short payload, or a payload whose checksum fails. Replay treats the
//! first such record as the end of the journal, truncates the file
//! back to the last good record, and starts — it **never refuses to
//! start** over a torn tail. (Only unacknowledged work can be torn:
//! the fsync-before-reply rule means every acknowledged record is
//! fully on disk.) A bad record *followed by more bytes* is still
//! truncated the same way; the suffix was never acknowledged either.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::json::{self, Json};

/// The journal file's magic header.
pub const WAL_MAGIC: &[u8; 8] = b"SUFSWAL1";

/// Records larger than this are rejected on append and treated as torn
/// on replay (matches the wire frame cap).
pub const MAX_RECORD: usize = 16 << 20;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum guarding every journal
/// record and verified on replay.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number (used to skip records the snapshot
    /// already covers).
    pub seq: u64,
    /// The original mutation request.
    pub request: Json,
    /// The reply the mutation produced, for repopulating the
    /// idempotency window.
    pub reply: Json,
}

/// What replay found on disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplaySummary {
    /// Records recovered (checksum-verified, in order).
    pub records: usize,
    /// Bytes of good journal retained.
    pub good_bytes: u64,
    /// Bytes of torn tail discarded (0 for a clean journal).
    pub truncated_bytes: u64,
}

/// An append-only, checksummed journal file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    records_since_truncate: u64,
    bytes_since_truncate: u64,
}

impl Wal {
    /// Opens (or creates) the journal at `path`, replaying every intact
    /// record and truncating a torn tail. `records` receives the
    /// recovered records in append order; the returned [`Wal`] is
    /// positioned for appending after the last good record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and rejects a file whose magic header is
    /// not a journal (corrupt *heads* are refused loudly — only torn
    /// *tails* are forgiven).
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<WalRecord>, ReplaySummary)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        let mut summary = ReplaySummary::default();
        let mut records = Vec::new();
        let mut next_seq = 1u64;

        if file_len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
        } else {
            let mut magic = [0u8; 8];
            match read_exactly(&mut file, &mut magic) {
                Ok(true) if &magic == WAL_MAGIC => {}
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{} is not a sufs journal (bad magic)", path.display()),
                    ))
                }
            }
            let mut good_end = WAL_MAGIC.len() as u64;
            while let Some((record, end)) = read_record(&mut file)? {
                if record.seq >= next_seq {
                    next_seq = record.seq + 1;
                }
                records.push(record);
                good_end = end;
                summary.records += 1;
            }
            if good_end < file_len {
                summary.truncated_bytes = file_len - good_end;
                file.set_len(good_end)?;
                file.sync_data()?;
            }
            summary.good_bytes = good_end;
            file.seek(SeekFrom::Start(good_end))?;
        }
        if summary.good_bytes == 0 {
            summary.good_bytes = WAL_MAGIC.len() as u64;
        }

        let wal = Wal {
            file,
            path: path.to_owned(),
            next_seq,
            records_since_truncate: summary.records as u64,
            bytes_since_truncate: summary.good_bytes - WAL_MAGIC.len() as u64,
        };
        Ok((wal, records, summary))
    }

    /// Appends one mutation record and **fsyncs** it. Returns the
    /// record's sequence number. The caller must not release the reply
    /// to the client before this returns.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an oversized record is `InvalidInput`.
    pub fn append(&mut self, request: &Json, reply: &Json) -> io::Result<u64> {
        let seq = self.next_seq;
        let payload = Json::obj()
            .with("seq", seq)
            .with("req", request.clone())
            .with("reply", reply.clone())
            .to_string();
        let bytes = payload.as_bytes();
        if bytes.len() > MAX_RECORD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal record exceeds the 16 MiB cap",
            ));
        }
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(bytes).to_be_bytes());
        frame.extend_from_slice(bytes);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.next_seq += 1;
        self.records_since_truncate += 1;
        self.bytes_since_truncate += frame.len() as u64;
        Ok(seq)
    }

    /// Appends one mutation record under the sequence number chosen by
    /// a replication primary, fsyncing like [`Wal::append`]. Followers
    /// journal records with the primary's numbering so a promoted
    /// follower continues the same sequence.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Wal::append`].
    pub fn append_at(&mut self, seq: u64, request: &Json, reply: &Json) -> io::Result<u64> {
        self.next_seq = seq;
        self.append(request, reply)
    }

    /// The sequence number the *next* append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raises the next sequence number to at least `floor`. After a
    /// snapshot + truncation + restart the journal file is empty and
    /// would restart at 1; the snapshot's coverage mark supplies the
    /// floor so new records always sort after everything it covers.
    pub fn ensure_seq_at_least(&mut self, floor: u64) {
        if self.next_seq < floor {
            self.next_seq = floor;
        }
    }

    /// Records appended (or replayed) since the journal was last
    /// truncated — the snapshot policy's record-count input.
    pub fn records_since_truncate(&self) -> u64 {
        self.records_since_truncate
    }

    /// Journal payload bytes accumulated since the last truncation —
    /// the snapshot policy's size input.
    pub fn bytes_since_truncate(&self) -> u64 {
        self.bytes_since_truncate
    }

    /// Empties the journal after its contents were compacted into a
    /// snapshot. Sequence numbers keep counting — they are never
    /// reused, so a crash *between* snapshot swap and truncation is
    /// harmless (replay skips records the snapshot already covers).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        self.file.sync_data()?;
        self.records_since_truncate = 0;
        self.bytes_since_truncate = 0;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` on a clean or torn EOF.
fn read_exactly(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one record at the current position. `Ok(None)` means "end of
/// the good prefix": clean EOF, torn header, torn payload, checksum
/// mismatch, or unparsable payload — all are treated as a torn tail.
/// Returns the record and the file offset just past it.
fn read_record(file: &mut File) -> io::Result<Option<(WalRecord, u64)>> {
    let start = file.stream_position()?;
    let mut header = [0u8; 8];
    if !read_exactly(file, &mut header)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let want_crc = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        file.seek(SeekFrom::Start(start))?;
        return Ok(None);
    }
    let mut payload = vec![0u8; len];
    if !read_exactly(file, &mut payload)? {
        file.seek(SeekFrom::Start(start))?;
        return Ok(None);
    }
    if crc32(&payload) != want_crc {
        file.seek(SeekFrom::Start(start))?;
        return Ok(None);
    }
    let parsed = std::str::from_utf8(&payload)
        .ok()
        .and_then(|text| json::parse(text).ok());
    let Some(value) = parsed else {
        file.seek(SeekFrom::Start(start))?;
        return Ok(None);
    };
    let (Some(seq), Some(request), Some(reply)) = (
        value.u64_field("seq"),
        value.get("req").cloned(),
        value.get("reply").cloned(),
    ) else {
        file.seek(SeekFrom::Start(start))?;
        return Ok(None);
    };
    let end = start + 8 + len as u64;
    Ok(Some((
        WalRecord {
            seq,
            request,
            reply,
        },
        end,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sufs-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn req(n: u64) -> Json {
        Json::obj().with("cmd", "publish").with("n", n)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        {
            let (mut wal, records, summary) = Wal::open(&path).unwrap();
            assert!(records.is_empty());
            assert_eq!(summary.records, 0);
            assert_eq!(
                wal.append(&req(1), &Json::obj().with("ok", true)).unwrap(),
                1
            );
            assert_eq!(
                wal.append(&req(2), &Json::obj().with("ok", true)).unwrap(),
                2
            );
        }
        let (wal, records, summary) = Wal::open(&path).unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.truncated_bytes, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].request, req(1));
        assert_eq!(records[1].seq, 2);
        assert_eq!(wal.next_seq(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&req(1), &Json::obj()).unwrap();
            wal.append(&req(2), &Json::obj()).unwrap();
        }
        // Simulate a crash mid-append: a partial header plus garbage.
        let good_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x00, 0x00, 0x01]).unwrap();
        drop(f);
        let (_, records, summary) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2, "good prefix survives");
        assert_eq!(summary.truncated_bytes, 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_checksum_ends_the_good_prefix() {
        let path = tmp("crc");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&req(1), &Json::obj()).unwrap();
            let second_start = std::fs::metadata(&path).unwrap().len();
            wal.append(&req(2), &Json::obj()).unwrap();
            wal.append(&req(3), &Json::obj()).unwrap();
            // Flip one payload byte of record 2: it and everything after
            // it (never acknowledged under the fsync rule) are dropped.
            drop(wal);
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(second_start + 8)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(second_start + 8)).unwrap();
            f.write_all(&[b[0] ^ 0xff]).unwrap();
        }
        let (mut wal, records, summary) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(summary.truncated_bytes > 0);
        // The journal stays appendable after truncation.
        assert_eq!(wal.append(&req(4), &Json::obj()).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_resets_counters_but_not_sequence() {
        let path = tmp("truncate");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&req(1), &Json::obj()).unwrap();
        wal.append(&req(2), &Json::obj()).unwrap();
        assert_eq!(wal.records_since_truncate(), 2);
        wal.truncate().unwrap();
        assert_eq!(wal.records_since_truncate(), 0);
        assert_eq!(wal.bytes_since_truncate(), 0);
        // Sequence numbers continue: a record journaled after a snapshot
        // must sort after the snapshot's coverage.
        assert_eq!(wal.append(&req(3), &Json::obj()).unwrap(), 3);
        drop(wal);
        let (_, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_is_refused() {
        let path = tmp("magic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(Wal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
