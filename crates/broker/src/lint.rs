//! Live repository analysis: the `lint` command and the opt-in
//! `--deny-lint` mutation gate.
//!
//! The broker hosts one [`LintEngine`] behind a mutex. A `lint` request
//! refreshes it against the current repository, registry and client
//! set and returns the full report (human rendering plus the same
//! structured JSON `sufs lint --json` emits) together with the
//! incremental-reuse counters. With [`crate::server::BrokerConfig::
//! deny_lint`] set, every client mutation is *gated*: the handler
//! applies the change tentatively under its write lock, refreshes the
//! engine, and — if the mutated state introduces any diagnostic at or
//! above the deny severity that the pre-mutation report did not contain
//! — reverts the change and answers a structured `lint_rejected` error
//! carrying the offending diagnostics. Replayed and replicated records
//! are exempt: the primary already gated them.
//!
//! An engine failure during gating fails **closed** (the mutation is
//! reverted), so a gated broker never holds state it cannot analyze.

use std::sync::atomic::Ordering;

use sufs_hexpr::Hist;
use sufs_lint::{Diagnostic, LintInput, LintReport, Severity};
use sufs_net::Repository;
use sufs_policy::PolicyRegistry;

use crate::json::{self, Json};
use crate::proto;
use crate::server::{Shared, Source};

/// Parses the `--deny-lint` CLI value.
///
/// # Errors
///
/// A message naming the accepted values.
pub fn parse_deny_level(s: &str) -> Result<Severity, String> {
    match s {
        "error" | "errors" => Ok(Severity::Error),
        "warning" | "warnings" => Ok(Severity::Warning),
        other => Err(format!(
            "unknown deny level `{other}` (want error|warnings)"
        )),
    }
}

/// The CLI name of a deny level.
pub fn deny_level_name(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        _ => "warnings",
    }
}

/// Refreshes the broker's lint engine against the given state and
/// returns the refresh outcome plus a clone of the up-to-date report.
/// Counts the passes run/reused into the metrics.
fn refresh(
    shared: &Shared,
    repo: &Repository,
    registry: &PolicyRegistry,
    clients: &[(String, Hist)],
) -> Result<(sufs_lint::RefreshOutcome, LintReport), sufs_lint::LintError> {
    let mut engine = shared.lint.lock().expect("lint lock");
    let outcome = engine.refresh(LintInput::new(clients, repo, registry))?;
    shared
        .metrics
        .lint_passes_run
        .fetch_add(outcome.passes_run as u64, Ordering::Relaxed);
    shared
        .metrics
        .lint_passes_reused
        .fetch_add(outcome.passes_reused as u64, Ordering::Relaxed);
    Ok((outcome, engine.report().clone()))
}

/// A diagnostic as a wire object — the same schema `sufs lint --json`
/// emits per diagnostic (the renderer is shared, so they cannot drift).
pub(crate) fn diagnostic_json(d: &Diagnostic) -> Json {
    json::parse(&d.to_json()).expect("diagnostic JSON is well-formed")
}

/// `lint`: refresh the engine and return the full report.
pub(crate) fn cmd_lint(shared: &Shared) -> Json {
    shared.metrics.lint_requests.fetch_add(1, Ordering::Relaxed);
    let repo = shared.repo.read().expect("repo lock");
    let registry = shared.registry.read().expect("registry lock");
    let clients = shared.clients.read().expect("clients lock");
    match refresh(shared, &repo, &registry, &clients) {
        Ok((outcome, report)) => {
            let diagnostics: Vec<Json> = report.diagnostics.iter().map(diagnostic_json).collect();
            proto::ok()
                .with("errors", report.errors() as u64)
                .with("warnings", report.warnings() as u64)
                .with("infos", report.infos() as u64)
                .with("passes_run", outcome.passes_run as u64)
                .with("passes_reused", outcome.passes_reused as u64)
                .with("diagnostics", diagnostics)
                .with("human", report.to_string())
        }
        Err(e) => proto::error("verify", format!("lint engine failed: {e}")),
    }
}

/// Whether this request must be gated: a deny level is configured and
/// the mutation came over the wire (replay and replication re-apply
/// records the primary already gated).
pub(crate) fn gate_active(shared: &Shared, source: Source) -> bool {
    shared.deny_lint.is_some() && source == Source::Client
}

/// The pre-mutation baseline a gated handler captures before applying.
pub(crate) struct Gate {
    deny: Severity,
    before: LintReport,
}

/// Captures the pre-mutation report. Call with the mutation's write
/// lock already held, so no other request can interleave between the
/// baseline and the tentative apply.
///
/// # Errors
///
/// A ready-to-send error reply when the engine cannot analyze the
/// *current* state — the gate fails closed and the caller must not
/// apply the mutation.
pub(crate) fn prepare(
    shared: &Shared,
    repo: &Repository,
    registry: &PolicyRegistry,
    clients: &[(String, Hist)],
) -> Result<Gate, Json> {
    let deny = shared.deny_lint.expect("prepare requires a deny level");
    match refresh(shared, repo, registry, clients) {
        Ok((_, before)) => Ok(Gate { deny, before }),
        Err(e) => Err(proto::error(
            "verify",
            format!("--deny-lint gate cannot analyze the current state: {e}"),
        )),
    }
}

/// Re-lints the tentatively mutated state and decides the gate.
///
/// # Errors
///
/// A ready-to-send `lint_rejected` (or, on engine failure, `verify`)
/// reply; the caller must revert the mutation before sending it.
pub(crate) fn check(
    shared: &Shared,
    gate: &Gate,
    repo: &Repository,
    registry: &PolicyRegistry,
    clients: &[(String, Hist)],
) -> Result<(), Json> {
    let after = match refresh(shared, repo, registry, clients) {
        Ok((_, after)) => after,
        Err(e) => {
            return Err(proto::error(
                "verify",
                format!("--deny-lint gate cannot analyze the mutated state: {e}"),
            ))
        }
    };
    // `Severity` orders Error < Warning < Info, so "at or above the
    // deny level" is `<=`.
    let introduced: Vec<&Diagnostic> = after
        .diagnostics
        .iter()
        .filter(|d| d.severity() <= gate.deny && !gate.before.diagnostics.contains(d))
        .collect();
    if introduced.is_empty() {
        return Ok(());
    }
    shared
        .metrics
        .lint_rejections
        .fetch_add(1, Ordering::Relaxed);
    let diagnostics: Vec<Json> = introduced.iter().map(|d| diagnostic_json(d)).collect();
    let human: Vec<String> = introduced.iter().map(|d| d.to_string()).collect();
    let mut reply = proto::error(
        "lint_rejected",
        format!(
            "mutation rejected: it introduces {} diagnostic(s) at or above the \
             --deny-lint {} threshold",
            introduced.len(),
            deny_level_name(gate.deny)
        ),
    );
    reply.set("diagnostics", diagnostics);
    reply.set("human", human.join("\n"));
    Err(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_levels_parse_and_name() {
        assert_eq!(parse_deny_level("error"), Ok(Severity::Error));
        assert_eq!(parse_deny_level("errors"), Ok(Severity::Error));
        assert_eq!(parse_deny_level("warnings"), Ok(Severity::Warning));
        assert!(parse_deny_level("info").is_err());
        assert_eq!(deny_level_name(Severity::Error), "error");
        assert_eq!(deny_level_name(Severity::Warning), "warnings");
    }

    #[test]
    fn severity_order_supports_at_or_above() {
        assert!(Severity::Error <= Severity::Warning);
        assert!(Severity::Warning <= Severity::Warning);
        assert!(Severity::Info > Severity::Warning);
    }
}
